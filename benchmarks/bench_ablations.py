"""Benches for the design-choice ablations (DESIGN.md section 3)."""

from repro.experiments import run_experiment

from conftest import PROFILE, run_once


def test_ablation_transition_penalty(benchmark):
    result = run_once(benchmark, run_experiment, "abl-penalty", PROFILE)
    print(result.text)
    # Loss grows with the penalty; a free transition loses ~nothing.
    assert result.data[0.0]["loss"] <= result.data[20.0]["loss"]


def test_ablation_polling_accounting(benchmark):
    result = run_once(benchmark, run_experiment, "abl-polling", PROFILE)
    print(result.text)
    # With polling charged as idle, EDVS behaves like a load-follower at
    # low traffic — erasing the paper's TDVS/EDVS distinction.
    assert result.data["busy (paper)"]["transitions"] == 0
    assert result.data["idle"]["transitions"] > 0


def test_ablation_tdvs_hysteresis(benchmark):
    result = run_once(benchmark, run_experiment, "abl-hysteresis", PROFILE)
    print(result.text)
    assert result.data[0.2]["transitions"] < result.data[0.0]["transitions"]


def test_extension_combined_governor(benchmark):
    result = run_once(benchmark, run_experiment, "abl-combined", PROFILE)
    print(result.text)
    data = result.data
    assert data["combined"]["power_w"] < data["none"]["power_w"]
    assert data["combined"]["overhead_w"] < 0.01 * data["combined"]["power_w"]


def test_extension_formula1_latency(benchmark):
    result = run_once(benchmark, run_experiment, "formula1", PROFILE)
    print(result.text)
    assert result.data["instances"] > 50
