"""Benches for EDVS (Figure 10), the policy comparison (Figure 11) and
the Section 4.2 idle-time observation."""

from repro.experiments import run_experiment

from conftest import PROFILE, run_once


def test_fig10_edvs_distributions(benchmark):
    result = run_once(benchmark, run_experiment, "fig10", PROFILE)
    print(result.text)
    # Power saved at every window size, throughput essentially intact.
    assert all(saving > 0 for saving in result.data["savings"].values())
    baseline_thr = result.data["baseline_throughput_mbps"]
    assert all(
        thr >= 0.95 * baseline_thr
        for thr in result.data["edvs_throughput_mbps"].values()
    )
    # Transmit MEs never scale down.
    assert all(
        changes == [0, 0] for changes in result.data["tx_me_freq_changes"].values()
    )


def test_fig11_policy_comparison(benchmark):
    result = run_once(benchmark, run_experiment, "fig11", PROFILE)
    print(result.text)
    tdvs = result.data["tdvs_savings"]
    edvs = result.data["edvs_savings"]
    # TDVS savings shrink as traffic rises (low > high) for every benchmark.
    for bench_name, savings in tdvs.items():
        assert savings[0] > savings[-1], bench_name
    # nat gets ~no EDVS savings at any traffic level.
    assert all(saving < 0.03 for saving in edvs["nat"])
    # Memory-bound benchmarks do get EDVS savings at high traffic.
    assert edvs["ipfwdr"][-1] > 0.05
    assert edvs["url"][-1] > 0.05


def test_idle_time_bimodality(benchmark):
    result = run_once(benchmark, run_experiment, "idle", PROFILE)
    print(result.text)
    assert result.data["tx"]["<5%"] > 0.9
    assert result.data["rx"][">=30%"] > 0.1
