"""Micro-benchmarks of the substrates (statistical, multi-round).

These are conventional pytest-benchmark timings for the hot paths: the
event kernel, the LOC streaming analyzer, and whole-chip simulation
throughput per benchmark application.
"""

from repro.config import RunConfig, TrafficConfig
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.builtin import power_distribution_formula
from repro.runner import run_simulation
from repro.sim.kernel import Simulator
from repro.trace.events import TraceEvent


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch cost of 20k chained kernel events."""

    def run_kernel():
        sim = Simulator()
        remaining = [20_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(10, tick)

        sim.schedule(10, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run_kernel)
    assert events == 20_000


def test_loc_analyzer_throughput(benchmark):
    """Streaming formula (2) evaluation over 20k forward events."""
    events = [
        TraceEvent("forward", k * 600, k * 1.0, k * 1.5, k, k * 8000)
        for k in range(20_000)
    ]

    def analyze():
        analyzer = DistributionAnalyzer(power_distribution_formula())
        for event in events:
            analyzer.emit(event)
        return analyzer.finish()

    result = benchmark(analyze)
    assert result.total == 20_000 - 100


def _simulate(bench_name: str):
    config = RunConfig(
        benchmark=bench_name,
        duration_cycles=200_000,
        seed=1,
        traffic=TrafficConfig(offered_load_mbps=1000.0, process="cbr"),
    )
    return run_simulation(config)


def test_sim_throughput_ipfwdr(benchmark):
    result = benchmark.pedantic(_simulate, args=("ipfwdr",), rounds=3, iterations=1)
    assert result.totals.forwarded_packets > 0


def test_sim_throughput_nat(benchmark):
    result = benchmark.pedantic(_simulate, args=("nat",), rounds=3, iterations=1)
    assert result.totals.forwarded_packets > 0


def test_sim_throughput_md4(benchmark):
    result = benchmark.pedantic(_simulate, args=("md4",), rounds=3, iterations=1)
    assert result.totals.forwarded_packets > 0
