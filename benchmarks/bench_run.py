"""Bench for the observation path: events/sec through the LOC checkers.

Runs the :mod:`repro.bench` per-run harness over the default scenario
subset and lands the result in ``BENCH_run.json`` — whole-run
wall-clock with and without checkers, plus events/sec through the
checking path for the compiled monitors and the interpretive baseline.
The assertion is the PR-level acceptance bar: compiled monitors must
move trace events at least **2x** faster than the interpreted path.

Usable two ways::

    python -m pytest benchmarks/bench_run.py -q     # CI bench lane
    python benchmarks/bench_run.py                   # standalone

(The CLI equivalent is ``repro bench --out BENCH_run.json``, which
adds the ``--baseline`` soft regression gate.)
"""

import os
import sys

from repro.bench import (
    kernel_gain,
    load_bench_json,
    render_bench_text,
    run_bench,
    write_bench_json,
)

#: Machine-readable results artifact (cwd: uploaded by the CI bench lane).
BENCH_JSON = os.environ.get("REPRO_BENCH_RUN_JSON", "BENCH_run.json")

#: Committed reference artifact: the kernel-overhaul numbers this tree
#: is expected to hold.  ``repro bench --baseline`` gates against it in
#: CI; here it stamps the measured gain into the artifact.
BASELINE_JSON = os.path.join(os.path.dirname(__file__), "BENCH_run.baseline.json")

#: The acceptance bar: compiled checking must at least double the
#: interpreted path's events/sec.
MIN_SPEEDUP = 2.0


def _bench() -> dict:
    data = run_bench()
    if os.path.exists(BASELINE_JSON):
        # Record whole-run kernel throughput relative to the committed
        # baseline so the artifact carries the gain (or regression)
        # explicitly, not just absolute events/sec.
        data["kernel_vs_baseline"] = kernel_gain(load_bench_json(BASELINE_JSON), data)
    write_bench_json(data, BENCH_JSON)
    return data


def _gain_line(data: dict) -> str:
    gain = data.get("kernel_vs_baseline") or {}
    if not gain.get("geomean_speedup"):
        return "kernel vs committed baseline: (no baseline artifact)"
    return (
        f"kernel run_events_per_s vs committed baseline: "
        f"geomean {gain['geomean_speedup']}x, min {gain['min_speedup']}x"
    )


def test_observation_path_events_per_second(benchmark):
    from conftest import run_once

    data = run_once(benchmark, _bench)
    print("\n" + render_bench_text(data))
    print(_gain_line(data))
    speedup = data["totals"]["speedup_compiled_vs_interpreted"]
    assert speedup is not None and speedup >= MIN_SPEEDUP, (
        f"compiled monitors moved events only {speedup}x faster than the "
        f"interpreted baseline (need >= {MIN_SPEEDUP}x)"
    )


def main() -> int:
    data = _bench()
    print(render_bench_text(data))
    print(_gain_line(data))
    print(f"wrote {BENCH_JSON}")
    speedup = data["totals"]["speedup_compiled_vs_interpreted"]
    if speedup is None or speedup < MIN_SPEEDUP:
        print(
            f"FAIL: checking-path speedup {speedup} < {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
