"""Benches for the paper's static artifacts: Figures 1-5.

Each bench regenerates the artifact and prints the rows the paper shows.
"""

from repro.experiments import run_experiment

from conftest import PROFILE, run_once


def test_fig01_ixp_table(benchmark):
    result = run_once(benchmark, run_experiment, "fig01", PROFILE)
    print(result.text)
    powers = [row[5] for row in result.data["rows"][:3]]
    assert powers == sorted(powers)


def test_fig02_diurnal_traffic(benchmark):
    result = run_once(benchmark, run_experiment, "fig02", PROFILE)
    print(result.text)
    assert result.data["peak_bps"] > 5 * result.data["trough_bps"]


def test_fig03_trace_schema(benchmark):
    result = run_once(benchmark, run_experiment, "fig03", PROFILE)
    print(result.text)
    assert result.data["events"] == ["pipeline", "forward", "fifo"]


def test_fig04_trace_snapshot(benchmark):
    result = run_once(benchmark, run_experiment, "fig04", PROFILE)
    print(result.text)
    assert "forward" in result.text


def test_fig05_scaling_values(benchmark):
    result = run_once(benchmark, run_experiment, "fig05", PROFILE)
    print(result.text)
    thresholds = [round(row[2]) for row in result.data["rows"]]
    assert thresholds == [1000, 917, 833, 750, 667]
