"""Benches for the sweep engine: serial vs. parallel wall-clock.

Times the same job grid through ``run_sweep`` serially (``workers=1``,
the in-process path) and through the process pool, asserts the results
are bit-identical, and prints both wall-clock figures plus the speedup
so sweep scaling is recorded alongside the figure benches.  On
single-core runners the pool carries fork overhead with no win — the
interesting number there is how small the overhead stays.
"""

import time

from repro.sweep import SweepSpec, run_sweep

from conftest import run_once

#: A 2x2 TDVS grid plus baseline at bench-profile length.
SPEC = SweepSpec(
    policies=("none", "tdvs"),
    thresholds_mbps=(1000.0, 1400.0),
    windows_cycles=(20_000, 80_000),
    traffic=("level:high",),
    duration_cycles=400_000,
    span=20,
)


def _timed_sweep(jobs, workers):
    start = time.perf_counter()
    outcomes = run_sweep(jobs, workers=workers)
    return outcomes, time.perf_counter() - start


def test_sweep_serial_vs_parallel_wall_clock(benchmark):
    jobs = SPEC.jobs()
    serial, serial_s = _timed_sweep(jobs, 1)
    (parallel, parallel_s) = run_once(benchmark, _timed_sweep, jobs, 4)

    print(
        f"\nsweep of {len(jobs)} jobs: serial {serial_s:.2f}s, "
        f"4 workers {parallel_s:.2f}s, speedup {serial_s / parallel_s:.2f}x"
    )
    # The acceptance property: worker count never changes the numbers.
    for s, p in zip(serial, parallel):
        assert s.result.totals == p.result.totals
        assert s.power_dist.counts == p.power_dist.counts


def test_sweep_store_cache_replay_is_fast(benchmark, tmp_path):
    from repro.sweep import ResultStore

    path = str(tmp_path / "results.jsonl")
    jobs = SPEC.jobs()
    run_sweep(jobs, workers=1, store=ResultStore(path))

    start = time.perf_counter()
    replay = run_once(benchmark, run_sweep, jobs, workers=1, store=ResultStore(path))
    replay_s = time.perf_counter() - start
    print(f"\ncache replay of {len(jobs)} jobs: {replay_s:.3f}s")
    assert all(outcome.cached for outcome in replay)
