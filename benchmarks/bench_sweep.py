"""Benches for the sweep engine: per-backend wall-clock and streaming.

Times the same job grid through every execution backend — serial
(``workers=1``, the in-process path), the local process pool, and the
distributed coordinator with two loopback workers — asserts the
results are bit-identical, and prints the wall-clock figures plus the
speedup so sweep scaling is recorded alongside the figure benches.  On
single-core runners the pool/queue carry fork and socket overhead with
no win — the interesting number there is how small the overhead stays.

Sweeps run through :meth:`repro.api.Session.stream`, so each backend
also reports its **time-to-first-outcome** — the latency before a
monitoring hook (or a study's LOC gate) sees the first verdict, the
number the streaming session API exists to shrink.

Each timed backend lands in ``BENCH_sweep.json`` (per-backend
wall-clock seconds, jobs/sec and ttfo seconds), the machine-readable
artifact CI uploads so the sweep-engine perf trajectory is tracked run
over run.
"""

import json
import os
import threading
import time

from repro.api import ExecutionPolicy, Session
from repro.sweep import SweepSpec

from conftest import run_once

#: A 2x2 TDVS grid plus baseline at bench-profile length.
SPEC = SweepSpec(
    policies=("none", "tdvs"),
    thresholds_mbps=(1000.0, 1400.0),
    windows_cycles=(20_000, 80_000),
    traffic=("level:high",),
    duration_cycles=400_000,
    span=20,
)

#: Machine-readable results artifact (cwd: uploaded by the CI bench lane).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_sweep.json")


def _record(backend_name, wall_s, n_jobs, ttfo_s=None):
    """Merge one backend's figures into the JSON artifact."""
    data = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    data.setdefault("bench", "sweep")
    data["jobs"] = n_jobs
    data["duration_cycles"] = SPEC.duration_cycles
    backends = data.setdefault("backends", {})
    backends[backend_name] = {
        "wall_s": round(wall_s, 4),
        "jobs_per_s": round(n_jobs / wall_s, 4) if wall_s > 0 else None,
        "ttfo_s": round(ttfo_s, 4) if ttfo_s is not None else None,
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _timed_stream(jobs, execution=None, **session_kwargs):
    """Drain ``session.stream``; wall-clock plus time-to-first-outcome.

    Outcomes come back in completion order; callers compare via
    :func:`_by_job_order`.
    """
    session = Session(execution=execution, **session_kwargs)
    start = time.perf_counter()
    first_s = None
    outcomes = []
    for outcome in session.stream(jobs):
        if first_s is None:
            first_s = time.perf_counter() - start
        outcomes.append(outcome)
    return outcomes, time.perf_counter() - start, first_s


def _by_job_order(jobs, outcomes):
    by_id = {outcome.job_id: outcome for outcome in outcomes}
    return [by_id[job.job_id] for job in jobs]


def test_sweep_serial_vs_parallel_wall_clock(benchmark):
    jobs = SPEC.jobs()
    serial, serial_s, serial_ttfo = _timed_stream(
        jobs, ExecutionPolicy(workers=1)
    )
    (parallel, parallel_s, parallel_ttfo) = run_once(
        benchmark, _timed_stream, jobs, ExecutionPolicy(workers=4)
    )
    _record("serial", serial_s, len(jobs), ttfo_s=serial_ttfo)
    _record("process", parallel_s, len(jobs), ttfo_s=parallel_ttfo)

    print(
        f"\nsweep of {len(jobs)} jobs: serial {serial_s:.2f}s "
        f"(first outcome {serial_ttfo:.2f}s), "
        f"4 workers {parallel_s:.2f}s (first outcome {parallel_ttfo:.2f}s), "
        f"speedup {serial_s / parallel_s:.2f}x"
    )
    # The acceptance property: worker count never changes the numbers.
    for s, p in zip(serial, _by_job_order(jobs, parallel)):
        assert s.result.totals == p.result.totals
        assert s.power_dist.counts == p.power_dist.counts


def test_sweep_distributed_loopback_wall_clock(benchmark):
    """The distributed backend with two loopback workers: what the
    coordinator/queue machinery costs relative to the process pool."""
    from repro.backends import DistributedBackend
    from repro.backends.worker import run_worker

    jobs = SPEC.jobs()
    serial, serial_s, _ = _timed_stream(jobs, ExecutionPolicy(workers=1))

    def distributed_sweep():
        backend = DistributedBackend(port=0)
        workers = [
            threading.Thread(
                target=run_worker, args=(backend.address,),
                kwargs={"log": None}, daemon=True,
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes, wall_s, ttfo_s = _timed_stream(
            jobs, ExecutionPolicy(backend=backend)
        )
        for worker in workers:
            worker.join(timeout=60)
        return outcomes, wall_s, ttfo_s

    (distributed, distributed_s, distributed_ttfo) = run_once(
        benchmark, distributed_sweep
    )
    _record("distributed", distributed_s, len(jobs), ttfo_s=distributed_ttfo)

    print(
        f"\nsweep of {len(jobs)} jobs: serial {serial_s:.2f}s, distributed "
        f"(2 loopback workers) {distributed_s:.2f}s "
        f"(first outcome {distributed_ttfo:.2f}s), "
        f"speedup {serial_s / distributed_s:.2f}x"
    )
    for s, d in zip(serial, _by_job_order(jobs, distributed)):
        assert s.result.totals == d.result.totals
        assert s.power_dist.counts == d.power_dist.counts


def test_sweep_store_cache_replay_is_fast(benchmark, tmp_path):
    from repro.api import StorePolicy

    path = str(tmp_path / "results.jsonl")
    jobs = SPEC.jobs()
    _timed_stream(
        jobs, ExecutionPolicy(workers=1), store=StorePolicy(path=path)
    )

    start = time.perf_counter()
    (replay, _, replay_ttfo) = run_once(
        benchmark,
        _timed_stream,
        jobs,
        ExecutionPolicy(workers=1),
        store=StorePolicy(path=path),
    )
    replay_s = time.perf_counter() - start
    _record("store_replay", replay_s, len(jobs), ttfo_s=replay_ttfo)
    print(f"\ncache replay of {len(jobs)} jobs: {replay_s:.3f}s")
    assert all(outcome.cached for outcome in replay)
