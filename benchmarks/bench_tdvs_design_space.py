"""Benches for the TDVS design-space artifacts: Figures 6-9.

The 17-simulation grid is primed by the session fixture (untimed); the
benches time the per-figure analysis/rendering and assert the paper's
qualitative shape.
"""

from repro.experiments import run_experiment
from repro.experiments.common import TDVS_THRESHOLDS_MBPS

from conftest import PROFILE, run_once


def test_fig06_tdvs_power_distributions(benchmark, design_grid):
    result = run_once(benchmark, run_experiment, "fig06", PROFILE)
    print(result.text)
    powers = result.data["mean_power_w"]
    baseline = powers[(None, None)]
    # Every TDVS design point saves power vs. noDVS.
    assert all(
        power < baseline for key, power in powers.items() if key != (None, None)
    )
    # Smaller windows scale more aggressively -> lower power.
    for threshold in TDVS_THRESHOLDS_MBPS:
        assert powers[(threshold, 20_000)] < powers[(threshold, 80_000)]


def test_fig07_tdvs_throughput_distributions(benchmark, design_grid):
    result = run_once(benchmark, run_experiment, "fig07", PROFILE)
    print(result.text)
    throughput = result.data["throughput_mbps"]
    # The 20k window pays for its power savings with throughput.
    assert throughput[(1400.0, 20_000)] < throughput[(1400.0, 80_000)]


def test_fig08_power_surface(benchmark, design_grid):
    result = run_once(benchmark, run_experiment, "fig08", PROFILE)
    print(result.text)
    grid = result.data["grid"]
    # The 1000 Mbps threshold row (index 1) keeps the highest power at
    # large windows — it tracks the offered load and stays fast.
    assert grid[1][-1] == max(row[-1] for row in grid)


def test_fig09_throughput_surface(benchmark, design_grid):
    result = run_once(benchmark, run_experiment, "fig09", PROFILE)
    print(result.text)
    grid = result.data["grid"]
    # For the load-tracking 1000 Mbps threshold, larger windows never
    # perform worse than the penalty-heavy 20k window.
    assert grid[1][-1] >= grid[1][0]
    # Power-first and performance-first picks differ (the trade-off).
    assert result.data["argmax"][:2] != run_experiment(
        "fig08", PROFILE
    ).data["argmin"][:2]
