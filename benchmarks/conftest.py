"""Shared benchmark fixtures.

Benches run each experiment once (``pedantic`` with a single round) at
the ``bench`` profile: the goal is regenerating every figure/table and
timing the harness honestly, not statistical micro-timing of 8M-cycle
simulations.
"""

from __future__ import annotations

import pytest

#: Profile used by all figure benches.
PROFILE = "bench"


@pytest.fixture(scope="session")
def design_grid():
    """Prime the shared Figures 6-9 grid outside any timed region."""
    from repro.experiments.common import tdvs_design_space

    return tdvs_design_space(PROFILE)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
