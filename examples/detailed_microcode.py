#!/usr/bin/env python3
"""Detailed execution: assemble microcode, inspect it, run it on the chip.

1. Assembles a small custom microcode program and single-steps it
   through the interpreter, showing the step stream it produces.
2. Shows the shipped `ipfwdr_uc` program's disassembly (the stride-trie
   walk the microengines execute) and the table the serializer laid out
   in simulated SRAM.
3. Runs a full-chip simulation with the `ipfwdr_uc` benchmark —
   every forwarded packet's route was decided by interpreted microcode
   reading real SRAM words — and compares against the fast model.

Run:  python examples/detailed_microcode.py
"""

from repro import RunConfig, TrafficConfig, run_simulation
from repro.apps.base import AppResources
from repro.apps.detailed import IpfwdrMicrocodeApp
from repro.npu.assembler import assemble
from repro.npu.interpreter import Interpreter
from repro.npu.memstore import MemStore
from repro.sim.rng import RngStreams
from repro.traffic.packet import Packet

DEMO_SOURCE = """
.name checksum_demo
.equ ACC_ADDR, 0x40

    ; fold the 5-tuple into a 16-bit value and stash it in scratch
    hash    r1, pkt_src, pkt_dst
    hash    r1, r1, pkt_sport
    and     r1, r1, 0xffff
    li      r2, ACC_ADDR
    scratch_wr r2, r1, 4
    sram_rd r3, r2, 4          ; dummy table touch (timing-visible)
    set_out_port pkt_port
    puttx
    done
"""


def make_packet(seq=0, dst=0x0A0B0C0D):
    return Packet(
        seq=seq, arrival_ps=0, size_bytes=256, src_ip=0xC0A80001, dst_ip=dst,
        src_port=1234, dst_port=80, protocol=6, flow_id=seq % 64, input_port=3,
    )


def main() -> None:
    # -- 1. a tiny custom program, single-stepped -----------------------
    program = assemble(DEMO_SOURCE)
    stores = {
        "sram": MemStore("sram", 1 << 16),
        "sdram": MemStore("sdram", 1 << 20),
        "scratch": MemStore("scratch", 1 << 12),
    }
    interpreter = Interpreter(program, stores)
    packet = make_packet()
    steps = list(interpreter.steps_for_packet(packet))
    print(f"'{program.name}' retired {interpreter.instructions_retired} "
          f"instructions and produced {len(steps)} steps:")
    for step in steps[:12]:
        print(f"   {step!r}")
    print(f"scratch[0x40] = {stores['scratch'].read_word(0x40):#x} "
          f"(the folded 5-tuple)\n")

    # -- 2. the shipped ipfwdr microcode ---------------------------------
    app = IpfwdrMicrocodeApp(AppResources(num_ports=16,
                                          rng_streams=RngStreams(7)))
    listing = app.program.disassemble().splitlines()
    print(f"ipfwdr_uc: {len(app.program)} instructions, "
          f"{app.tables_emitted} stride tables serialized into SRAM "
          f"({app.stores['sram'].words_in_use} words)")
    print("\n".join(listing[:14]) + "\n   ...\n")

    # Per-packet routing decided by real table walks:
    for dst in (0x0A0B0C0D, 0x7F000001, 0xC0A80A0A):
        pkt = make_packet(dst=dst)
        list(app.rx_steps(pkt))
        port, depth = app.trie.lookup(dst)
        print(f"   dst={dst:#010x}: microcode routed to port "
              f"{pkt.output_port}, binary-trie reference says {port} "
              f"(depth {depth} bits)")
    print()

    # -- 3. full-chip runs: detailed vs fast -------------------------------
    for bench in ("ipfwdr_uc", "ipfwdr"):
        config = RunConfig(
            benchmark=bench, duration_cycles=300_000, seed=3,
            traffic=TrafficConfig(offered_load_mbps=700.0, process="cbr"),
        )
        result = run_simulation(config)
        totals = result.totals
        print(f"{bench:10s}: forwarded {totals.forwarded_packets:4d} packets, "
              f"{totals.throughput_mbps:6.1f} Mbps, "
              f"{totals.mean_power_w:.3f} W, loss {totals.loss_fraction:.3f}")


if __name__ == "__main__":
    main()
