"""Run a design-space sweep through the distributed backend.

Spins up the TCP coordinator (:class:`repro.backends.DistributedBackend`)
on an ephemeral loopback port, joins it with two in-process workers —
the exact pull-loop ``repro worker --connect HOST:PORT`` runs on other
machines — and drains a TDVS grid through the queue, then re-runs the
same grid serially to show the outcomes are bit-identical.

In real deployments the workers are separate processes on separate
hosts::

    # coordinator machine
    PYTHONPATH=src python -m repro sweep --policy tdvs \\
        --backend distributed --connect 0.0.0.0:7641

    # each worker machine
    PYTHONPATH=src python -m repro worker --connect COORDINATOR:7641

Usage::

    PYTHONPATH=src python examples/distributed_sweep.py [n_workers]
"""

import sys
import threading

from repro.api import ExecutionPolicy, Session
from repro.backends import DistributedBackend
from repro.backends.worker import run_worker
from repro.sweep import SweepSpec, summarize


def main() -> int:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = SweepSpec(
        policies=("none", "tdvs"),
        thresholds_mbps=(1000.0, 1400.0),
        windows_cycles=(20_000, 80_000),
        traffic=("scenario:flash_crowd",),
        duration_cycles=400_000,
        seeds=(7,),
    )
    jobs = spec.jobs()

    backend = DistributedBackend(port=0)  # ephemeral loopback port
    print(f"coordinator listening on {backend.address}")
    workers = [
        threading.Thread(
            target=run_worker,
            args=(backend.address,),
            kwargs={"log": None},
            daemon=True,
        )
        for _ in range(n_workers)
    ]
    for worker in workers:
        worker.start()
    print(f"{len(jobs)} jobs across {n_workers} loopback workers")

    session = Session(execution=ExecutionPolicy(backend=backend))
    distributed = session.sweep(jobs)
    for worker in workers:
        worker.join(timeout=30)
    print(summarize(distributed))

    serial = Session(execution=ExecutionPolicy(workers=1)).sweep(jobs)
    identical = all(
        d.result.totals == s.result.totals for d, s in zip(distributed, serial)
    )
    print(f"\nbit-identical to the serial run: {'yes' if identical else 'NO'}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
