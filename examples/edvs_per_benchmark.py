#!/usr/bin/env python3
"""EDVS across all four benchmarks (the paper's Section 4.2/4.3 story).

For each benchmark the script runs no-DVS and EDVS at a high traffic
sample and reports power savings, throughput change and the per-ME
frequency picture.  The paper's qualitative findings show up directly:

* `nat` (compute-bound, ~no memory waits) gets no savings — its MEs are
  never idle, so EDVS never scales them down;
* the memory-intensive benchmarks (`url`, `md4`, `ipfwdr`) idle on SDRAM
  under load and get solid savings with near-zero throughput cost;
* transmit MEs never scale down on any benchmark.

Run:  python examples/edvs_per_benchmark.py
"""

from repro import DvsConfig, RunConfig, TrafficConfig, run_simulation

CYCLES = 1_600_000
LOAD_MBPS = 1550.0


def run(benchmark: str, policy: str):
    config = RunConfig(
        benchmark=benchmark,
        duration_cycles=CYCLES,
        seed=7,
        traffic=TrafficConfig(offered_load_mbps=LOAD_MBPS),
        dvs=DvsConfig(policy=policy, window_cycles=40_000, idle_threshold=0.10),
    )
    return run_simulation(config)


def main() -> None:
    print(f"EDVS vs noDVS at {LOAD_MBPS:.0f} Mbps offered "
          f"({CYCLES:,} reference cycles)\n")
    header = (f"{'benchmark':9s} {'noDVS W':>8s} {'EDVS W':>8s} {'saving':>7s} "
              f"{'thr delta':>9s} {'rx idle':>8s} {'rx freqs (MHz)':>20s}")
    print(header)
    print("-" * len(header))
    for benchmark in ("ipfwdr", "url", "nat", "md4"):
        base = run(benchmark, "none")
        edvs = run(benchmark, "edvs")
        saving = 1.0 - edvs.mean_power_w / base.mean_power_w
        thr_delta = (
            edvs.throughput_mbps / base.throughput_mbps - 1.0
            if base.throughput_mbps
            else 0.0
        )
        rx = [me for me in base.totals.me_summaries if me.role == "rx"]
        rx_idle = sum(me.idle_fraction for me in rx) / len(rx)
        rx_freqs = [
            f"{me.freq_mhz:.0f}"
            for me in edvs.totals.me_summaries
            if me.role == "rx"
        ]
        print(f"{benchmark:9s} {base.mean_power_w:8.3f} {edvs.mean_power_w:8.3f} "
              f"{saving * 100:6.1f}% {thr_delta * 100:+8.2f}% "
              f"{rx_idle * 100:7.1f}% {'/'.join(rx_freqs):>20s}")

    print("\nTransmit MEs (any benchmark) never scale down: their threads "
          "poll the TFIFO between transfers, so idle time stays under the "
          "10% threshold — exactly the paper's observation.")


if __name__ == "__main__":
    main()
