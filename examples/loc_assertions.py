#!/usr/bin/env python3
"""Logic of Constraints end to end: checkers, analyzers, code generation.

1. Runs a short simulation and writes a NePSim-style text trace.
2. Checks a latency-style assertion over the live event stream.
3. Runs the paper's formula (2) distribution analysis two ways:
   in-process and through a *generated standalone analyzer script*
   executed on the trace file — and shows they agree.

Run:  python examples/loc_assertions.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro import RunConfig, TrafficConfig, run_simulation
from repro.loc import (
    DistributionAnalyzer,
    build_checker,
    generate_analyzer_source,
    power_distribution_formula,
)
from repro.trace.writer import TextTraceWriter

FORMULA = power_distribution_formula(span=25)

#: Forwarded packets must be counted one at a time — a sanity assertion
#: in the style of the paper's original LOC checkers.
CHECKER_TEXT = "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="loc_demo_"))
    trace_path = workdir / "trace.txt"

    # 1. Simulate with three sinks: a file writer, a checker, an analyzer.
    writer = TextTraceWriter.open(str(trace_path))
    checker = build_checker(CHECKER_TEXT)
    analyzer = DistributionAnalyzer(FORMULA)
    config = RunConfig(
        benchmark="ipfwdr",
        duration_cycles=600_000,
        seed=3,
        traffic=TrafficConfig(offered_load_mbps=900.0),
    )
    result = run_simulation(config, sinks=[writer, checker, analyzer])
    writer.close()
    print(f"simulated {result.totals.forwarded_packets} forwarded packets; "
          f"trace: {trace_path}")

    # 2. The checker's verdict.
    print()
    print(checker.finish().report())

    # 3. In-process distribution vs. the generated standalone analyzer.
    in_process = analyzer.finish()
    print()
    print(in_process.report(max_rows=8))

    script_path = workdir / "gen_analyzer.py"
    script_path.write_text(generate_analyzer_source(FORMULA))
    print(f"\ngenerated standalone analyzer: {script_path}")
    completed = subprocess.run(
        [sys.executable, str(script_path), str(trace_path)],
        capture_output=True, text=True, check=True,
    )
    head = "\n".join(completed.stdout.splitlines()[:6])
    print("standalone analyzer output (head):")
    print(head)

    generated_total = next(
        line for line in completed.stdout.splitlines() if "instances" in line
    )
    print(f"\nagreement: in-process instances={in_process.total}; "
          f"standalone reports '{generated_total.strip()}'")


if __name__ == "__main__":
    main()
