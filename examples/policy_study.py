"""Scenario-conditioned DVS policy study, end to end.

Runs the study engine (:mod:`repro.studies`) over a few catalog
workloads: every (policy, threshold, window) candidate is simulated
through the parallel sweep engine with per-scenario LOC assertion gates
attached, then reduced to the per-scenario optimal-policy map — the
cheapest configuration *whose assertions hold* — plus the full
power / loss / latency Pareto front per scenario.  Re-running the
script skips every completed job via the store cache.

Per-scenario verdicts stream as each scenario's grid drains
(``on_scenario_complete``) — the session-API payoff: LOC-gated winners
appear while later scenarios are still simulating.

Usage::

    PYTHONPATH=src python examples/policy_study.py [workers]
"""

import sys

from repro.api import EventHooks, ExecutionPolicy, Session, StorePolicy
from repro.studies import StudySpec
from repro.studies.report import render_markdown, render_pareto_text, render_text
from repro.sweep import progress_printer

SCENARIOS = ("flash_crowd", "link_failover", "bursty_onoff", "overnight_trough")


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = StudySpec(
        scenarios=SCENARIOS,
        policies=("tdvs", "edvs"),
        thresholds_mbps=(1000.0, 1400.0),  # performance-first vs power-first
        windows_cycles=(20_000, 80_000),
        duration_cycles=400_000,
        span=20,
        objective="min_energy",
    )
    print(f"{spec.job_count()} jobs across {len(SCENARIOS)} scenarios, "
          f"{workers} workers")
    session = Session(
        execution=ExecutionPolicy(workers=workers),
        store=StorePolicy(path="policy_study_results.jsonl"),
        hooks=EventHooks(progress=progress_printer()),
    )
    result = session.study(
        spec,
        on_scenario_complete=lambda verdict: print(
            f"  -> {verdict.scenario}: "
            + (verdict.winner.policy if verdict.winner else "no gated winner")
        ),
    )

    print()
    print(render_text(result.policy_map))
    for verdict in result.policy_map:
        print()
        print(render_pareto_text(verdict))

    with open("policy_study_report.md", "w", encoding="utf-8") as handle:
        handle.write(render_markdown(result.policy_map))
    print("\nwrote policy_study_report.md "
          f"({result.cached_jobs}/{result.total_jobs} jobs from cache)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
