#!/usr/bin/env python3
"""Quickstart: simulate the NPU, attach LOC analyzers, compare policies.

Runs the `ipfwdr` benchmark at a medium traffic sample three times — no
DVS, traffic-based DVS (TDVS) and execution-based DVS (EDVS) — with the
paper's power/throughput LOC formulas attached as live trace sinks, then
prints a side-by-side summary.

Run:  python examples/quickstart.py
"""

from repro import DvsConfig, RunConfig, TrafficConfig, run_simulation
from repro.loc import (
    DistributionAnalyzer,
    power_distribution_formula,
    throughput_distribution_formula,
)

CYCLES = 1_600_000  # ~2.7 ms of simulated time at the 600 MHz reference
LOAD_MBPS = 1000.0


def simulate(policy: str):
    """Run one policy and return (result, power dist, throughput dist)."""
    power = DistributionAnalyzer(power_distribution_formula(span=50))
    throughput = DistributionAnalyzer(throughput_distribution_formula(span=50))
    config = RunConfig(
        benchmark="ipfwdr",
        duration_cycles=CYCLES,
        seed=7,
        traffic=TrafficConfig(offered_load_mbps=LOAD_MBPS),
        dvs=DvsConfig(
            policy=policy,
            window_cycles=40_000,
            top_threshold_mbps=1000.0,
            idle_threshold=0.10,
        )
        if policy != "none"
        else DvsConfig(policy="none"),
    )
    result = run_simulation(config, sinks=[power, throughput])
    return result, power.finish(), throughput.finish()


def main() -> None:
    print(f"ipfwdr at {LOAD_MBPS:.0f} Mbps offered, {CYCLES:,} reference cycles\n")
    baseline_power = None
    for policy in ("none", "tdvs", "edvs"):
        result, power, throughput = simulate(policy)
        totals = result.totals
        if baseline_power is None:
            baseline_power = totals.mean_power_w
        saving = 1.0 - totals.mean_power_w / baseline_power
        print(f"policy={policy:5s}  power={totals.mean_power_w:.3f} W "
              f"(saving {saving * 100:5.1f}%)  "
              f"throughput={totals.throughput_mbps:7.1f} Mbps  "
              f"loss={totals.loss_fraction * 100:.2f}%  "
              f"transitions={result.governor_transitions}")
        # The paper's 80%-level readouts (Figures 8/9 use exactly these):
        print(f"              80% of power samples below "
              f"{power.level_cutoff(0.8):.3f} W; 80% of throughput samples "
              f"above {throughput.level_cutoff(0.8):.0f} Mbps")
    print("\nPer-ME view of the last run (EDVS):")
    for me in result.totals.me_summaries:
        print(f"  ME{me.index} ({me.role})  freq={me.freq_mhz:.0f} MHz  "
              f"busy={me.busy_fraction * 100:4.1f}%  "
              f"idle={me.idle_fraction * 100:4.1f}%")


if __name__ == "__main__":
    main()
