"""Sweep DVS policies across catalog traffic scenarios, in parallel.

Runs the no-DVS baseline plus the paper's optimal TDVS and EDVS
configurations against a handful of catalog workloads
(:mod:`repro.scenarios`), fanned out over worker processes with a JSONL
result store, then prints per-scenario power savings.  Re-running the
script skips every completed job via the store cache.

Usage::

    PYTHONPATH=src python examples/scenario_sweep.py [workers]
"""

import sys

from repro.sweep import ResultStore, SweepSpec, progress_printer, run_sweep

SCENARIOS = ("flash_crowd", "ddos_min64", "bursty_onoff", "overnight_trough")


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = SweepSpec(
        policies=("none", "tdvs", "edvs"),
        thresholds_mbps=(1400.0,),   # the paper's power-first TDVS pick
        windows_cycles=(40_000,),
        traffic=tuple(f"scenario:{name}" for name in SCENARIOS),
        duration_cycles=400_000,
        seeds=(7,),
    )
    jobs = spec.jobs()
    print(f"{len(jobs)} jobs across {len(SCENARIOS)} scenarios, {workers} workers")
    outcomes = run_sweep(
        jobs,
        workers=workers,
        store=ResultStore("scenario_sweep_results.jsonl"),
        progress=progress_printer(),
    )

    by_key = {o.label: o for o in outcomes}
    print(f"\n{'scenario':18s} {'noDVS W':>8s} {'TDVS W':>8s} {'EDVS W':>8s} "
          f"{'TDVS sav':>9s} {'EDVS sav':>9s}")
    for name in SCENARIOS:
        token = f"scenario:{name}"
        base = next(o for label, o in by_key.items() if token in label and " none" in label)
        tdvs = next(o for label, o in by_key.items() if token in label and " tdvs" in label)
        edvs = next(o for label, o in by_key.items() if token in label and " edvs" in label)
        print(
            f"{name:18s} {base.mean_power_w:8.3f} {tdvs.mean_power_w:8.3f} "
            f"{edvs.mean_power_w:8.3f} "
            f"{(1 - tdvs.mean_power_w / base.mean_power_w) * 100:8.1f}% "
            f"{(1 - edvs.mean_power_w / base.mean_power_w) * 100:8.1f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
