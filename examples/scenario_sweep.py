"""Sweep DVS policies across catalog traffic scenarios, in parallel.

Runs the no-DVS baseline plus the paper's optimal TDVS and EDVS
configurations against a handful of catalog workloads
(:mod:`repro.scenarios`) through a :class:`repro.api.Session` — the
execution policy (workers) and store policy (JSONL cache) are bound
once, then the sweep runs under them — and prints per-scenario power
savings.  Re-running the script skips every completed job via the
store cache.

Usage::

    PYTHONPATH=src python examples/scenario_sweep.py [workers]
"""

import sys

from repro.api import EventHooks, ExecutionPolicy, Session, StorePolicy
from repro.sweep import SweepSpec, progress_printer

SCENARIOS = ("flash_crowd", "ddos_min64", "bursty_onoff", "overnight_trough")


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = SweepSpec(
        policies=("none", "tdvs", "edvs"),
        thresholds_mbps=(1400.0,),   # the paper's power-first TDVS pick
        windows_cycles=(40_000,),
        traffic=tuple(f"scenario:{name}" for name in SCENARIOS),
        duration_cycles=400_000,
        seeds=(7,),
    )
    jobs = spec.jobs()
    print(f"{len(jobs)} jobs across {len(SCENARIOS)} scenarios, {workers} workers")
    session = Session(
        execution=ExecutionPolicy(workers=workers),
        store=StorePolicy(path="scenario_sweep_results.jsonl"),
        hooks=EventHooks(progress=progress_printer()),
    )
    outcomes = session.sweep(jobs)

    by_key = {o.label: o for o in outcomes}
    print(f"\n{'scenario':18s} {'noDVS W':>8s} {'TDVS W':>8s} {'EDVS W':>8s} "
          f"{'TDVS sav':>9s} {'EDVS sav':>9s}")
    for name in SCENARIOS:
        token = f"scenario:{name}"
        base = next(o for label, o in by_key.items() if token in label and " none" in label)
        tdvs = next(o for label, o in by_key.items() if token in label and " tdvs" in label)
        edvs = next(o for label, o in by_key.items() if token in label and " edvs" in label)
        print(
            f"{name:18s} {base.mean_power_w:8.3f} {tdvs.mean_power_w:8.3f} "
            f"{edvs.mean_power_w:8.3f} "
            f"{(1 - tdvs.mean_power_w / base.mean_power_w) * 100:8.1f}% "
            f"{(1 - edvs.mean_power_w / base.mean_power_w) * 100:8.1f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
