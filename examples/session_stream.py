"""Stream sweep outcomes in completion order through a Session.

The session API's headline behaviour: ``session.stream(spec)`` yields
:class:`~repro.sweep.store.SweepOutcome` objects the moment each job
finishes — on any backend — instead of waiting for the whole grid.
Event hooks (``on_job_start`` / ``on_check_failed``) narrate dispatches
and LOC-assertion failures live, the monitor-while-executing style the
paper's assertion-based methodology motivates.

Usage::

    PYTHONPATH=src python examples/session_stream.py [workers]
"""

import sys
import time

from repro.api import EventHooks, ExecutionPolicy, Session
from repro.sweep import SweepSpec

#: A latency assertion every job carries: 20-packet spans must clear
#: in 120 microseconds (aggressive DVS points can violate it under
#: bursts; the hook below reports any that do, as they complete).
SPAN_CHECK = "time(forward[i+20]) - time(forward[i]) <= 120"


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    spec = SweepSpec(
        policies=("none", "tdvs"),
        thresholds_mbps=(1000.0, 1400.0),
        windows_cycles=(20_000, 80_000),
        traffic=("level:high",),
        duration_cycles=400_000,
        checks=(SPAN_CHECK,),
    )
    jobs = spec.jobs()
    session = Session(
        execution=ExecutionPolicy(workers=workers),
        hooks=EventHooks(
            on_job_start=lambda job: print(f"  started  {job.label}"),
            on_check_failed=lambda outcome, failed: print(
                f"  CHECK FAILED  {outcome.label}: "
                + "; ".join(
                    f"{c.violations_total} violation(s) of {c.formula_text!r}"
                    for c in failed
                )
            ),
        ),
    )

    print(f"streaming {len(jobs)} jobs over {workers} workers")
    start = time.perf_counter()
    for k, outcome in enumerate(session.stream(jobs), start=1):
        elapsed = time.perf_counter() - start
        print(
            f"[{k}/{len(jobs)} at {elapsed:5.1f}s] {outcome.label}: "
            f"{outcome.mean_power_w:.3f} W, "
            f"{outcome.throughput_mbps:.0f} Mbps, "
            f"checks {'ok' if outcome.assertions_passed else 'FAILED'}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
