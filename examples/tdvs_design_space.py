#!/usr/bin/env python3
"""TDVS design-space exploration (the paper's Section 4.1 workflow).

Sweeps the traffic threshold x window-size grid for `ipfwdr` at a high
traffic sample, extracts the 80%-level power and throughput values from
the auto-generated LOC distribution analyzers, prints both surfaces, and
reads off the power-first and performance-first design points — exactly
how the paper's Figures 8/9 are used.

Run:  python examples/tdvs_design_space.py        (quick, ~1 minute)
      python examples/tdvs_design_space.py paper  (full 8M-cycle runs)
"""

import sys

from repro.analysis.report import format_surface
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    tdvs_design_space,
)
from repro.experiments.fig08_power_surface import build_power_surface
from repro.experiments.fig09_throughput_surface import build_throughput_surface


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "quick"
    print(f"running the 17-simulation design grid (profile={profile}) ...")
    grid = tdvs_design_space(profile)
    baseline = grid[(None, None)]
    print(f"no-DVS baseline: {baseline.result.mean_power_w:.3f} W, "
          f"{baseline.result.throughput_mbps:.0f} Mbps\n")

    power_surface = build_power_surface(profile)
    print(format_surface(
        power_surface.row_values, power_surface.col_values, power_surface.grid(),
        row_label="thr Mbps", col_label="window",
        title="Power (W) at the 80% CDF level  [Figure 8]",
    ))
    print()
    throughput_surface = build_throughput_surface(profile)
    print(format_surface(
        throughput_surface.row_values, throughput_surface.col_values,
        throughput_surface.grid(),
        row_label="thr Mbps", col_label="window",
        title="Throughput (Mbps) at the 80% CCDF level  [Figure 9]",
    ))

    thr_p, win_p, val_p = power_surface.argmin()
    thr_t, win_t, val_t = throughput_surface.argmax()
    print(f"\npower-first pick      : threshold {thr_p:.0f} Mbps, "
          f"window {win_p} cycles ({val_p:.3f} W)")
    print(f"performance-first pick: threshold {thr_t:.0f} Mbps, "
          f"window {win_t} cycles ({val_t:.0f} Mbps)")


if __name__ == "__main__":
    main()
