#!/usr/bin/env python3
"""The traffic substrate: a synthetic NLANR-like day, sampled and replayed.

1. Builds the diurnal day model and prints a Figure 2-style max/med/min
   table (with an ASCII sparkline of the median).
2. Derives the high/medium/low segments the experiments simulate.
3. Generates a few milliseconds of the high segment, writes the packets
   to a portable CSV trace, reads them back, and verifies the replay is
   byte-identical — the workflow for pinning experiment inputs.

Run:  python examples/traffic_day.py
"""

import io

from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.traffic import (
    DiurnalModel,
    TrafficSampler,
    TrafficSource,
    read_packet_trace,
    write_packet_trace,
)

BARS = " .:-=+*#%@"


def sparkline(values):
    top = max(values) or 1.0
    return "".join(BARS[min(len(BARS) - 1, int(v / top * (len(BARS) - 1)))]
                   for v in values)


def main() -> None:
    model = DiurnalModel()
    buckets = model.sample_day(bucket_s=1800.0, samples_per_bucket=20)

    print("Synthetic day profile (Figure 2 shape):")
    meds = [bucket.med_bps for bucket in buckets]
    print("  median  " + sparkline(meds))
    shown = buckets[::4]
    for bucket in shown:
        print(f"  {bucket.label}  max={bucket.max_bps / 1e6:7.1f}  "
              f"med={bucket.med_bps / 1e6:7.1f}  "
              f"min={bucket.min_bps / 1e6:7.1f}  Mbit/s")

    sampler = TrafficSampler(model)
    print("\nSampled segments (scaled to the NPU's regime):")
    segments = sampler.all_segments()
    for level in ("low", "med", "high"):
        spec = segments[level]
        print(f"  {level:4s}: {spec.offered_load_bps / 1e6:7.0f} Mbps "
              f"({spec.process}, burst ratio {spec.burst_ratio})")

    # Generate and replay the high segment.
    sim = Simulator()
    packets = []
    source = TrafficSource.from_spec(
        sim, lambda port, packet: packets.append(packet),
        segments["high"], rng_streams=RngStreams(2005),
    )
    source.start(stop_ps=3_000_000_000)  # 3 ms
    sim.run()
    print(f"\ngenerated {len(packets)} packets in 3 ms "
          f"({source.offered_load_bps / 1e6:.0f} Mbps measured)")

    buffer = io.StringIO()
    write_packet_trace(packets, buffer)
    buffer.seek(0)
    replayed = list(read_packet_trace(buffer))
    assert replayed == packets
    print(f"trace round-trip OK: {len(replayed)} packets identical after "
          f"CSV write/read")
    ports = {}
    for packet in packets:
        ports[packet.input_port] = ports.get(packet.input_port, 0) + 1
    busiest = max(ports.items(), key=lambda kv: kv[1])
    print(f"port spread: {len(ports)} ports hit; busiest port {busiest[0]} "
          f"saw {busiest[1]} packets")


if __name__ == "__main__":
    main()
