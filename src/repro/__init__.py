"""repro — assertion-based design exploration of DVS in network processors.

A production-quality reproduction of *"Assertion-Based Design Exploration
of DVS in Network Processor Architectures"* (DATE 2005): a cycle-level
IXP1200-class NPU model with a power estimator, the paper's two DVS
policies (traffic-based and execution-based), its four benchmark
applications, an NLANR-like synthetic traffic substrate, and a full
Logic-of-Constraints (LOC) implementation with automatically generated
trace checkers and distribution analyzers.

Quickstart
----------
>>> from repro import RunConfig, DvsConfig, run_simulation
>>> from repro.loc import DistributionAnalyzer, power_distribution_formula
>>> analyzer = DistributionAnalyzer(power_distribution_formula())
>>> config = RunConfig(
...     benchmark="ipfwdr",
...     duration_cycles=200_000,
...     dvs=DvsConfig(policy="tdvs", window_cycles=40_000,
...                   top_threshold_mbps=1000.0),
... )
>>> result = run_simulation(config, sinks=[analyzer])
>>> result.totals.forwarded_packets > 0
True

Grids, studies and experiments run through the session API
(:mod:`repro.api`) — a :class:`~repro.api.session.Session` owns the
execution policy (backend, workers, store, event hooks) once:

>>> from repro import ExecutionPolicy, Session
>>> session = Session(execution=ExecutionPolicy(backend="serial"))

See ``examples/`` for runnable scenarios and ``repro.experiments`` for
the per-figure reproduction harnesses.
"""

from repro.api import EventHooks, ExecutionPolicy, Session, StorePolicy
from repro.config import (
    DvsConfig,
    MemoryConfig,
    NpuConfig,
    PowerConfig,
    RunConfig,
    TrafficConfig,
)
from repro.errors import ReproError
from repro.runner import RunResult, SimulationRun, run_simulation
from repro.scenarios import Scenario, get_scenario, list_scenarios
from repro.studies import PolicyMap, StudySpec, run_study
from repro.sweep import ResultStore, SweepSpec, run_sweep
from repro.version import PAPER, __version__

__all__ = [
    "DvsConfig",
    "EventHooks",
    "ExecutionPolicy",
    "MemoryConfig",
    "NpuConfig",
    "PAPER",
    "PolicyMap",
    "PowerConfig",
    "ReproError",
    "ResultStore",
    "RunConfig",
    "RunResult",
    "Scenario",
    "Session",
    "SimulationRun",
    "StorePolicy",
    "StudySpec",
    "SweepSpec",
    "TrafficConfig",
    "__version__",
    "get_scenario",
    "list_scenarios",
    "run_simulation",
    "run_study",
    "run_sweep",
]
