"""Analysis utilities on top of LOC distribution results.

* :mod:`~repro.analysis.surface` — the (threshold x window) percentile
  surfaces of the paper's Figures 8 and 9;
* :mod:`~repro.analysis.report` — plain-text renderers for every figure
  and table (curve series, 3-D surface grids, comparison panels);
* :mod:`~repro.analysis.compare` — policy comparison summaries
  (Figure 11's noDVS / EDVS / TDVS panels).
"""

from repro.analysis.compare import PolicyComparison, PolicyOutcome
from repro.analysis.report import (
    format_curve,
    format_curve_family,
    format_surface,
    format_table,
)
from repro.analysis.surface import PercentileSurface

__all__ = [
    "PercentileSurface",
    "PolicyComparison",
    "PolicyOutcome",
    "format_curve",
    "format_curve_family",
    "format_surface",
    "format_table",
]
