"""Policy comparison: the Figure 11 reduction.

For each (benchmark, traffic level) cell the paper overlays the power
distributions of noDVS / EDVS / TDVS.  :class:`PolicyComparison` holds
the three outcomes per cell, computes power savings and throughput deltas
relative to the no-DVS baseline, and renders the comparison panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.errors import AnalysisError
from repro.loc.analyzer import DistributionResult


@dataclass
class PolicyOutcome:
    """One policy's measured outcome in one cell."""

    policy: str
    mean_power_w: float
    throughput_mbps: float
    loss_fraction: float
    power_distribution: Optional[DistributionResult] = None


class PolicyComparison:
    """Grid of outcomes keyed by (benchmark, level, policy)."""

    POLICIES = ("none", "edvs", "tdvs")

    def __init__(self, benchmarks: Sequence[str], levels: Sequence[str]):
        if not benchmarks or not levels:
            raise AnalysisError("comparison axes must be non-empty")
        self.benchmarks = list(benchmarks)
        self.levels = list(levels)
        self._cells: Dict[Tuple[str, str, str], PolicyOutcome] = {}

    def add(self, benchmark: str, level: str, outcome: PolicyOutcome) -> None:
        """Record one policy outcome."""
        if benchmark not in self.benchmarks or level not in self.levels:
            raise AnalysisError(f"cell ({benchmark}, {level}) not on the axes")
        if outcome.policy not in self.POLICIES:
            raise AnalysisError(f"unknown policy {outcome.policy!r}")
        self._cells[(benchmark, level, outcome.policy)] = outcome

    def outcome(self, benchmark: str, level: str, policy: str) -> PolicyOutcome:
        """Fetch one recorded outcome."""
        try:
            return self._cells[(benchmark, level, policy)]
        except KeyError:
            raise AnalysisError(
                f"no outcome recorded for ({benchmark}, {level}, {policy})"
            ) from None

    def power_saving(self, benchmark: str, level: str, policy: str) -> float:
        """Fractional power saving of ``policy`` vs. the no-DVS baseline."""
        baseline = self.outcome(benchmark, level, "none").mean_power_w
        if baseline <= 0:
            raise AnalysisError("baseline power must be positive")
        measured = self.outcome(benchmark, level, policy).mean_power_w
        return 1.0 - measured / baseline

    def throughput_delta(self, benchmark: str, level: str, policy: str) -> float:
        """Fractional throughput change vs. the no-DVS baseline."""
        baseline = self.outcome(benchmark, level, "none").throughput_mbps
        if baseline <= 0:
            return 0.0
        measured = self.outcome(benchmark, level, policy).throughput_mbps
        return measured / baseline - 1.0

    # ------------------------------------------------------------------
    # Paper-conclusion checks (used by tests and EXPERIMENTS.md)
    # ------------------------------------------------------------------
    def tdvs_savings_by_level(self, benchmark: str) -> List[float]:
        """TDVS savings ordered by the comparison's level order."""
        return [
            self.power_saving(benchmark, level, "tdvs") for level in self.levels
        ]

    def edvs_savings_by_level(self, benchmark: str) -> List[float]:
        """EDVS savings ordered by the comparison's level order."""
        return [
            self.power_saving(benchmark, level, "edvs") for level in self.levels
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, title: str = "Policy comparison (vs. noDVS)") -> str:
        """The Figure 11 panel as a table."""
        headers = (
            "benchmark",
            "traffic",
            "noDVS W",
            "EDVS W",
            "EDVS save",
            "TDVS W",
            "TDVS save",
            "EDVS thr delta",
            "TDVS thr delta",
        )
        rows = []
        for benchmark in self.benchmarks:
            for level in self.levels:
                base = self.outcome(benchmark, level, "none")
                edvs = self.outcome(benchmark, level, "edvs")
                tdvs = self.outcome(benchmark, level, "tdvs")
                rows.append(
                    (
                        benchmark,
                        level,
                        f"{base.mean_power_w:.3f}",
                        f"{edvs.mean_power_w:.3f}",
                        f"{self.power_saving(benchmark, level, 'edvs') * 100:.1f}%",
                        f"{tdvs.mean_power_w:.3f}",
                        f"{self.power_saving(benchmark, level, 'tdvs') * 100:.1f}%",
                        f"{self.throughput_delta(benchmark, level, 'edvs') * 100:+.1f}%",
                        f"{self.throughput_delta(benchmark, level, 'tdvs') * 100:+.1f}%",
                    )
                )
        return format_table(headers, rows, title=title)
