"""Static invariant checker for the repo's own determinism contracts.

``repro lint`` runs three AST-based pass families from one shared
parse cache (one ``ast.parse`` per file):

* **determinism** (``DET1xx``) — hazards that can break cross-backend
  bit-identity (:mod:`~repro.analysis.lint.determinism`);
* **LOC formulas** (``LOC2xx``) — compiled-vs-fallback classification,
  bound vacuity, unknown event names
  (:mod:`~repro.analysis.lint.formulas`, registry from
  :mod:`~repro.analysis.lint.channels`);
* **wire/schema** (``WIRE3xx``) — protocol key vocabulary and schema
  version drift (:mod:`~repro.analysis.lint.wire`).

Findings are suppressed per line with ``# repro: noqa(RULE)``; the
``--strict`` CI lane fails on any unsuppressed finding.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from repro.analysis.lint.channels import ChannelRegistry, build_channel_registry
from repro.analysis.lint.core import (
    Finding,
    LintResult,
    Module,
    ModuleCache,
)
from repro.analysis.lint.determinism import (
    DETERMINISM_SCOPE,
    check_determinism,
)
from repro.analysis.lint.format import FORMATS, render
from repro.analysis.lint.formulas import (
    CoverageReport,
    FormulaClassification,
    analyze_catalog,
    classify_formula,
)
from repro.analysis.lint.wire import check_wire

__all__ = [
    "ChannelRegistry",
    "CoverageReport",
    "DETERMINISM_SCOPE",
    "FORMATS",
    "Finding",
    "FormulaClassification",
    "LintResult",
    "Module",
    "ModuleCache",
    "analyze_catalog",
    "build_channel_registry",
    "check_determinism",
    "check_wire",
    "classify_formula",
    "render",
    "run_lint",
]


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.code)


def run_lint(
    root: Union[str, Path],
    catalog: bool = True,
) -> Tuple[LintResult, Optional[CoverageReport]]:
    """Run every pass over the tree rooted at ``root``.

    ``catalog=False`` skips the builtin/study-gate formula analysis
    (which imports the scenario catalog) — fixture trees that only
    exercise the file-level passes don't have one.

    Returns the :class:`LintResult` plus the formula
    :class:`CoverageReport` (``None`` when ``catalog=False``).
    """
    cache = ModuleCache(Path(root))
    findings = list(check_determinism(cache))
    findings.extend(check_wire(cache))

    coverage: Optional[CoverageReport] = None
    if catalog:
        registry = build_channel_registry(cache)
        coverage = analyze_catalog(registry)
        findings.extend(coverage.findings)

    findings.sort(key=_sort_key)
    return (
        LintResult(findings=findings, files_scanned=cache.parsed_count()),
        coverage,
    )
