"""TraceBus channel registry, generated statically from emitter sites.

The LOC analyzer needs to know which event/channel names actually
exist on the bus so it can flag formulas that reference unknown events
(LOC203).  Rather than hand-maintaining a list, this module extracts
the registry from the AST of the producer modules: every
``bus.emitter("<name>")`` first argument and every
``.bind_trace(bus, "<name>")`` second argument in
``src/repro/npu`` and ``src/repro/trace``.

Dynamic names are turned into patterns:

* f-strings like ``f"mem_{self.name}"`` become the prefix pattern
  ``mem_*``;
* ``prefixed_event_name("pipeline", index)`` becomes the regex class
  ``m<k>_pipeline`` (``m0_pipeline``, ``m1_pipeline``, ...);
* ``a or b`` fallback expressions contribute both operands.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.analysis.lint.core import Module, ModuleCache, dotted_name

#: ``src/repro`` subdirectories that contain trace producers.
PRODUCER_SCOPE = ("npu", "trace")

_PIPELINE_RE = re.compile(r"^m\d+_pipeline$")


@dataclass
class ChannelRegistry:
    """Statically known TraceBus channel names and name patterns."""

    exact: Set[str] = field(default_factory=set)
    prefixes: Set[str] = field(default_factory=set)
    #: rel_path:line provenance per discovered name/pattern (debugging).
    sources: List[str] = field(default_factory=list)

    def knows(self, name: str) -> bool:
        """True when ``name`` matches a discovered channel or pattern."""
        if name in self.exact:
            return True
        if _PIPELINE_RE.match(name) and "m<k>_pipeline" in self.prefixes:
            return True
        return any(
            name.startswith(prefix.rstrip("*")) and name != prefix.rstrip("*")
            for prefix in self.prefixes
            if prefix.endswith("*")
        )

    def describe(self) -> str:
        """Stable human-readable summary of the registry."""
        names = sorted(self.exact) + sorted(self.prefixes)
        return ", ".join(names)


def _string_forms(node: ast.AST) -> List[str]:
    """Channel name(s)/pattern(s) an emitter-name expression can take."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        # f"mem_{self.name}" -> prefix pattern "mem_*".
        prefix = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
            else:
                return [f"{prefix}*"] if prefix else []
        return [prefix]
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "prefixed_event_name":
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "pipeline"
            ):
                return ["m<k>_pipeline"]
        return []
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
        out: List[str] = []
        for operand in node.values:
            out.extend(_string_forms(operand))
        return out
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        # "m%d_pipeline" % k style — treat the literal head as a prefix.
        if isinstance(node.left, ast.Constant) and isinstance(node.left.value, str):
            head = node.left.value.split("%")[0]
            if head:
                return [f"{head}*"]
    return []


def _emitter_name_args(node: ast.Call) -> Optional[ast.AST]:
    """The channel-name argument of an emitter/bind call, if any."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "emitter" and node.args:
        return node.args[0]
    if func.attr == "bind_trace" and len(node.args) >= 2:
        return node.args[1]
    return None


def _scan_module(module: Module, registry: ChannelRegistry) -> None:
    if module.tree is None:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name_arg = _emitter_name_args(node)
        if name_arg is None:
            continue
        for form in _string_forms(name_arg):
            if form == "m<k>_pipeline":
                registry.prefixes.add(form)
            elif form.endswith("*"):
                registry.prefixes.add(form)
            else:
                registry.exact.add(form)
            registry.sources.append(f"{module.rel_path}:{node.lineno} {form}")


def build_channel_registry(cache: ModuleCache) -> ChannelRegistry:
    """Extract the channel registry from the producer modules."""
    registry = ChannelRegistry()
    for module in cache.modules_under(*PRODUCER_SCOPE):
        _scan_module(module, registry)
    registry.sources.sort()
    return registry
