"""Shared infrastructure for the static invariant checker.

One :class:`ModuleCache` per lint run holds exactly one ``ast.parse``
per file — every pass (determinism, LOC formulas, wire/schema) reads
the same parsed :class:`Module` objects, so adding a pass never adds a
parse.  Findings are plain records carrying ``file:line``, a stable
rule code, the message, and a fix hint; suppression is per-line via
``# repro: noqa(RULE[,RULE...])`` (or a bare ``# repro: noqa`` for
every rule on that line).
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import AnalysisError

#: Matches the suppression comment; group 1 is the optional rule list.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\(([A-Z0-9, ]+)\))?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    ``code`` is the stable rule identifier (``DET101`` ...); ``hint``
    is the suggested fix, rendered after the message in every format.
    ``suppressed`` marks findings silenced by a ``# repro: noqa``
    comment — they are reported in summaries but never fail a build.
    """

    code: str
    message: str
    path: str
    line: int = 0
    col: int = 0
    hint: str = ""
    suppressed: bool = False

    def location(self) -> str:
        """``file:line`` (just the file for project-level findings)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_dict(self) -> Dict[str, object]:
        """JSON form (the ``--format json`` record schema)."""
        return {
            "code": self.code,
            "message": self.message,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "hint": self.hint,
            "suppressed": self.suppressed,
        }


class Module:
    """One parsed source file: path, source, AST, and noqa lines."""

    def __init__(self, path: Path, rel_path: str, source: str):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = exc
        #: line number -> set of suppressed rule codes ("*" = all).
        self.noqa: Dict[int, Set[str]] = _collect_noqa(source)

    def suppresses(self, line: int, code: str) -> bool:
        """True when ``line`` carries a noqa comment covering ``code``."""
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return "*" in codes or code.upper() in codes


def _collect_noqa(source: str) -> Dict[int, Set[str]]:
    """Per-line ``# repro: noqa(...)`` suppressions, via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps noqa-looking text
    inside string literals from suppressing anything.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            if match.group(1):
                codes = {c.strip().upper() for c in match.group(1).split(",")}
                out.setdefault(line, set()).update(c for c in codes if c)
            else:
                out.setdefault(line, set()).add("*")
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file the tokenizer cannot finish still lints (the AST pass
        # reports the syntax error); it just has no suppressions.
        pass
    return out


class ModuleCache:
    """Parse-once cache of :class:`Module` objects, keyed by path.

    ``root`` is the repository root (the directory containing
    ``src/repro``); ``rel_path`` in findings is always relative to it.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self._modules: Dict[Path, Module] = {}

    @property
    def package_root(self) -> Path:
        """The ``src/repro`` package directory under ``root``."""
        return self.root / "src" / "repro"

    def get(self, path: Path) -> Module:
        """The parsed module for ``path`` (one parse, ever)."""
        path = Path(path)
        module = self._modules.get(path)
        if module is None:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise AnalysisError(f"cannot read {path}: {exc}") from None
            try:
                rel = str(path.relative_to(self.root))
            except ValueError:
                rel = str(path)
            module = Module(path, rel, source)
            self._modules[path] = module
        return module

    def get_optional(self, path: Path) -> Optional[Module]:
        """Like :meth:`get`, but ``None`` for a missing file."""
        if not Path(path).is_file():
            return None
        return self.get(path)

    def modules_under(self, *subdirs: str) -> List[Module]:
        """Every ``.py`` module under the named ``src/repro`` subdirs."""
        out: List[Module] = []
        for subdir in subdirs:
            base = self.package_root / subdir
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                out.append(self.get(path))
        return out

    def parsed_count(self) -> int:
        """How many files this cache has parsed (observability/tests)."""
        return len(self._modules)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings not silenced by a suppression comment."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings a ``# repro: noqa`` comment silenced."""
        return [f for f in self.findings if f.suppressed]


def apply_suppressions(
    module: Module, findings: Iterable[Finding]
) -> List[Finding]:
    """Mark findings silenced by the module's noqa comments."""
    out = []
    for finding in findings:
        if module.suppresses(finding.line, finding.code):
            finding = Finding(
                code=finding.code,
                message=finding.message,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                hint=finding.hint,
                suppressed=True,
            )
        out.append(finding)
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted module/object path, from imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    randint as ri`` maps ``ri -> random.randint``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def canonical_call_name(
    node: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    """The canonical dotted name a call resolves to, or ``None``.

    Resolves the leading name through the module's import aliases:
    with ``import numpy as np``, ``np.random.seed(...)`` canonicalizes
    to ``numpy.random.seed``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    canonical_head = aliases.get(head, head)
    return f"{canonical_head}.{rest}" if rest else canonical_head
