"""Determinism lint: hazards that can break cross-backend bit-identity.

Study JSON must be byte-identical across serial/process/distributed
backends and compiled/interpreted monitors, so anything whose result
depends on process identity — unseeded RNG, wall clocks in outcome
paths, set-iteration order, float accumulation over unordered
collections, ``id()``-keyed ordering — is a lint finding here rather
than a differential-test failure later.

Rules
-----
DET101  unseeded ``random`` / ``numpy.random`` use outside ``sim.rng``
DET102  wall-clock call in a sim-time or outcome code path
DET103  iteration over a set (or over dict views feeding serialization)
        without an explicit ``sorted()``
DET104  float accumulation over an unordered collection
DET105  ``id()``-dependent ordering or keying
DET106  environment-variable read inside the model core (``sim/``,
        ``npu/``) for a variable not on the named outcome-neutral
        allowlist — an undeclared env toggle there can silently fork
        simulation behaviour between hosts
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import (
    Finding,
    Module,
    ModuleCache,
    apply_suppressions,
    canonical_call_name,
    dotted_name,
    import_aliases,
)

#: Subdirectories of ``src/repro`` the determinism pass walks.  The
#: ISSUE scope is sim/npu/sweep/obs/loc/trace; backends and studies
#: ride along because their outcome payloads feed the same
#: byte-identity contract (wall clocks there are allowlisted — backend
#: orchestration times real work by design).
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "sim", "npu", "sweep", "obs", "loc", "trace", "backends", "studies",
)

#: Module-level ``random`` functions that draw from the global,
#: process-seeded generator.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "triangular", "getrandbits",
        "seed",
    }
)

#: Wall-clock callables (canonical dotted names).
_WALL_CLOCK_FNS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Files (relative to the repo root) where wall clocks are the point:
#: wall-span tracing and backend orchestration measure real elapsed
#: time by design and never feed sim-time or outcome payloads.
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = (
    "src/repro/obs/spans.py",
    "src/repro/backends/base.py",
    "src/repro/backends/local.py",
    "src/repro/backends/worker.py",
    "src/repro/backends/distributed.py",
)

#: Env toggles the model core (``sim/``, ``npu/``) may read: each entry
#: names a variable *proven* outcome-neutral — it may change how fast a
#: run executes, never what it computes — and the wall that proves it.
#: Anything else read from the environment inside the model core is a
#: DET106 finding: declare the variable here (with its proof) instead of
#: suppressing per line.  Observability/orchestration layers (obs,
#: trace, loc, sweep, backends) read mode env vars by design and are out
#: of DET106 scope; their outcome-neutrality is enforced by the
#: study-diff and monitor-equivalence walls.
ENV_TOGGLE_ALLOWLIST: Dict[str, str] = {
    # Compute fusion is byte-identical by construction (the seq relay
    # draws every kernel seq at its unfused instant); enforced by
    # tests/test_fastpath.py and the full-catalog study md5 wall.
    "REPRO_FUSE": "tie-stable compute fusion (speed-only, bit-identical)",
}

#: Serialization/hashing sinks: a dict-view iteration whose loop body
#: calls one of these is order-sensitive output.
_SERIALIZATION_SINKS = frozenset(
    {
        "json.dump", "json.dumps", "hashlib.md5", "hashlib.sha1",
        "hashlib.sha256", "hashlib.new", "pickle.dump", "pickle.dumps",
    }
)


def _call_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Call):
        return canonical_call_name(node, aliases)
    return None


class _SetTracker(ast.NodeVisitor):
    """Tracks which local names are (likely) bound to sets.

    Intra-function and intentionally conservative: a name counts as
    set-typed only when assigned directly from a set literal, a set
    comprehension, ``set(...)``/``frozenset(...)``, a set-typed binop,
    or the first element of ``concurrent.futures.wait(...)`` unpacking.
    """

    def __init__(self, aliases: Dict[str, str]):
        self.aliases = aliases
        self.set_names: Set[str] = set()
        self._root: Optional[ast.AST] = None

    def visit(self, node: ast.AST) -> None:
        if self._root is None:
            self._root = node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # stay inside one scope; nested functions get their own
        super().visit(node)

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = canonical_call_name(node, self.aliases)
            if name in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute) and node.attr in {
            "intersection", "union", "difference", "symmetric_difference"
        }:
            return self._is_set_expr(node.value)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        for target in node.targets:
            if isinstance(target, ast.Name) and self._is_set_expr(value):
                self.set_names.add(target.id)
            elif (
                isinstance(target, ast.Tuple)
                and isinstance(value, ast.Call)
                and (canonical_call_name(value, self.aliases) or "").endswith(
                    "futures.wait"
                )
            ):
                # ``done, pending = wait(...)`` — both elements are sets.
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.set_names.add(element.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            isinstance(node.target, ast.Name)
            and node.value is not None
            and self._is_set_expr(node.value)
        ):
            self.set_names.add(node.target.id)
        self.generic_visit(node)


def _iter_functions(tree: ast.Module) -> List[ast.AST]:
    """Every function/method body plus the module body itself."""
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _walk_scope(scope: ast.AST) -> List[ast.AST]:
    """Walk ``scope`` without descending into nested functions.

    Each loop/call must be attributed to exactly one scope, otherwise
    a hazard inside a nested function would be reported twice (once
    from the enclosing scope's walk, once from its own).
    """
    out: List[ast.AST] = []
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _is_sorted_wrapped(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """True when the iterable is ``sorted(...)`` (or list(sorted(...)))."""
    name = _call_name(node, aliases)
    if name == "sorted":
        return True
    if name in {"list", "tuple"} and isinstance(node, ast.Call) and node.args:
        return _is_sorted_wrapped(node.args[0], aliases)
    return False


def _body_serializes(body: Sequence[ast.stmt], aliases: Dict[str, str]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = canonical_call_name(node, aliases)
                if name in _SERIALIZATION_SINKS:
                    return True
    return False


def _dict_view_call(node: ast.AST) -> Optional[str]:
    """``items``/``keys``/``values`` when node is ``<expr>.<view>()``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in {"items", "keys", "values"}
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


def _check_module(module: Module) -> List[Finding]:
    findings: List[Finding] = []
    tree = module.tree
    if tree is None:
        return findings
    aliases = import_aliases(tree)
    rel = module.rel_path
    in_rng_module = rel.replace("\\", "/").endswith("sim/rng.py")
    wall_clock_ok = rel.replace("\\", "/") in WALL_CLOCK_ALLOWLIST

    # --- DET101: unseeded RNG ------------------------------------------
    if not in_rng_module:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                imported = (
                    node.module
                    if isinstance(node, ast.ImportFrom)
                    else None
                )
                if imported == "random":
                    for alias in node.names:
                        if alias.name in _GLOBAL_RANDOM_FNS:
                            findings.append(
                                Finding(
                                    code="DET101",
                                    message=(
                                        f"import of global-state "
                                        f"random.{alias.name} — draws from "
                                        "the process-wide generator"
                                    ),
                                    path=rel,
                                    line=node.lineno,
                                    col=node.col_offset,
                                    hint=(
                                        "use the run's seeded "
                                        "repro.sim.rng generator instead"
                                    ),
                                )
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node, aliases)
            if name is None:
                continue
            head, _, fn = name.rpartition(".")
            if head == "random" and fn in _GLOBAL_RANDOM_FNS:
                findings.append(
                    Finding(
                        code="DET101",
                        message=(
                            f"call to random.{fn}() uses the process-wide "
                            "unseeded generator"
                        ),
                        path=rel,
                        line=node.lineno,
                        col=node.col_offset,
                        hint="route randomness through repro.sim.rng",
                    )
                )
            elif name == "random.Random" and not node.args and not node.keywords:
                findings.append(
                    Finding(
                        code="DET101",
                        message="random.Random() constructed without a seed",
                        path=rel,
                        line=node.lineno,
                        col=node.col_offset,
                        hint="pass an explicit seed: random.Random(seed)",
                    )
                )
            elif name is not None and name.startswith("numpy.random."):
                findings.append(
                    Finding(
                        code="DET101",
                        message=f"{name}() — numpy global RNG state",
                        path=rel,
                        line=node.lineno,
                        col=node.col_offset,
                        hint=(
                            "use a seeded numpy.random.Generator owned by "
                            "repro.sim.rng"
                        ),
                    )
                )

    # --- DET102: wall clocks -------------------------------------------
    if not wall_clock_ok:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node, aliases)
            if name in _WALL_CLOCK_FNS:
                findings.append(
                    Finding(
                        code="DET102",
                        message=(
                            f"wall-clock call {name}() in a sim-time/outcome "
                            "code path"
                        ),
                        path=rel,
                        line=node.lineno,
                        col=node.col_offset,
                        hint=(
                            "use kernel sim time, or move the measurement "
                            "into the wall-span layer (repro.obs.spans)"
                        ),
                    )
                )

    # --- DET103/DET104: unordered iteration + float accumulation -------
    for scope in _iter_functions(tree):
        tracker = _SetTracker(aliases)
        tracker.visit(scope)

        scope_nodes = _walk_scope(scope)
        loops: List[Tuple[ast.AST, ast.AST, Sequence[ast.stmt]]] = []
        for node in scope_nodes:
            if isinstance(node, ast.For):
                loops.append((node, node.iter, node.body))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    loops.append((node, gen.iter, ()))

        for owner, iterable, body in loops:
            if _is_sorted_wrapped(iterable, aliases):
                continue
            if tracker._is_set_expr(iterable):
                findings.append(
                    Finding(
                        code="DET103",
                        message=(
                            "iteration over a set — order depends on hash "
                            "seeding / object identity"
                        ),
                        path=rel,
                        line=owner.lineno,
                        col=owner.col_offset,
                        hint="iterate sorted(...) or a deterministic sequence",
                    )
                )
                if _accumulates_float(body):
                    findings.append(
                        Finding(
                            code="DET104",
                            message=(
                                "float accumulation inside set-order "
                                "iteration — sum depends on visit order"
                            ),
                            path=rel,
                            line=owner.lineno,
                            col=owner.col_offset,
                            hint=(
                                "accumulate over a sorted sequence (float "
                                "addition is order-sensitive)"
                            ),
                        )
                    )
                continue
            view = _dict_view_call(iterable)
            if view is not None and body and _body_serializes(body, aliases):
                findings.append(
                    Finding(
                        code="DET103",
                        message=(
                            f"dict .{view}() iteration feeds serialization/"
                            "hashing without sorted()"
                        ),
                        path=rel,
                        line=owner.lineno,
                        col=owner.col_offset,
                        hint=(
                            "wrap in sorted(...) (or serialize with "
                            "sort_keys=True) so the byte stream is stable"
                        ),
                    )
                )

        # ``sum(<set>)`` / ``math.fsum(<set>)`` outside a loop.
        for node in scope_nodes:
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node, aliases)
            if name in {"sum", "math.fsum"} and node.args:
                if tracker._is_set_expr(node.args[0]) and not _is_sorted_wrapped(
                    node.args[0], aliases
                ):
                    findings.append(
                        Finding(
                            code="DET104",
                            message=(
                                f"{name}() over a set — float addition order "
                                "is unspecified"
                            ),
                            path=rel,
                            line=node.lineno,
                            col=node.col_offset,
                            hint="sum over sorted(...) instead",
                        )
                    )

    # --- DET106: undeclared env toggles in the model core ---------------
    normalized = rel.replace("\\", "/")
    in_model_core = normalized.startswith(
        ("src/repro/sim/", "src/repro/npu/")
    )
    if in_model_core:
        constants = _module_str_constants(tree)
        for node in ast.walk(tree):
            var = _env_read_variable(node, aliases, constants)
            if var is _NO_ENV_READ:
                continue
            if var is not None and var in ENV_TOGGLE_ALLOWLIST:
                continue
            shown = f"{var!r}" if var is not None else "a dynamic name"
            findings.append(
                Finding(
                    code="DET106",
                    message=(
                        f"environment read of {shown} in the model core — "
                        "undeclared env toggles can fork simulation "
                        "behaviour between hosts"
                    ),
                    path=rel,
                    line=node.lineno,
                    col=node.col_offset,
                    hint=(
                        "prove the toggle outcome-neutral and add it to "
                        "ENV_TOGGLE_ALLOWLIST (lint/determinism.py), or "
                        "plumb it through RunConfig"
                    ),
                )
            )

    # --- DET105: id()-dependent ordering --------------------------------
    shadowed = _locally_bound_names(tree)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and "id" not in shadowed
        ):
            findings.append(
                Finding(
                    code="DET105",
                    message=(
                        "id() produces process-dependent values — any "
                        "ordering or keying built on it is nondeterministic"
                    ),
                    path=rel,
                    line=node.lineno,
                    col=node.col_offset,
                    hint=(
                        "key on stable identifiers (indices, names, config "
                        "hashes), never object identity"
                    ),
                )
            )

    return apply_suppressions(module, findings)


#: Sentinel distinguishing "not an env read at all" from "env read whose
#: variable name could not be resolved" (the latter is still a finding).
_NO_ENV_READ = object()


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (env-var name style)."""
    constants: Dict[str, str] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = stmt.value.value
    return constants


def _env_read_variable(node, aliases, constants):
    """The variable name an AST node reads from the environment.

    Recognizes ``os.environ.get(X, ...)``, ``os.getenv(X, ...)`` and
    ``os.environ[X]``.  Returns the resolved variable name (a literal or
    a module-level string constant), ``None`` for an env read whose name
    cannot be resolved statically, or :data:`_NO_ENV_READ` when the node
    is not an environment read.
    """
    key = None
    if isinstance(node, ast.Call):
        name = canonical_call_name(node, aliases)
        if name not in {"os.environ.get", "os.getenv"} or not node.args:
            return _NO_ENV_READ
        key = node.args[0]
    elif isinstance(node, ast.Subscript):
        if dotted_name(node.value) != "os.environ":
            return _NO_ENV_READ
        key = node.slice
    else:
        return _NO_ENV_READ
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        return key.value
    if isinstance(key, ast.Name):
        return constants.get(key.id)
    return None


def _accumulates_float(body: Sequence[ast.stmt]) -> bool:
    """AugAssign ``+=`` anywhere in the loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return True
    return False


def _locally_bound_names(tree: ast.Module) -> Set[str]:
    """Names assigned/imported at any scope (cheap shadowing check)."""
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            for arg in list(node.args.args) + list(node.args.kwonlyargs):
                bound.add(arg.arg)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def check_determinism(
    cache: ModuleCache, scope: Sequence[str] = DETERMINISM_SCOPE
) -> List[Finding]:
    """Run DET101–DET105 over ``src/repro/<scope>`` via ``cache``."""
    findings: List[Finding] = []
    for module in cache.modules_under(*scope):
        if module.parse_error is not None:
            findings.append(
                Finding(
                    code="DET100",
                    message=f"syntax error: {module.parse_error.msg}",
                    path=module.rel_path,
                    line=module.parse_error.lineno or 0,
                    hint="fix the syntax error so the file can be analyzed",
                )
            )
            continue
        findings.extend(_check_module(module))
    return findings
