"""Rendering for lint results: ``text`` / ``json`` / ``github``.

``github`` emits workflow-command annotations
(``::error file=...,line=...::message``) so findings land inline on
the PR diff when the CI lane runs with ``--format github``.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.lint.core import Finding, LintResult

FORMATS = ("text", "json", "github")


def render_text(result: LintResult) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines: List[str] = []
    for finding in result.active:
        lines.append(
            f"{finding.location()}: {finding.code} {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for finding in result.suppressed:
        lines.append(
            f"{finding.location()}: {finding.code} {finding.message} "
            "[suppressed]"
        )
    lines.append(
        f"repro lint: {len(result.active)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document (the ``--format json`` schema)."""
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "summary": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "files_scanned": result.files_scanned,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape workflow-command message data."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(result: LintResult) -> str:
    """GitHub Actions ``::error`` annotations for active findings."""
    lines: List[str] = []
    for finding in result.active:
        properties = f"file={_escape_property(finding.path)}"
        if finding.line:
            properties += f",line={finding.line}"
        message = f"{finding.code} {finding.message}"
        if finding.hint:
            message += f" (hint: {finding.hint})"
        lines.append(f"::error {properties}::{_escape_data(message)}")
    lines.append(
        f"repro lint: {len(result.active)} finding(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render(result: LintResult, fmt: str) -> str:
    """Dispatch on ``fmt`` (one of :data:`FORMATS`)."""
    if fmt == "json":
        return render_json(result)
    if fmt == "github":
        return render_github(result)
    return render_text(result)
