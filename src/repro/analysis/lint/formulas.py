"""LOC formula analyzer: compiled-vs-fallback, bounds, event names.

This is the static instrument for the ROADMAP's compiled-monitor item:
it classifies every builtin formula and every study-gate derivation as
**compiled** (handled by the closure monitor) or **interpreter
fallback**, with the reason (multi-event window, absolute pin, no
references), checks bounds for vacuity/unsatisfiability, and verifies
event names against the statically generated TraceBus channel registry
(:mod:`repro.analysis.lint.channels`).

Classification delegates the compiled/fallback decision to
:func:`repro.loc.codegen.monitor_event` — the same predicate
:func:`repro.loc.monitor.build_monitor` routes on — so the lint
verdict agrees with the runtime routing by construction; only the
human-readable *reason* is derived here.

Rules
-----
LOC201  formula falls back to the interpretive evaluator
LOC202  vacuous or unsatisfiable bound
LOC203  unknown event/channel name
LOC204  formula fails to parse
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.lint.channels import ChannelRegistry
from repro.analysis.lint.core import Finding
from repro.errors import LocError
from repro.loc.ast_nodes import (
    AnnotationRef,
    BinaryOp,
    CheckerFormula,
    DistributionFormula,
    Expr,
    Formula,
    Negate,
    Number,
)
from repro.loc.builtin import (
    forwarding_latency_formula,
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.codegen import monitor_event
from repro.loc.parser import parse_formula

#: Annotation columns; all five are cumulative (monotone non-decreasing
#: in the instance index), which powers the delta-sign analysis below.
CUMULATIVE_ANNOTATIONS = ("cycle", "time", "energy", "total_pkt", "total_bit")


@dataclass(frozen=True)
class FormulaClassification:
    """Static verdict for one formula."""

    source: str
    text: str
    kind: str  # "checker" | "distribution" | "invalid"
    compiled: bool
    event: Optional[str] = None
    fallback_reason: Optional[str] = None
    parse_error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "formula": self.text,
            "kind": self.kind,
            "compiled": self.compiled,
            "event": self.event,
            "fallback_reason": self.fallback_reason,
            "parse_error": self.parse_error,
        }


def _fallback_reason(formula: Formula) -> Optional[str]:
    """Why :func:`monitor_event` rejects ``formula`` (``None`` if it
    doesn't).  Mirrors the predicate's checks in its order."""
    refs = formula.refs()
    events = {ref.event for ref in refs}
    if not refs:
        return "no annotation references"
    if len(events) != 1:
        return (
            "multi-event window: references "
            + ", ".join(sorted(events))
        )
    if any(ref.index.absolute for ref in refs):
        pins = sorted(
            ref.index.offset for ref in refs if ref.index.absolute
        )
        return f"absolute instance pin: {pins}"
    return None


def classify_formula(
    formula: Union[str, Formula], source: str = "<formula>"
) -> FormulaClassification:
    """Classify one formula as compiled vs interpreter-fallback.

    The ``compiled`` bit comes straight from
    :func:`~repro.loc.codegen.monitor_event`, so it cannot drift from
    :func:`~repro.loc.monitor.build_monitor`'s actual routing.
    """
    if isinstance(formula, str):
        text = formula
        try:
            parsed = parse_formula(formula)
        except LocError as exc:
            return FormulaClassification(
                source=source,
                text=text,
                kind="invalid",
                compiled=False,
                parse_error=str(exc),
            )
    else:
        parsed = formula
        text = parsed.unparse()
    event = monitor_event(parsed)
    kind = (
        "checker" if isinstance(parsed, CheckerFormula) else "distribution"
    )
    if event is not None:
        return FormulaClassification(
            source=source, text=text, kind=kind, compiled=True, event=event
        )
    return FormulaClassification(
        source=source,
        text=text,
        kind=kind,
        compiled=False,
        fallback_reason=_fallback_reason(parsed),
    )


# -- bound analysis ------------------------------------------------------


def _const_value(expr: Expr) -> Optional[float]:
    """The constant value of ``expr``, folding arithmetic; else ``None``."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Negate):
        value = _const_value(expr.operand)
        return None if value is None else -value
    if isinstance(expr, BinaryOp):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else None
    return None


def _monotone_delta(expr: Expr) -> Optional[bool]:
    """True when ``expr`` is provably ``>= 0`` for every instance.

    Recognizes ``ann(e[i+a]) - ann(e[i+b])`` with the same cumulative
    annotation and event, relative indices, and ``a >= b`` — the shape
    of every latency/pace gate.  Returns ``None`` when no verdict is
    provable (not ``False``: absence of proof is not disproof).
    """
    if not isinstance(expr, BinaryOp) or expr.op != "-":
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, AnnotationRef) and isinstance(right, AnnotationRef)):
        return None
    if left.annotation != right.annotation or left.event != right.event:
        return None
    if left.annotation not in CUMULATIVE_ANNOTATIONS:
        return None
    if left.index.absolute or right.index.absolute:
        return None
    if left.index.offset >= right.index.offset:
        return True
    return None


def analyze_bounds(
    formula: Union[str, Formula], source: str = "<formula>"
) -> List[Finding]:
    """LOC202 findings for vacuous/unsatisfiable bounds."""
    findings: List[Finding] = []
    if isinstance(formula, str):
        try:
            parsed = parse_formula(formula)
        except LocError:
            return findings  # LOC204 owns parse failures
    else:
        parsed = formula

    if isinstance(parsed, DistributionFormula):
        low, high, step = parsed.triple
        if step <= 0:
            findings.append(
                Finding(
                    code="LOC202",
                    message=(
                        f"[{source}] degenerate analysis period: step "
                        f"{step:g} <= 0 in {parsed.unparse()!r}"
                    ),
                    path=source,
                    hint="use a positive bin step",
                )
            )
        if low >= high:
            findings.append(
                Finding(
                    code="LOC202",
                    message=(
                        f"[{source}] degenerate analysis period: min "
                        f"{low:g} >= max {high:g} in {parsed.unparse()!r}"
                    ),
                    path=source,
                    hint="order the triple as <min, max, step> with min < max",
                )
            )
        return findings

    if not isinstance(parsed, CheckerFormula):
        return findings

    lhs_const = _const_value(parsed.lhs)
    rhs_const = _const_value(parsed.rhs)
    if lhs_const is not None and rhs_const is not None:
        verdict = _compare(lhs_const, parsed.op, rhs_const)
        word = "vacuous (always true)" if verdict else "unsatisfiable"
        findings.append(
            Finding(
                code="LOC202",
                message=(
                    f"[{source}] constant assertion is {word}: "
                    f"{parsed.unparse()!r}"
                ),
                path=source,
                hint="assert over annotation references, not constants",
            )
        )
        return findings

    # Monotone-delta vs constant: delta >= 0 always holds for
    # cumulative annotations with a later minuend.
    for expr, const, flipped in (
        (parsed.lhs, rhs_const, False),
        (parsed.rhs, lhs_const, True),
    ):
        if const is None or _monotone_delta(expr) is not True:
            continue
        # Normalize to ``delta OP const``.
        op = _flip(parsed.op) if flipped else parsed.op
        issue = _delta_bound_issue(op, const)
        if issue is not None:
            findings.append(
                Finding(
                    code="LOC202",
                    message=(
                        f"[{source}] {issue} bound: cumulative delta is "
                        f"always >= 0, but formula requires "
                        f"{parsed.unparse()!r}"
                    ),
                    path=source,
                    hint=(
                        "the bound can never fail/hold — check its sign "
                        "and units"
                    ),
                )
            )
    return findings


def _compare(left: float, op: str, right: float) -> bool:
    if op == "<=":
        return left <= right
    if op == "<":
        return left < right
    if op == ">=":
        return left >= right
    if op == ">":
        return left > right
    if op == "==":
        return left == right
    return left != right


def _flip(op: str) -> str:
    """The operator seen from the swapped side (``C op delta`` form)."""
    return {"<=": ">=", "<": ">", ">=": "<=", ">": "<", "==": "==", "!=": "!="}[op]


def _delta_bound_issue(op: str, const: float) -> Optional[str]:
    """Issue label for ``delta OP const`` with ``delta >= 0`` provable."""
    if op == "<=" and const < 0:
        return "unsatisfiable"
    if op == "<" and const <= 0:
        return "unsatisfiable"
    if op == ">=" and const <= 0:
        return "vacuous"
    if op == ">" and const < 0:
        return "vacuous"
    return None


def check_events(
    formula: Union[str, Formula],
    registry: ChannelRegistry,
    source: str = "<formula>",
) -> List[Finding]:
    """LOC203/LOC204: unknown event names / parse failures."""
    if isinstance(formula, str):
        try:
            parsed = parse_formula(formula)
        except LocError as exc:
            return [
                Finding(
                    code="LOC204",
                    message=f"[{source}] formula does not parse: {exc}",
                    path=source,
                    hint="fix the formula syntax",
                )
            ]
    else:
        parsed = formula
    findings: List[Finding] = []
    for event in sorted(parsed.events()):
        if not registry.knows(event):
            findings.append(
                Finding(
                    code="LOC203",
                    message=(
                        f"[{source}] unknown event {event!r} — no TraceBus "
                        "emitter publishes it"
                    ),
                    path=source,
                    hint=(
                        "known channels: " + (registry.describe() or "<none>")
                    ),
                )
            )
    return findings


# -- catalog-wide analysis ----------------------------------------------


def builtin_formulas() -> Dict[str, Formula]:
    """The paper's builtin formulas at their default parameters."""
    return {
        "builtin:forwarding_latency": forwarding_latency_formula(),
        "builtin:power_distribution": power_distribution_formula(),
        "builtin:throughput_distribution": throughput_distribution_formula(),
    }


def study_gate_formulas(mem_gates: bool = True) -> Dict[str, str]:
    """Every study-gate formula the default catalog derives.

    ``mem_gates=True`` also includes the opt-in ``mem_*`` pace gates so
    the coverage report sees the full gate surface.
    """
    # Imported here: repro.studies pulls in the sweep/backend stack,
    # which the pure fixture-level lint paths should not need.
    from repro.scenarios import get_scenario, list_scenarios
    from repro.studies.spec import StudySpec

    out: Dict[str, str] = {}
    for with_mem in ((False, True) if mem_gates else (False,)):
        spec = StudySpec(mem_gates=with_mem)
        for name in list_scenarios():
            scenario = get_scenario(name)
            for assertion in spec.assertions_for(scenario):
                key = f"study:{name}:{assertion.name}"
                out.setdefault(key, assertion.formula)
    return out


def analyze_catalog(registry: ChannelRegistry) -> "CoverageReport":
    """Classify builtins + all study gates; collect LOC20x findings."""
    classifications: List[FormulaClassification] = []
    findings: List[Finding] = []

    items: List[Tuple[str, Union[str, Formula]]] = []
    items.extend(sorted(builtin_formulas().items()))
    items.extend(sorted(study_gate_formulas().items()))
    for source, formula in items:
        classification = classify_formula(formula, source=source)
        classifications.append(classification)
        findings.extend(classification_findings(classification))
        findings.extend(analyze_bounds(formula, source=source))
        findings.extend(check_events(formula, registry, source=source))

    return CoverageReport(classifications=classifications, findings=findings)


def classification_findings(
    classification: FormulaClassification,
) -> List[Finding]:
    """LOC201 for interpreter-fallback formulas (parse errors excluded —
    those are LOC204, reported by :func:`check_events`)."""
    if classification.compiled or classification.kind == "invalid":
        return []
    return [
        Finding(
            code="LOC201",
            message=(
                f"[{classification.source}] formula runs on the "
                f"interpreter fallback ({classification.fallback_reason}): "
                f"{classification.text!r}"
            ),
            path=classification.source,
            hint=(
                "restructure to a single-event relative-index window, or "
                "accept the ~13x slower interpretive monitor"
            ),
        )
    ]


@dataclass
class CoverageReport:
    """Fallback-coverage report over the whole formula catalog."""

    classifications: List[FormulaClassification]
    findings: List[Finding]

    def compiled_count(self) -> int:
        return sum(1 for c in self.classifications if c.compiled)

    def fallback(self) -> List[FormulaClassification]:
        return [c for c in self.classifications if not c.compiled]

    def to_dict(self) -> Dict[str, object]:
        total = len(self.classifications)
        compiled = self.compiled_count()
        return {
            "total_formulas": total,
            "compiled": compiled,
            "fallback": total - compiled,
            "compiled_fraction": (compiled / total) if total else 1.0,
            "formulas": [c.to_dict() for c in self.classifications],
        }
