"""Wire/schema consistency: protocol keys and schema-version drift.

The distributed backend's coordinator and worker live in different
files and speak length-prefixed JSON; the metrics/span snapshot
writers version their headers against constants that are *also*
documented in ``obs/SCHEMA.md``.  Nothing ties these together at
runtime until a fleet actually drifts — these passes tie them together
at lint time.

Rules
-----
WIRE301  schema-version constant / SCHEMA.md / writer literal drift
WIRE302  protocol key read that no peer message ever sends
WIRE303  outcome telemetry keys drift from ``OUTCOME_TELEMETRY_KEYS``
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint.core import Finding, Module, ModuleCache, dotted_name

#: ``(constant name, defining module, SCHEMA.md label)`` triples.
SCHEMA_CONSTANTS: Tuple[Tuple[str, str, str], ...] = (
    ("METRICS_SCHEMA_VERSION", "obs/metrics.py", "Schema version"),
    ("SPAN_SCHEMA_VERSION", "obs/spans.py", "Span schema version"),
)


def _int_assignment(module: Module, name: str) -> Optional[Tuple[int, int]]:
    """``(value, lineno)`` of a module-level ``NAME = <int>`` assign."""
    if module.tree is None:
        return None
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value, node.lineno
    return None


def _documented_version(schema_md: str, label: str) -> Optional[int]:
    """The ``**<label>:** N`` value documented in SCHEMA.md."""
    match = re.search(
        rf"\*\*{re.escape(label)}:\*\*\s*(\d+)", schema_md
    )
    return int(match.group(1)) if match else None


def _version_literal_findings(module: Module, constant: str) -> List[Finding]:
    """Flag ``"version": <int literal>`` in writer dict literals.

    Header writers must spell the schema version as a ``Name``
    reference to the constant — an inline integer silently detaches
    the written file from the documented/gated version.
    """
    findings: List[Finding] = []
    if module.tree is None:
        return findings
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "version"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
            ):
                findings.append(
                    Finding(
                        code="WIRE301",
                        message=(
                            f'"version": {value.value} written as an int '
                            f"literal instead of {constant}"
                        ),
                        path=module.rel_path,
                        line=value.lineno,
                        col=value.col_offset,
                        hint=f'write "version": {constant} so gates track it',
                    )
                )
    return findings


def check_schema_versions(cache: ModuleCache) -> List[Finding]:
    """WIRE301 over the obs schema constants, SCHEMA.md, and writers."""
    findings: List[Finding] = []
    obs_dir = cache.package_root / "obs"
    if not obs_dir.is_dir():
        return findings  # no obs subsystem in this tree
    schema_md_path = obs_dir / "SCHEMA.md"
    try:
        schema_md = schema_md_path.read_text(encoding="utf-8")
    except OSError:
        return [
            Finding(
                code="WIRE301",
                message="obs/SCHEMA.md is missing",
                path="src/repro/obs/SCHEMA.md",
                hint="restore the schema contract document",
            )
        ]

    for constant, rel_module, label in SCHEMA_CONSTANTS:
        module = cache.get_optional(cache.package_root / rel_module)
        if module is None:
            findings.append(
                Finding(
                    code="WIRE301",
                    message=f"{rel_module} (defines {constant}) is missing",
                    path=f"src/repro/{rel_module}",
                    hint="restore the module or update SCHEMA_CONSTANTS",
                )
            )
            continue
        assignment = _int_assignment(module, constant)
        documented = _documented_version(schema_md, label)
        if assignment is None:
            findings.append(
                Finding(
                    code="WIRE301",
                    message=(
                        f"{constant} has no module-level integer assignment"
                    ),
                    path=module.rel_path,
                    hint=f"define {constant} = <int> at module scope",
                )
            )
        elif documented is None:
            findings.append(
                Finding(
                    code="WIRE301",
                    message=(
                        f'SCHEMA.md documents no "**{label}:** N" line for '
                        f"{constant}"
                    ),
                    path="src/repro/obs/SCHEMA.md",
                    hint=f"document the current value ({assignment[0]})",
                )
            )
        elif assignment[0] != documented:
            findings.append(
                Finding(
                    code="WIRE301",
                    message=(
                        f"{constant} = {assignment[0]} but SCHEMA.md "
                        f"documents {label} {documented}"
                    ),
                    path=module.rel_path,
                    line=assignment[1],
                    hint=(
                        "bump SCHEMA.md (and its changelog) in the same "
                        "commit as the constant"
                    ),
                )
            )
        findings.extend(_version_literal_findings(module, constant))
    return findings


# -- protocol key extraction ---------------------------------------------


def _dict_literal_keys(node: ast.Dict) -> Optional[Set[str]]:
    """String keys of a dict literal; ``None`` if any key is dynamic."""
    keys: Set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            return None
    return keys


def sent_message_keys(module: Module) -> Set[str]:
    """Keys this side can put on the wire.

    A *message literal* is any dict literal containing a ``"type"``
    string key (they are only ever built to be sent).  Names assigned
    a message literal also contribute later ``var["key"] = ...``
    subscript stores (the optional-key pattern, e.g. ``spans``).
    """
    sent: Set[str] = set()
    message_vars: Set[str] = set()
    if module.tree is None:
        return sent
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Dict):
            keys = _dict_literal_keys(node)
            if keys is not None and "type" in keys:
                sent.update(keys)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            keys = _dict_literal_keys(node.value)
            if keys is not None and "type" in keys:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        message_vars.add(target.id)
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
        ):
            sub = node.targets[0]
            if (
                isinstance(sub.value, ast.Name)
                and sub.value.id in message_vars
                and isinstance(sub.slice, ast.Constant)
                and isinstance(sub.slice.value, str)
            ):
                sent.add(sub.slice.value)
    return sent


def _recv_vars(tree: ast.Module) -> Set[str]:
    """Names assigned from ``recv_message(...)`` calls."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = dotted_name(node.value.func)
            if name is not None and name.split(".")[-1] == "recv_message":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _is_recv_expr(node: ast.AST, recv_vars: Set[str]) -> bool:
    """True for ``msg`` or ``(msg or {})`` style receiver expressions."""
    if isinstance(node, ast.Name):
        return node.id in recv_vars
    if isinstance(node, ast.BoolOp):
        return any(_is_recv_expr(v, recv_vars) for v in node.values)
    return False


def read_message_keys(module: Module) -> Dict[str, List[int]]:
    """Key -> line numbers of reads off ``recv_message`` results."""
    reads: Dict[str, List[int]] = {}
    if module.tree is None:
        return reads
    recv = _recv_vars(module.tree)
    if not recv:
        return reads
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and _is_recv_expr(node.func.value, recv)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.setdefault(node.args[0].value, []).append(node.lineno)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and _is_recv_expr(node.value, recv)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.setdefault(node.slice.value, []).append(node.lineno)
    return reads


def check_protocol_keys(cache: ModuleCache) -> List[Finding]:
    """WIRE302/WIRE303 over the coordinator↔worker message vocabulary."""
    findings: List[Finding] = []
    worker = cache.get_optional(
        cache.package_root / "backends" / "worker.py"
    )
    coordinator = cache.get_optional(
        cache.package_root / "backends" / "distributed.py"
    )
    if worker is None or coordinator is None:
        return findings  # no distributed backend in this tree

    pairs = (
        # (reader, writer, direction label)
        (coordinator, worker, "worker->coordinator"),
        (worker, coordinator, "coordinator->worker"),
    )
    for reader, writer, direction in pairs:
        sent = sent_message_keys(writer)
        for key, lines in sorted(read_message_keys(reader).items()):
            if key in sent:
                continue
            findings.append(
                Finding(
                    code="WIRE302",
                    message=(
                        f"reads message key {key!r} that no {direction} "
                        "message ever sends"
                    ),
                    path=reader.rel_path,
                    line=lines[0],
                    hint=(
                        "add the key to the peer's message (and the "
                        "protocol.py message table), or drop the read"
                    ),
                )
            )

    findings.extend(_check_telemetry_keys(worker, coordinator))
    return findings


def _check_telemetry_keys(
    worker: Module, coordinator: Module
) -> List[Finding]:
    """WIRE303: outcome telemetry payload vs ``OUTCOME_TELEMETRY_KEYS``."""
    # Imported at call time so fixture-level tests can exercise this
    # module without the backends stack on the path.
    from repro.backends.protocol import OUTCOME_TELEMETRY_KEYS

    findings: List[Finding] = []
    declared = set(OUTCOME_TELEMETRY_KEYS)

    if worker.tree is not None:
        for node in ast.walk(worker.tree):
            if not isinstance(node, ast.Dict):
                continue
            keys = _dict_literal_keys(node)
            if keys is None or "telemetry" not in keys:
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "telemetry"
                    and isinstance(value, ast.Dict)
                ):
                    payload = _dict_literal_keys(value) or set()
                    for extra in sorted(payload - declared):
                        findings.append(
                            Finding(
                                code="WIRE303",
                                message=(
                                    f"telemetry key {extra!r} is not in "
                                    "OUTCOME_TELEMETRY_KEYS"
                                ),
                                path=worker.rel_path,
                                line=value.lineno,
                                hint=(
                                    "declare it in protocol.py so "
                                    "coordinators know to absorb it"
                                ),
                            )
                        )

    # Every declared key must appear as a string constant in the
    # coordinator (the absorb mapping) or it is silently dropped.
    coordinator_strings: Set[str] = set()
    if coordinator.tree is not None:
        for node in ast.walk(coordinator.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                coordinator_strings.add(node.value)
    for key in sorted(declared - coordinator_strings):
        findings.append(
            Finding(
                code="WIRE303",
                message=(
                    f"declared telemetry key {key!r} is never referenced "
                    "by the coordinator — worker reports it, nobody sums it"
                ),
                path=coordinator.rel_path,
                hint="absorb the key in absorb_worker_telemetry",
            )
        )
    return findings


def check_wire(cache: ModuleCache) -> List[Finding]:
    """All wire/schema passes."""
    return check_schema_versions(cache) + check_protocol_keys(cache)
