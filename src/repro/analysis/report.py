"""Plain-text rendering for tables, curve families and surfaces.

All experiment output goes through these helpers, so every figure and
table of the paper has a uniform, diff-friendly text form (the moral
equivalent of the paper's gnuplot data files).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise AnalysisError("table needs headers")
    cells = [[_fmt(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells))
        if cells
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve(
    points: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "fraction",
    title: Optional[str] = None,
    max_rows: int = 20,
) -> str:
    """Render one (x, y) series, evenly thinned to ``max_rows``."""
    shown = _thin(points, max_rows)
    return format_table(
        (x_label, y_label),
        [(x, f"{y:.4f}") for x, y in shown],
        title=title,
    )


def format_curve_family(
    curves: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    x_label: str = "x",
    title: Optional[str] = None,
    max_rows: int = 16,
) -> str:
    """Render several curves sharing an x-axis as one table.

    This is the text form of the paper's multi-line distribution plots
    (e.g. one column per window size plus noDVS).
    """
    if not curves:
        raise AnalysisError("curve family is empty")
    base_x = [x for x, _ in curves[0][1]]
    for name, points in curves:
        if [x for x, _ in points] != base_x:
            raise AnalysisError(f"curve {name!r} has a mismatched x-axis")
    headers = [x_label, *(name for name, _ in curves)]
    rows = []
    for index, x in enumerate(base_x):
        rows.append([x, *(f"{points[index][1]:.4f}" for _, points in curves)])
    rows = _thin(rows, max_rows)
    return format_table(headers, rows, title=title)


def format_surface(
    row_values: Sequence[float],
    col_values: Sequence[float],
    grid: Sequence[Sequence[float]],
    row_label: str = "row",
    col_label: str = "col",
    title: Optional[str] = None,
) -> str:
    """Render a 2-D surface as a grid table (Figures 8/9 text form)."""
    headers = [f"{row_label} \\ {col_label}", *(_fmt(c) for c in col_values)]
    rows = []
    for row_value, row in zip(row_values, grid):
        rows.append([_fmt(row_value), *(f"{v:.4g}" for v in row)])
    return format_table(headers, rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _thin(rows: Sequence, max_rows: int) -> List:
    if len(rows) <= max_rows:
        return list(rows)
    stride = (len(rows) - 1) / (max_rows - 1)
    return [rows[round(k * stride)] for k in range(max_rows)]
