"""Percentile surfaces over a 2-D design space (Figures 8 and 9).

A vertex of the paper's Figure 8 surface is "the power value below which
80 % of formula (2) instances fall, for a particular threshold and window
size"; Figure 9 is the throughput value above which 80 % of formula (3)
instances fall.  :class:`PercentileSurface` collects the per-design-point
:class:`~repro.loc.analyzer.DistributionResult` objects and extracts the
level cutoffs into a printable grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.loc.analyzer import DistributionResult


class PercentileSurface:
    """Grid of distribution results keyed by (row, column) design axes.

    Parameters
    ----------
    row_values / col_values:
        Axis values, e.g. thresholds (Mbps) and window sizes (cycles).
    level:
        The curve level to extract (0.8 in the paper).
    row_label / col_label / value_label:
        Axis names for reports.
    """

    def __init__(
        self,
        row_values: Sequence[float],
        col_values: Sequence[float],
        level: float = 0.8,
        row_label: str = "threshold",
        col_label: str = "window",
        value_label: str = "value",
    ):
        if not row_values or not col_values:
            raise AnalysisError("surface axes must be non-empty")
        if not 0.0 < level <= 1.0:
            raise AnalysisError(f"level must be in (0, 1], got {level}")
        self.row_values = list(row_values)
        self.col_values = list(col_values)
        self.level = level
        self.row_label = row_label
        self.col_label = col_label
        self.value_label = value_label
        self._cells: Dict[Tuple[float, float], DistributionResult] = {}

    def add(self, row: float, col: float, result: DistributionResult) -> None:
        """Attach the distribution measured at one design point."""
        if row not in self.row_values or col not in self.col_values:
            raise AnalysisError(f"design point ({row}, {col}) not on the axes")
        self._cells[(row, col)] = result

    def is_complete(self) -> bool:
        """True when every design point has a result."""
        return len(self._cells) == len(self.row_values) * len(self.col_values)

    def has_result(self, row: float, col: float) -> bool:
        """True when the design point has a result attached."""
        return (row, col) in self._cells

    def value_at(self, row: float, col: float) -> float:
        """The level cutoff at one design point."""
        try:
            result = self._cells[(row, col)]
        except KeyError:
            raise AnalysisError(f"no result at design point ({row}, {col})") from None
        return result.level_cutoff(self.level)

    def grid(self) -> List[List[float]]:
        """Row-major grid of level cutoffs."""
        return [
            [self.value_at(row, col) for col in self.col_values]
            for row in self.row_values
        ]

    # ------------------------------------------------------------------
    # Optima (the design-space answers of Section 4.1)
    # ------------------------------------------------------------------
    def argmin(self) -> Tuple[float, float, float]:
        """Design point with the smallest value: ``(row, col, value)``."""
        return self._arg(min)

    def argmax(self) -> Tuple[float, float, float]:
        """Design point with the largest value: ``(row, col, value)``."""
        return self._arg(max)

    def _arg(self, chooser) -> Tuple[float, float, float]:
        if not self._cells:
            raise AnalysisError("surface has no results")
        best: Optional[Tuple[float, float, float]] = None
        candidates = [
            (row, col, self.value_at(row, col))
            for row in self.row_values
            for col in self.col_values
            if (row, col) in self._cells
        ]
        value = chooser(c[2] for c in candidates)
        for row, col, v in candidates:
            if v == value:
                best = (row, col, v)
                break
        assert best is not None
        return best
