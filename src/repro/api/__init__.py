"""The unified session API.

``repro.api`` is the one front door to the reproduction's execution
machinery.  Where the historical entry layers each configured execution
their own way — ``run_simulation`` kwargs, ``run_sweep(workers=,
backend=)``, ``REPRO_SWEEP_*`` environment variables, CLI flags — a
:class:`Session` owns that policy once, as typed objects:

* :class:`~repro.api.policy.ExecutionPolicy` — backend, workers,
  distributed connect target, retry budget;
* :class:`~repro.api.policy.StorePolicy` — result-store path and
  cache reuse/overwrite;
* :class:`~repro.api.events.EventHooks` — streamed execution events
  (``on_job_start`` / ``on_outcome`` / ``on_check_failed`` /
  ``progress``).

Quickstart::

    from repro.api import EventHooks, ExecutionPolicy, Session, StorePolicy
    from repro.sweep import SweepSpec

    session = Session(
        execution=ExecutionPolicy(backend="process", workers=4),
        store=StorePolicy(path="results.jsonl"),
    )
    spec = SweepSpec(policies=("tdvs",), thresholds_mbps=(1000.0, 1200.0),
                     windows_cycles=(40_000,), duration_cycles=400_000)

    # Batch: outcomes in job order.
    outcomes = session.sweep(spec)

    # Streaming: outcomes in completion order, any backend.
    for outcome in session.stream(spec):
        print(outcome.label, outcome.mean_power_w)

The legacy ``run_sweep`` / ``run_study`` calls keep working as
deprecation shims over this API, bit for bit.
"""

from repro.api.events import EventHooks, chain_hooks
from repro.api.policy import ExecutionPolicy, StorePolicy
from repro.api.session import Session, default_session

__all__ = [
    "EventHooks",
    "ExecutionPolicy",
    "Session",
    "StorePolicy",
    "chain_hooks",
    "default_session",
]
