"""The session event surface: streamed execution notifications.

An :class:`EventHooks` bundle subscribes to the lifecycle of a sweep as
it streams — the assertion-based-methodology move of checking verdicts
*as runs complete* instead of after the whole grid lands:

``on_job_start(job)``
    A job was dispatched: handed to the serial loop, submitted to the
    process pool, or granted to a distributed worker.  May fire from a
    non-main thread (distributed), and again for a job whose lease was
    lost and requeued.
``on_outcome(outcome)``
    One outcome arrived (cached hits included — inspect
    ``outcome.cached``).  Fires once per unique job.
``on_check_failed(outcome, failed)``
    Convenience subset of ``on_outcome``: the outcome carried LOC
    checker verdicts and at least one recorded violations.  ``failed``
    is the violating :class:`~repro.loc.checker.CheckResult` list.
``on_abort(outcome)``
    Convenience subset of ``on_outcome``: a streaming anomaly gate
    stopped this job early (``outcome.result.aborted_early``); the
    reason line is ``outcome.result.abort_reason``.
``progress(done, total, outcome)``
    The legacy per-delivery callback, counted per job *index* (so a
    duplicated job id ticks once per occurrence) — exactly what
    :func:`~repro.sweep.engine.progress_printer` expects.
``on_span(record)``
    One span record landed in the session's process-wide
    :class:`~repro.obs.spans.SpanRecorder` (wall-clock orchestration
    spans and absorbed sim-time job spans alike).  Registered as a
    recorder listener for the duration of each streamed sweep; never
    fires when ``REPRO_OBS_SPANS=off``.  May fire from a non-main
    thread (distributed grants and completions).

Hooks must not raise: an exception escapes into (and aborts) the sweep,
by design — a monitoring bug should be loud, not silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional

from repro.loc.checker import CheckResult
from repro.sweep.spec import Job
from repro.sweep.store import SweepOutcome

StartHook = Callable[[Job], None]
OutcomeHook = Callable[[SweepOutcome], None]
CheckFailedHook = Callable[[SweepOutcome, List[CheckResult]], None]
ProgressHook = Callable[[int, int, SweepOutcome], None]
SpanHook = Callable[[Dict[str, Any]], None]


@dataclass(frozen=True)
class EventHooks:
    """One subscriber bundle; any subset of hooks may be set."""

    on_job_start: Optional[StartHook] = field(default=None, compare=False)
    on_outcome: Optional[OutcomeHook] = field(default=None, compare=False)
    on_check_failed: Optional[CheckFailedHook] = field(default=None, compare=False)
    on_abort: Optional[OutcomeHook] = field(default=None, compare=False)
    progress: Optional[ProgressHook] = field(default=None, compare=False)
    on_span: Optional[SpanHook] = field(default=None, compare=False)

    def __bool__(self) -> bool:
        return any(
            getattr(self, spec.name) is not None for spec in fields(self)
        )


def chain_hooks(*bundles: Optional[EventHooks]) -> EventHooks:
    """Combine hook bundles; every non-``None`` subscriber fires, in order.

    Session-level hooks come first, per-call hooks after — so a live
    progress display layered on top of a session's logging both see
    every event.
    """
    present = [bundle for bundle in bundles if bundle]
    if not present:
        return EventHooks()
    if len(present) == 1:
        return present[0]

    def fan(name: str):
        callbacks = [
            getattr(bundle, name)
            for bundle in present
            if getattr(bundle, name) is not None
        ]
        if not callbacks:
            return None
        if len(callbacks) == 1:
            return callbacks[0]

        def fire(*args):
            for callback in callbacks:
                callback(*args)

        return fire

    return EventHooks(
        on_job_start=fan("on_job_start"),
        on_outcome=fan("on_outcome"),
        on_check_failed=fan("on_check_failed"),
        on_abort=fan("on_abort"),
        progress=fan("progress"),
        on_span=fan("on_span"),
    )
