"""Execution and storage policy objects.

These two dataclasses replace the scattered per-call kwargs and
environment-variable reads that used to configure execution:

* :class:`ExecutionPolicy` — *where and how* jobs run: backend
  selector, worker count, distributed connect target, retry budget.
  One explicit object instead of ``run_sweep(workers=..., backend=...)``
  plus ``REPRO_SWEEP_BACKEND`` / ``REPRO_SWEEP_CONNECT`` /
  ``REPRO_SWEEP_WORKERS`` lookups sprinkled through the engine.
* :class:`StorePolicy` — *what happens to results*: the JSONL
  :class:`~repro.sweep.store.ResultStore` path (or a shared instance)
  and whether cached outcomes are reused or overwritten.

Precedence is explicit and testable: a field set on the policy always
wins; a field left ``None`` defers to the environment at resolve time,
exactly as the legacy entry points did — so a default-constructed
:class:`~repro.api.session.Session` behaves bit-identically to the
pre-session ``run_sweep``/``run_study`` calls it now backs.
:meth:`ExecutionPolicy.from_env` instead *captures* the environment
into explicit fields once, pinning the configuration for the life of
the session regardless of later ``os.environ`` changes.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Mapping, Optional, Union

from repro.errors import ExperimentError
from repro.sweep.store import ResultStore

#: What an :class:`ExecutionPolicy` accepts as its backend selector: a
#: name token (``serial`` / ``process`` / ``distributed``), a pre-built
#: :class:`~repro.backends.base.ExecutionBackend` instance (single-use),
#: or ``None`` for "consult the environment, then the classic
#: serial-vs-process-pool default".
BackendSelector = Union[None, str, "object"]


def _env_workers(env: Mapping[str, str]) -> Optional[int]:
    """``REPRO_SWEEP_WORKERS`` as an int, ``None`` when unset."""
    from repro.sweep.engine import WORKERS_ENV_VAR

    value = env.get(WORKERS_ENV_VAR, "").strip()
    if not value:
        return None
    try:
        workers = int(value)
    except ValueError:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR} must be an integer, got {value!r}"
        ) from None
    return max(1, workers)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a session executes sweep jobs.

    Attributes
    ----------
    backend:
        Backend selector (see :data:`BackendSelector`).  ``None`` keeps
        the legacy resolution: ``REPRO_SWEEP_BACKEND`` if set, else
        serial for one worker / one pending job and the local process
        pool otherwise.
    workers:
        Worker-process count; ``None`` defers to ``REPRO_SWEEP_WORKERS``
        (default 1).
    connect:
        ``HOST:PORT`` the distributed coordinator listens on; ``None``
        defers to ``REPRO_SWEEP_CONNECT``.
    retries:
        Extra grants a distributed job may receive after a lost attempt
        (``None``: the backend default).
    lease_s:
        Initial distributed lease term (``None``: backend default; the
        term then adapts to observed job wall-clock).
    log:
        Coordinator event-line callback (distributed backend only).
    early_abort:
        Streaming anomaly-gate policy
        (:class:`~repro.obs.gates.EarlyAbortPolicy` or its dict form;
        normalized to the dataclass).  ``None`` (the default) runs
        every job to its full cycle budget; when set, the session
        attaches it to every fresh job, which **changes job identity**
        — gated partial outcomes never alias full-run cache entries.
    """

    backend: BackendSelector = None
    workers: Optional[int] = None
    connect: Optional[str] = None
    retries: Optional[int] = None
    lease_s: Optional[float] = None
    log: Optional[Callable[[str], None]] = field(default=None, compare=False)
    early_abort: Optional["object"] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {self.workers}")
        if self.retries is not None and self.retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {self.retries}")
        if self.lease_s is not None and self.lease_s <= 0:
            raise ExperimentError(f"lease_s must be positive, got {self.lease_s}")
        if self.early_abort is not None:
            from repro.obs.gates import EarlyAbortPolicy

            policy = self.early_abort
            if isinstance(policy, dict):
                policy = EarlyAbortPolicy.from_dict(policy)
            if not isinstance(policy, EarlyAbortPolicy):
                raise ExperimentError(
                    "early_abort must be an EarlyAbortPolicy or its dict "
                    f"form, got {type(self.early_abort).__name__}"
                )
            object.__setattr__(self, "early_abort", policy)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None, **overrides
    ) -> "ExecutionPolicy":
        """Capture the legacy environment variables into explicit fields.

        Reads ``REPRO_SWEEP_BACKEND`` / ``REPRO_SWEEP_CONNECT`` /
        ``REPRO_SWEEP_WORKERS`` *now* and pins them; keyword overrides
        beat the environment.  Use a default-constructed policy instead
        when the legacy read-at-call-time behaviour is wanted.
        """
        from repro.backends import BACKEND_ENV_VAR, CONNECT_ENV_VAR

        env = os.environ if environ is None else environ
        fields = {
            "backend": env.get(BACKEND_ENV_VAR, "").strip() or None,
            "connect": env.get(CONNECT_ENV_VAR, "").strip() or None,
            "workers": _env_workers(env),
        }
        fields.update(overrides)
        return cls(**fields)

    def with_(self, **overrides) -> "ExecutionPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def resolved_workers(self) -> int:
        """The effective worker count (field, else environment, else 1)."""
        if self.workers is not None:
            return self.workers
        from repro.sweep.engine import default_workers

        return default_workers()

    def make_backend(self, n_pending: int):
        """Build the backend for one sweep of ``n_pending`` fresh jobs.

        Preserves the classic engine behaviour exactly: with no explicit
        selector (field or ``REPRO_SWEEP_BACKEND``), a single pending
        job — or ``workers=1`` — runs serially in-process, everything
        else through the local pool.  Explicit selectors and pre-built
        instances pass straight through to the factory.
        """
        from repro.backends import BACKEND_ENV_VAR, get_backend

        workers = self.resolved_workers()
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        kwargs = dict(
            connect=self.connect,
            log=self.log,
            lease_s=self.lease_s,
            max_retries=self.retries,
        )
        if self.backend is None and not os.environ.get(
            BACKEND_ENV_VAR, ""
        ).strip():
            effective = workers if n_pending > 1 else 1
            return get_backend(None, workers=effective, **kwargs)
        return get_backend(self.backend, workers=workers, **kwargs)

    @contextlib.contextmanager
    def scoped_env(self) -> Iterator[None]:
        """Export the policy's explicit fields as the legacy env vars.

        Experiment runners still pick execution settings up from the
        environment (so every figure grid parallelizes with zero
        call-site plumbing); this scope makes them obey the session's
        policy for the duration of one experiment, then restores the
        previous values.  Only explicitly set fields are exported — a
        default policy changes nothing.

        Pre-built backend *instances* cannot be exported (experiments
        may issue several sweeps, and instances are single-use); name
        the backend instead.
        """
        from repro.backends import BACKEND_ENV_VAR, CONNECT_ENV_VAR
        from repro.sweep.engine import WORKERS_ENV_VAR

        exports = {}
        if self.workers is not None:
            exports[WORKERS_ENV_VAR] = str(self.workers)
        if self.backend is not None:
            if not isinstance(self.backend, str):
                raise ExperimentError(
                    "experiment runs need a named backend policy "
                    "('serial' / 'process' / 'distributed'), not a "
                    "single-use backend instance"
                )
            exports[BACKEND_ENV_VAR] = self.backend
        if self.connect is not None:
            exports[CONNECT_ENV_VAR] = self.connect
        previous = {key: os.environ.get(key) for key in exports}
        os.environ.update(exports)
        try:
            yield
        finally:
            for key, value in previous.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value


@dataclass(frozen=True)
class StorePolicy:
    """What a session does with sweep outcomes.

    Attributes
    ----------
    path:
        JSONL :class:`~repro.sweep.store.ResultStore` file; ``None``
        (and no ``store``) disables persistence.  The file is re-read
        per sweep, so an interrupted grid resumes cell by cell.
    store:
        A pre-built store instance shared across the session's sweeps
        (wins over ``path``; also how the legacy shims pass their
        ``store=`` argument through).
    reuse:
        ``True`` (default) serves completed jobs from the store as
        ``cached`` outcomes; ``False`` re-runs every job and appends a
        superseding record (the newest record for a job id wins on
        reload) — the knob for regenerating a stale cache.  The JSONL
        file is append-only, so repeated overwrite runs grow it; copy
        ``iter_outcomes()`` to a fresh store to compact.
    """

    path: Optional[str] = None
    store: Optional[ResultStore] = field(default=None, compare=False)
    reuse: bool = True

    def with_(self, **overrides) -> "StorePolicy":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def make(self) -> Optional[ResultStore]:
        """The store for one sweep, or ``None`` when persistence is off."""
        if self.store is not None:
            return self.store
        if self.path is not None:
            return ResultStore(self.path)
        return None
