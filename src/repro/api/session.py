"""The :class:`Session` facade: one object that owns execution policy.

A session binds an :class:`~repro.api.policy.ExecutionPolicy`, a
:class:`~repro.api.policy.StorePolicy` and an
:class:`~repro.api.events.EventHooks` bundle once, then offers every
entry point of the reproduction through them:

* :meth:`Session.run` — one configuration, one outcome;
* :meth:`Session.sweep` — a grid, outcomes in job order;
* :meth:`Session.stream` — the same grid, outcomes yielded **in
  completion order** as the backend finishes them (cached hits first);
* :meth:`Session.study` — a scenario-conditioned policy study, with
  per-scenario verdicts available the moment each scenario's grid
  drains;
* :meth:`Session.experiment` — a registered paper figure, executed
  under the session's policy.

The legacy entry points (:func:`repro.sweep.engine.run_sweep`,
:func:`repro.studies.engine.run_study`) are deprecation shims over a
default-configured session and remain bit-identical — including their
environment-variable behaviour, because a policy field left ``None``
defers to the same variables at the same moment the old code read them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.events import EventHooks, chain_hooks
from repro.api.policy import ExecutionPolicy, StorePolicy
from repro.config import RunConfig
from repro.errors import BackendError
from repro.sweep.spec import Job, SweepSpec
from repro.sweep.store import ResultStore, SweepOutcome

JobsLike = Union[SweepSpec, Sequence[Job]]


class Session:
    """A configured entry point for runs, sweeps, studies, experiments.

    Parameters
    ----------
    execution:
        Backend / worker / connect / retry policy (default: the legacy
        environment-deferring behaviour).
    store:
        Result persistence and cache-reuse policy (default: no store).
    hooks:
        Session-wide event subscribers; per-call hooks layer on top.
    """

    def __init__(
        self,
        execution: Optional[ExecutionPolicy] = None,
        store: Optional[StorePolicy] = None,
        hooks: Optional[EventHooks] = None,
    ):
        self.execution = execution or ExecutionPolicy()
        self.store = store or StorePolicy()
        self.hooks = hooks or EventHooks()
        # The session-level telemetry snapshot: job/outcome counters,
        # per-channel TraceBus accounting aggregated across outcomes,
        # and backend fleet telemetry — exported via write_metrics().
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import get_recorder

        self.metrics = MetricsRegistry()
        # The span timeline shares the process-wide recorder, so
        # backend-internal spans (coordinator grants, worker absorption)
        # land in the same log as the session's own orchestration spans.
        self.spans = get_recorder()

    # -- single runs -----------------------------------------------------
    def run(
        self,
        config: Union[RunConfig, Dict, Job],
        span: Optional[int] = None,
        label: str = "",
        checks: Sequence[str] = (),
    ) -> SweepOutcome:
        """Run one configuration under the session's policies.

        Accepts a :class:`~repro.config.RunConfig` (or its dict form),
        or a pre-built :class:`~repro.sweep.spec.Job`.  The result-store
        policy applies: a cached outcome is served without simulating.
        """
        if isinstance(config, Job):
            job = config
        else:
            job = Job.build(config, span=span, label=label, checks=checks)
        return self.sweep([job])[0]

    # -- sweeps ----------------------------------------------------------
    def sweep(
        self, jobs: JobsLike, hooks: Optional[EventHooks] = None
    ) -> List[SweepOutcome]:
        """Run a sweep and return outcomes in job order.

        Duplicate job ids execute once; the shared outcome (including
        the first occurrence's display label) lands at every index.
        """
        jobs = self._expand(jobs)
        by_id: Dict[str, SweepOutcome] = {}
        for outcome in self.stream(jobs, hooks=hooks):
            by_id[outcome.job_id] = outcome
        return [by_id[job.job_id] for job in jobs]

    def stream(
        self, jobs: JobsLike, hooks: Optional[EventHooks] = None
    ) -> Iterator[SweepOutcome]:
        """Run a sweep, yielding outcomes **in completion order**.

        Cached outcomes (store hits) stream first, in job order; fresh
        outcomes follow as the backend finishes them — any backend, any
        worker count, same numbers.  Each unique job id yields exactly
        once.  Event hooks fire as outcomes are yielded; the
        ``progress`` hook ticks once per job *index* (duplicates
        included), preserving the legacy progress contract.
        """
        jobs = self._expand(jobs)
        # Validate the worker policy before the generator starts, so a
        # bad count raises at the call site even if never iterated.
        self.execution.resolved_workers()
        merged = chain_hooks(self.hooks, hooks)
        return self._stream(jobs, merged)

    def _expand(self, jobs: JobsLike) -> List[Job]:
        if isinstance(jobs, SweepSpec):
            jobs = jobs.jobs()
        jobs = list(jobs)
        policy = self.execution.early_abort
        if policy is not None and policy.enabled():
            # Gated jobs have distinct ids: a partial outcome must never
            # be served as the cache entry of its full-run twin.
            jobs = [job.gated(policy) for job in jobs]
        return jobs

    def _stream(
        self, jobs: List[Job], hooks: EventHooks
    ) -> Iterator[SweepOutcome]:
        from repro.backends import run_backend
        from repro.backends.base import ExecutionBackend

        from repro.obs.metrics import FORWARD_LATENCY_EDGES_US

        total = len(jobs)
        done = 0

        # Group indices by job id so repeats execute exactly once.
        indices_by_id: Dict[str, List[int]] = {}
        first_jobs: List[Job] = []
        for index, job in enumerate(jobs):
            slots = indices_by_id.setdefault(job.job_id, [])
            if not slots:
                first_jobs.append(job)
            slots.append(index)

        metrics = self.metrics
        spans = self.spans
        if hooks.on_span is not None:
            spans.add_listener(hooks.on_span)

        def emit(outcome: SweepOutcome) -> None:
            nonlocal done
            for _ in indices_by_id[outcome.job_id]:
                done += 1
                if hooks.progress is not None:
                    hooks.progress(done, total, outcome)
            metrics.counter("session.outcomes").inc()
            if outcome.cached:
                metrics.counter("session.outcomes_cached").inc()
            if outcome.result.aborted_early:
                metrics.counter("session.outcomes_aborted_early").inc()
            if outcome.obs:
                for name, stats in outcome.obs.get("channels", {}).items():
                    for field in ("published", "delivered", "shed"):
                        if field in stats:
                            metrics.counter(f"trace.{name}.{field}").inc(
                                int(stats[field])
                            )
                # The job's deterministic sim-time timeline joins the
                # session span log, tagged with the job id so exporters
                # can group each run's kernel phases into its own track
                # set and link them to the wall-clock job spans.
                spans.extend(
                    outcome.obs.get("spans") or (),
                    attrs={"job": outcome.job_id},
                )
            # Forward-latency distribution per scenario: every outcome
            # carrying a span-latency check contributes its mean
            # inter-packet span latency (µs) to a fixed-edge histogram,
            # so snapshots ship mergeable latency distributions without
            # any per-packet sampling.
            for check in outcome.check_results:
                # The unparsed LHS arrives parenthesized:
                # "(time(forward[i+k]) - time(forward[i])) <= bound".
                if (
                    check.instances_checked > 0
                    and check.formula_text.lstrip("(").startswith(
                        "time(forward["
                    )
                ):
                    scenario = (
                        outcome.result.config.traffic.scenario or "none"
                    )
                    metrics.histogram(
                        f"latency.forward.{scenario}",
                        FORWARD_LATENCY_EDGES_US,
                    ).observe(check.mean_lhs)
            if hooks.on_outcome is not None:
                hooks.on_outcome(outcome)
            if hooks.on_check_failed is not None and outcome.check_results:
                failed = [c for c in outcome.check_results if not c.passed]
                if failed:
                    hooks.on_check_failed(outcome, failed)
            if hooks.on_abort is not None and outcome.result.aborted_early:
                hooks.on_abort(outcome)

        try:
            with spans.wall_span("stream", "session", {"jobs": total}):
                store: Optional[ResultStore] = self.store.make()
                pending: List[Job] = []
                cached_hits: List[SweepOutcome] = []
                for job in first_jobs:
                    cached = (
                        store.get(job.job_id)
                        if store is not None and self.store.reuse
                        else None
                    )
                    if cached is not None:
                        cached_hits.append(cached)
                    else:
                        pending.append(job)
                for outcome in cached_hits:
                    emit(outcome)
                    yield outcome

                if not pending:
                    # Single-use contract even when everything was cached.
                    if isinstance(self.execution.backend, ExecutionBackend):
                        self.execution.backend.close()
                    return

                open_ids = {job.job_id for job in pending}
                backend = self.execution.make_backend(len(pending))
                try:
                    with spans.wall_span(
                        "run", "backend",
                        {"backend": backend.name, "jobs": len(pending)},
                    ):
                        for outcome in run_backend(
                            backend, pending, hooks.on_job_start
                        ):
                            if outcome.job_id not in open_ids:
                                raise BackendError(
                                    f"backend {backend.name!r} yielded unknown or "
                                    f"duplicate job id {outcome.job_id!r}"
                                )
                            open_ids.discard(outcome.job_id)
                            if store is not None:
                                with spans.wall_span(
                                    "append", "store",
                                    {"job": outcome.job_id},
                                ):
                                    store.add(outcome)
                            emit(outcome)
                            yield outcome
                    # Fleet telemetry (coordinator/worker counters, lease
                    # EWMA) merges into the sweep-level snapshot once the
                    # run drains.
                    metrics.merge_telemetry(
                        backend.telemetry(), prefix=f"backend.{backend.name}."
                    )
                finally:
                    backend.close()
                if open_ids:
                    raise BackendError(
                        f"backend {backend.name!r} finished without yielding "
                        f"{len(open_ids)} job(s): {', '.join(sorted(open_ids))}"
                    )
        finally:
            if hooks.on_span is not None:
                spans.remove_listener(hooks.on_span)

    # -- telemetry -------------------------------------------------------
    def write_metrics(self, path: str, meta: Optional[Dict] = None) -> None:
        """Write the session's metrics snapshot as JSONL.

        One header line (schema tag + version) then one sorted line per
        instrument — see ``src/repro/obs/SCHEMA.md`` and the
        ``repro metrics`` CLI.
        """
        self.metrics.write_snapshot(path, meta=meta)

    def write_spans(self, path: str, meta: Optional[Dict] = None) -> None:
        """Write the session's span timeline as a JSONL span log.

        One header line (schema tag + version) then one sorted line per
        span — the artifact ``repro trace export`` and ``repro report
        --html`` consume.  Written even when ``REPRO_OBS_SPANS=off``
        (the log is then just the header), so downstream tooling can
        always tell "spans disabled" from "file missing".
        """
        self.spans.write(path, meta=meta)

    # -- studies ---------------------------------------------------------
    def study(
        self,
        spec,
        jobs_by_scenario: Optional[Sequence[Tuple[str, List[Job]]]] = None,
        hooks: Optional[EventHooks] = None,
        on_scenario_complete=None,
    ):
        """Run a scenario-conditioned policy study (one streamed sweep).

        Parameters mirror :func:`repro.studies.engine.run_study`.
        ``on_scenario_complete(verdict)`` fires the moment the last
        outcome of a scenario's grid lands — with that scenario's
        :class:`~repro.studies.policymap.ScenarioVerdict`, identical to
        its entry in the final map — so gates short-circuit per
        scenario instead of waiting for the whole study.
        """
        from repro.studies.engine import StudyResult
        from repro.studies.policymap import PolicyMap

        per_scenario = (
            list(jobs_by_scenario)
            if jobs_by_scenario is not None
            else spec.jobs_by_scenario()
        )
        flat_jobs = [job for _, jobs in per_scenario for job in jobs]

        study_hooks = hooks
        if on_scenario_complete is not None:
            study_hooks = chain_hooks(
                hooks,
                EventHooks(
                    on_outcome=_ScenarioCompletionTracker(
                        spec, per_scenario, on_scenario_complete
                    )
                ),
            )

        flat_outcomes = self.sweep(flat_jobs, hooks=study_hooks)

        outcomes_by_scenario: List[Tuple[str, List[SweepOutcome]]] = []
        cursor = 0
        for scenario_name, jobs in per_scenario:
            chunk = flat_outcomes[cursor : cursor + len(jobs)]
            cursor += len(jobs)
            outcomes_by_scenario.append((scenario_name, list(chunk)))

        policy_map = PolicyMap.build(spec, outcomes_by_scenario)
        return StudyResult(
            spec=spec,
            policy_map=policy_map,
            outcomes_by_scenario=outcomes_by_scenario,
        )

    # -- benchmarks ------------------------------------------------------
    def bench_run(
        self,
        scenarios=None,
        profile: str = "bench",
        repeats: int = 3,
        replay_target_events: int = 100_000,
        progress=None,
    ):
        """Run the per-run observation benchmark (:mod:`repro.bench`).

        Measures whole-run wall clock with/without checkers and the
        checking path's events/sec, compiled monitors vs the
        interpretive baseline, per scenario — the artifact behind
        ``BENCH_run.json``.  ``progress(scenario, entry)`` fires as
        each scenario lands.

        Bench runs are deliberately in-process and serial (timings must
        not share cores), so the session's execution/store policies and
        event hooks are *not* consulted here — this method is the
        API-surface anchor, not a policy application.
        """
        from repro.bench import run_bench

        return run_bench(
            scenarios=scenarios,
            profile=profile,
            repeats=repeats,
            replay_target_events=replay_target_events,
            progress=progress,
        )

    # -- experiments -----------------------------------------------------
    def experiment(self, experiment_id: str, profile: str = "quick"):
        """Run a registered paper experiment under the session's
        *execution* policy.

        Experiment grids consult the legacy environment variables, so
        the session exports its explicit backend/workers/connect fields
        for the duration of the run (see
        :meth:`~repro.api.policy.ExecutionPolicy.scoped_env`).  Only
        those fields apply: experiment runners own their internal
        sweeps, so the session's :class:`StorePolicy`, event hooks and
        the distributed ``retries``/``lease_s`` knobs do not reach
        them — use :meth:`sweep`/:meth:`study` directly when those
        matter.
        """
        from repro.experiments.registry import get_experiment

        with self.execution.scoped_env():
            return get_experiment(experiment_id).run(profile)


class _ScenarioCompletionTracker:
    """Fires a study's per-scenario verdicts as grids drain."""

    def __init__(self, spec, per_scenario, on_scenario_complete):
        self.spec = spec
        self.on_scenario_complete = on_scenario_complete
        self.jobs_of = {name: list(jobs) for name, jobs in per_scenario}
        self.pending = {
            name: {job.job_id for job in jobs} for name, jobs in per_scenario
        }
        self.scenarios_by_id: Dict[str, List[str]] = {}
        for name, jobs in per_scenario:
            for job in jobs:
                self.scenarios_by_id.setdefault(job.job_id, []).append(name)
        self.collected: Dict[str, SweepOutcome] = {}

    def __call__(self, outcome: SweepOutcome) -> None:
        from repro.studies.policymap import PolicyMap

        self.collected[outcome.job_id] = outcome
        for name in self.scenarios_by_id.get(outcome.job_id, ()):
            remaining = self.pending.get(name)
            if remaining is None:
                continue
            remaining.discard(outcome.job_id)
            if remaining:
                continue
            del self.pending[name]
            ordered = [self.collected[j.job_id] for j in self.jobs_of[name]]
            verdict = PolicyMap.build(self.spec, [(name, ordered)]).entries[name]
            self.on_scenario_complete(verdict)


#: The lazily created all-defaults session behind the legacy shims.
_DEFAULT: Optional[Session] = None


def default_session() -> Session:
    """The shared default session (all policies at their defaults).

    This is what the legacy :func:`~repro.sweep.engine.run_sweep` /
    :func:`~repro.studies.engine.run_study` shims delegate to when
    called without overrides; it defers every unset policy field to the
    environment, exactly as the pre-session engine did.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Session()
    return _DEFAULT
