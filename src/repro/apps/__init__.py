"""Benchmark applications: the paper's four workloads.

Each application models the per-packet work of its Intel-SDK counterpart
as a *step stream* (:mod:`repro.npu.steps`) with the memory/compute
profile the paper describes:

* :mod:`~repro.apps.ipfwdr` — IP forwarding: routing table in SRAM
  (longest-prefix-match trie walk), output-port info in SDRAM, packet
  store/fetch through SDRAM;
* :mod:`~repro.apps.url` — URL-based routing: scans packet payload, so
  it re-reads every payload chunk from SDRAM and probes an SRAM hash
  table — the most memory-intensive workload;
* :mod:`~repro.apps.nat` — network address translation: a single SRAM
  lookup plus compute-heavy header rewriting; almost no memory waits, so
  its microengines never idle (and EDVS never helps);
* :mod:`~repro.apps.md4` — RFC 1320 message digests over packet
  payloads: moves data SDRAM -> SRAM and back through heavy compute
  rounds — both memory- and computation-intensive.

Real data structures back the models: an LPM trie
(:mod:`~repro.apps.routing`), a NAT translation table
(:mod:`~repro.apps.nat_table`) and a full MD4 implementation
(:mod:`~repro.apps.md4_core`).
"""

from repro.apps.base import AppModel, AppProfile, AppResources, build_app
from repro.apps.ipfwdr import IpfwdrApp
from repro.apps.md4 import Md4App
from repro.apps.md4_core import md4_digest, md4_hexdigest
from repro.apps.nat import NatApp
from repro.apps.nat_table import NatTable
from repro.apps.routing import RoutingTrie, random_routing_trie
from repro.apps.url import UrlApp

__all__ = [
    "AppModel",
    "AppProfile",
    "AppResources",
    "IpfwdrApp",
    "Md4App",
    "NatApp",
    "NatTable",
    "RoutingTrie",
    "UrlApp",
    "build_app",
    "md4_digest",
    "md4_hexdigest",
    "random_routing_trie",
]
