"""Application-model base classes, profiles and the factory.

An :class:`AppModel` turns one packet into two step streams — receive
(:meth:`~AppModel.rx_steps`) and transmit (:meth:`~AppModel.tx_steps`) —
that the microengines execute with real timing.  All cost constants live
in an :class:`AppProfile` so experiments and ablations can vary them
without touching the models.

Calibration note
----------------
Per-packet instruction counts are scaled so that the model NPU's
saturation points sit where the paper's dynamics live: microengine burst
capacity between the bottom-VF and top-VF operating points, and SDRAM
utilization approaching 1 during traffic bursts (the source of the
memory-wait idling EDVS keys on).  DESIGN.md discusses the calibration;
the ``benchmarks/bench_ablations.py`` sweeps exercise the sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from repro.errors import ConfigError, NpuError
from repro.npu.steps import Compute, Step
from repro.sim.rng import RngStreams
from repro.traffic.packet import Packet

#: Bytes moved per SDRAM/SRAM chunk operation (RFIFO/TFIFO granularity).
CHUNK_BYTES = 64


def chunks_of(size_bytes: int) -> int:
    """Number of 64-byte chunks needed to move ``size_bytes``."""
    return max(1, (size_bytes + CHUNK_BYTES - 1) // CHUNK_BYTES)


@dataclass
class AppProfile:
    """Per-application cost constants (instructions per activity).

    The defaults here are shared structure; each app module defines its
    own profile instance with the paper-described balance of compute vs.
    memory work.
    """

    #: Header parse / validation on packet receipt.
    rx_header_instr: int = 400
    #: Per 64-byte chunk moved RFIFO -> SDRAM (alignment, bookkeeping).
    rx_chunk_instr: int = 150
    #: Post-processing after lookups (TTL, checksum, stats).
    rx_finish_instr: int = 150
    #: Per trie/table probe step.
    lookup_step_instr: int = 20
    #: Descriptor enqueue cost.
    enqueue_instr: int = 30

    #: Transmit-side descriptor handling.
    tx_header_instr: int = 50
    #: Per 64-byte chunk moved SDRAM -> TFIFO.
    tx_chunk_instr: int = 60
    #: MAC handoff cost.
    tx_finish_instr: int = 40

    def validate(self) -> None:
        """Raise :class:`ConfigError` on non-positive entries."""
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigError(f"AppProfile.{name} must be positive, got {value}")


@dataclass
class AppResources:
    """Shared state the chip hands to application models.

    Attributes
    ----------
    num_ports:
        Device-port count (route targets).
    rng_streams:
        Root RNG for building tables reproducibly.
    routing_trie / nat_table:
        Filled in lazily by the apps that need them.
    """

    num_ports: int = 16
    rng_streams: RngStreams = field(default_factory=lambda: RngStreams(0))
    routing_trie: Optional[object] = None
    nat_table: Optional[object] = None


class AppModel:
    """Base class: one benchmark application's packet-processing model."""

    #: Benchmark name (matches ``RunConfig.benchmark``).
    name = "base"

    #: Whether the rx/tx step streams are *pure* — per-packet side
    #: effects limited to commutative counters — so the microengine may
    #: materialize (and fuse) them eagerly at packet bind.  Apps whose
    #: streams mutate order-sensitive shared state (NAT's translation
    #: table, the detailed interpreter) must leave these False.
    materialize_rx = False
    materialize_tx = False

    def __init__(self, resources: AppResources, profile: Optional[AppProfile] = None):
        self.resources = resources
        self.profile = profile or AppProfile()
        self.profile.validate()
        # Memoized materialized step lists, keyed by whatever the app's
        # stream actually varies on (chunk count, trie depth, ...).
        # Step objects are immutable and iterating a list never mutates
        # it, so one list serves every packet with the same shape — the
        # per-packet generator walk and step allocations disappear.
        # Only apps with pure streams (``materialize_*``) install keys;
        # per-packet side effects (counters, ``packet.output_port``) are
        # replayed by the app's ``*_steps_list`` override on a hit.
        self._rx_steps_memo: Dict[object, list] = {}
        self._tx_steps_memo: Dict[object, list] = {}

    # -- the two step streams ------------------------------------------
    def rx_steps(self, packet: Packet) -> Iterator[Step]:
        """Receive-side processing for one packet.

        Must end with :class:`~repro.npu.steps.PutTx` (forward) or
        :class:`~repro.npu.steps.Drop`.
        """
        raise NotImplementedError

    def tx_steps(self, packet: Packet) -> Iterator[Step]:
        """Transmit-side processing; the chip transmits when it ends."""
        raise NotImplementedError

    # -- materialized (list) streams --------------------------------------
    def rx_steps_list(self, packet: Packet) -> list:
        """Receive stream as a list, for materializing microengines.

        The base implementation lists out the generator per packet; apps
        with pure streams override it to return a memoized shared list
        (replaying the stream's per-packet side effects on a hit).
        """
        return list(self.rx_steps(packet))

    def tx_steps_list(self, packet: Packet) -> list:
        """Transmit stream as a list, for materializing microengines."""
        return list(self.tx_steps(packet))

    def _standard_tx_steps_list(
        self, packet: Packet, fetch_sdram: bool = True
    ) -> list:
        """Memoized :meth:`_standard_tx_steps`; it is pure by design."""
        key = (chunks_of(packet.size_bytes), fetch_sdram)
        steps = self._tx_steps_memo.get(key)
        if steps is None:
            steps = list(self._standard_tx_steps(packet, fetch_sdram))
            self._tx_steps_memo[key] = steps
        return steps

    # -- shared transmit skeleton ----------------------------------------
    def _standard_tx_steps(self, packet: Packet, fetch_sdram: bool = True):
        """Descriptor read, per-chunk data movement, MAC handoff.

        SDRAM fetches are *posted*: the transmit ME kicks off the
        SDRAM -> TFIFO move and busy-polls the TFIFO status while the
        transfer drains (SDRAM bandwidth is consumed, the thread is not
        blocked) — which is why transmit MEs show almost no idle time.
        """
        from repro.npu.steps import MemPost, MemRead

        profile = self.profile
        yield MemRead("scratch", 8)
        yield Compute(profile.tx_header_instr)
        for _ in range(chunks_of(packet.size_bytes)):
            if fetch_sdram:
                yield MemPost("sdram", CHUNK_BYTES)
            yield Compute(profile.tx_chunk_instr)
        yield Compute(profile.tx_finish_instr)

    # -- introspection ----------------------------------------------------
    def expected_rx_instructions(self, packet: Packet) -> int:
        """Engine-busy instructions :meth:`rx_steps` will charge.

        Used by tests and the detailed/fast equivalence checks.
        """
        return sum(
            step.instructions
            for step in self.rx_steps(packet)
            if isinstance(step, Compute)
        )

    def expected_tx_instructions(self, packet: Packet) -> int:
        """Engine-busy instructions :meth:`tx_steps` will charge."""
        return sum(
            step.instructions
            for step in self.tx_steps(packet)
            if isinstance(step, Compute)
        )


#: Registered application constructors, filled by :func:`register_app`.
_REGISTRY: Dict[str, Callable[[AppResources], AppModel]] = {}


def register_app(name: str, factory: Callable[[AppResources], AppModel]) -> None:
    """Register an application constructor under ``name``."""
    _REGISTRY[name] = factory


def build_app(name: str, resources: AppResources) -> AppModel:
    """Build a benchmark application by name.

    >>> app = build_app("ipfwdr", AppResources())
    >>> app.name
    'ipfwdr'
    """
    # Import the app modules lazily so registration happens on demand
    # without import cycles.
    if name not in _REGISTRY:
        from repro.apps import detailed, ipfwdr, md4, nat, url  # noqa: F401

    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise NpuError(
            f"unknown benchmark {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(resources)
