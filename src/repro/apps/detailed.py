"""Detailed-mode applications: microcode executed by the interpreter.

``ipfwdr_uc`` and ``nat_uc`` are drop-in benchmark names (usable in
:class:`~repro.config.RunConfig` exactly like the fast models) whose
receive path runs real microcode instruction by instruction:

* one :class:`~repro.npu.steps.Compute` per retired instruction (so
  per-instruction ``pipeline`` trace events are possible);
* memory references go through both the *timing* model (the controller
  queue blocks the thread) and the *contents* model (the
  :class:`~repro.npu.memstore.MemStore` word the instruction addresses);
* routing/NAT decisions come from real table contents: the stride-trie
  serialized into SRAM, NAT buckets probed and installed by the code.

The transmit path reuses the shared fast-model skeleton — detailed mode
targets the receive processing the paper's applications differ in.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.apps.base import AppModel, AppProfile, AppResources, register_app
from repro.apps.microcode import (
    IPFWDR_UC,
    NAT_UC,
    serialize_stride_trie,
    write_port_info_blocks,
)
from repro.apps.routing import random_routing_trie
from repro.npu.assembler import assemble
from repro.npu.interpreter import Interpreter
from repro.npu.memstore import MemStore
from repro.npu.steps import Step
from repro.traffic.packet import Packet

#: Content-store sizes for detailed mode (timing is unaffected by size).
_SRAM_STORE_BYTES = 8 * 1024 * 1024
_SDRAM_STORE_BYTES = 32 * 1024 * 1024
_SCRATCH_STORE_BYTES = 16 * 1024

#: Transmit-side cost profile shared by the microcode apps.
_TX_PROFILE = AppProfile(
    rx_header_instr=1,  # unused on the detailed RX path
    rx_chunk_instr=1,
    rx_finish_instr=1,
    lookup_step_instr=1,
    enqueue_instr=1,
    tx_header_instr=50,
    tx_chunk_instr=60,
    tx_finish_instr=40,
)


class MicrocodeApp(AppModel):
    """Base for microcode-backed benchmarks."""

    #: Assembly source; subclasses set it.
    source = ""
    #: Whether the transmit path fetches the body from SDRAM.
    tx_fetch_sdram = True

    def __init__(self, resources: AppResources):
        super().__init__(resources, _TX_PROFILE)
        self.stores = {
            "sram": MemStore("sram", _SRAM_STORE_BYTES),
            "sdram": MemStore("sdram", _SDRAM_STORE_BYTES),
            "scratch": MemStore("scratch", _SCRATCH_STORE_BYTES),
        }
        self.program = assemble(self.source, name=self.name)
        self.interpreter = Interpreter(self.program, self.stores)
        self._setup_tables()

    def _setup_tables(self) -> None:
        """Populate memory contents before traffic starts."""

    def rx_steps(self, packet: Packet) -> Iterator[Step]:
        return self.interpreter.steps_for_packet(packet)

    def tx_steps(self, packet: Packet) -> Iterator[Step]:
        return self._standard_tx_steps(packet, fetch_sdram=self.tx_fetch_sdram)


class IpfwdrMicrocodeApp(MicrocodeApp):
    """IP forwarding through interpreted microcode and a real SRAM trie."""

    name = "ipfwdr_uc"
    source = IPFWDR_UC

    def __init__(self, resources: AppResources):
        if resources.routing_trie is None:
            resources.routing_trie = random_routing_trie(
                resources.rng_streams.get("apps.routing"),
                num_prefixes=256,
                num_ports=resources.num_ports,
            )
        self.trie = resources.routing_trie
        super().__init__(resources)

    def _setup_tables(self) -> None:
        self.tables_emitted = serialize_stride_trie(self.trie, self.stores["sram"])
        write_port_info_blocks(self.stores["sdram"], self.resources.num_ports)


class NatMicrocodeApp(MicrocodeApp):
    """NAT through interpreted microcode: real bucket probes in SRAM."""

    name = "nat_uc"
    source = NAT_UC
    tx_fetch_sdram = False  # cut-through, like the fast nat model

    def nat_entries_installed(self) -> int:
        """Translations installed so far (the scratch port counter)."""
        from repro.apps.microcode import NAT_PORT_COUNTER_ADDR

        return self.stores["scratch"].read_word(NAT_PORT_COUNTER_ADDR)


register_app("ipfwdr_uc", IpfwdrMicrocodeApp)
register_app("nat_uc", NatMicrocodeApp)
