"""`ipfwdr` — IP forwarding (Intel SDK reference application).

Per packet, the paper's description: "The routing table is stored in the
SRAM and the output port information is stored in the SDRAM."  The model:

receive
    parse/validate the header; store the packet to SDRAM in 64-byte
    chunks; walk the SRAM routing trie (one SRAM read per trie node
    visited — real LPM depth from the actual destination address); read
    the output-port info block from SDRAM; enqueue the descriptor.
transmit
    read the descriptor, fetch the packet back from SDRAM chunk by
    chunk, hand off to the MAC.
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.base import (
    CHUNK_BYTES,
    AppModel,
    AppProfile,
    AppResources,
    chunks_of,
    register_app,
)
from repro.apps.routing import RoutingTrie, random_routing_trie, strides_for_depth
from repro.npu.steps import Compute, MemRead, MemWrite, PutTx, Step
from repro.traffic.packet import Packet

#: SRAM bytes read per trie-walk step (one node record).
TRIE_NODE_BYTES = 4
#: SDRAM bytes of the output-port information block.
PORT_INFO_BYTES = 8

#: ipfwdr's cost profile (see AppProfile for field meanings).  Receive
#: compute is light (forwarding is table-driven), so under load the
#: SDRAM waits dominate each thread's cycle — the source of the 30-40 %
#: receive-ME idle windows the paper observes and EDVS exploits.
IPFWDR_PROFILE = AppProfile(
    rx_header_instr=300,
    rx_chunk_instr=90,
    rx_finish_instr=120,
    lookup_step_instr=15,
    enqueue_instr=30,
    tx_header_instr=50,
    tx_chunk_instr=60,
    tx_finish_instr=40,
)


class IpfwdrApp(AppModel):
    """IP forwarding over a real longest-prefix-match trie."""

    name = "ipfwdr"

    # Pure streams: trie lookups are read-only and the per-packet
    # counters commute, so both sides may be materialized and fused.
    materialize_rx = True
    materialize_tx = True

    def __init__(self, resources: AppResources, profile=None):
        super().__init__(resources, profile or IPFWDR_PROFILE)
        if resources.routing_trie is None:
            resources.routing_trie = random_routing_trie(
                resources.rng_streams.get("apps.routing"),
                num_prefixes=256,
                num_ports=resources.num_ports,
            )
        self.trie: RoutingTrie = resources.routing_trie
        self.lookups = 0
        self.total_lookup_depth = 0

    def rx_steps(self, packet: Packet) -> Iterator[Step]:
        profile = self.profile
        yield Compute(profile.rx_header_instr)
        # Move the packet RFIFO -> SDRAM, 64 bytes at a time.
        for _ in range(chunks_of(packet.size_bytes)):
            yield Compute(profile.rx_chunk_instr)
            yield MemWrite("sdram", CHUNK_BYTES)
        # LPM walk: one SRAM read per 8-bit stride of the match depth.
        port, depth = self.trie.lookup(packet.dst_ip)
        self.lookups += 1
        self.total_lookup_depth += depth
        for _ in range(strides_for_depth(depth)):
            yield MemRead("sram", TRIE_NODE_BYTES)
            yield Compute(profile.lookup_step_instr)
        packet.output_port = port
        # Output-port information lives in SDRAM.
        yield MemRead("sdram", PORT_INFO_BYTES)
        yield Compute(profile.rx_finish_instr)
        # Descriptor enqueue through the scratchpad ring.
        yield MemWrite("scratch", 8)
        yield Compute(profile.enqueue_instr)
        yield PutTx()

    def rx_steps_list(self, packet: Packet) -> list:
        port, depth = self.trie.lookup(packet.dst_ip)
        key = (chunks_of(packet.size_bytes), strides_for_depth(depth))
        steps = self._rx_steps_memo.get(key)
        if steps is None:
            # The generator performs the lookup and counter updates
            # itself (one extra read-only trie walk, first time only).
            steps = list(self.rx_steps(packet))
            self._rx_steps_memo[key] = steps
            return steps
        self.lookups += 1
        self.total_lookup_depth += depth
        packet.output_port = port
        return steps

    def tx_steps(self, packet: Packet) -> Iterator[Step]:
        return self._standard_tx_steps(packet, fetch_sdram=True)

    def tx_steps_list(self, packet: Packet) -> list:
        return self._standard_tx_steps_list(packet, fetch_sdram=True)

    @property
    def mean_lookup_depth(self) -> float:
        """Average trie-walk depth so far (SRAM reads per packet)."""
        if self.lookups == 0:
            return 0.0
        return self.total_lookup_depth / self.lookups


register_app("ipfwdr", IpfwdrApp)
