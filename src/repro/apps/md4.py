"""`md4` — 128-bit digital signatures over packet payloads.

The paper: "It moves data packets from SDRAM to SRAM and accesses SRAM
multiple times for computation.  It is therefore both memory and
computation intensive."  The model:

receive
    parse; store the packet to SDRAM; then per 64-byte MD4 block: fetch
    the block from SDRAM, stage it into SRAM, read it back for the
    compute rounds (the "accesses SRAM multiple times"), and charge the
    48-step MD4 round cost; finally write the 16-byte digest to SRAM and
    enqueue.  Block count uses the real RFC 1320 padding rule.
transmit
    standard descriptor + SDRAM fetch + MAC handoff.

In detailed runs the digest is actually computed with
:func:`repro.apps.md4_core.md4_digest` over the packet's materialized
payload (tests verify against the RFC test vectors).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.apps.base import (
    CHUNK_BYTES,
    AppModel,
    AppProfile,
    AppResources,
    chunks_of,
    register_app,
)
from repro.apps.md4_core import OPS_PER_BLOCK, md4_blocks_for, md4_digest
from repro.npu.steps import Compute, MemRead, MemWrite, PutTx, Step
from repro.traffic.packet import Packet

#: md4's cost profile.
MD4_PROFILE = AppProfile(
    rx_header_instr=200,
    rx_chunk_instr=100,
    rx_finish_instr=150,
    lookup_step_instr=20,
    enqueue_instr=30,
    tx_header_instr=50,
    tx_chunk_instr=60,
    tx_finish_instr=40,
)

#: Digest bytes written back to SRAM.
DIGEST_BYTES = 16


class Md4App(AppModel):
    """Per-packet MD4 signatures: memory- and compute-intensive."""

    name = "md4"

    materialize_tx = True

    def __init__(
        self,
        resources: AppResources,
        profile=None,
        compute_real_digests: bool = False,
    ):
        super().__init__(resources, profile or MD4_PROFILE)
        #: When true, actually hash each packet's payload (slow; used by
        #: detailed runs and tests rather than the big sweeps).
        self.compute_real_digests = compute_real_digests
        # ``blocks_hashed`` commutes, but ``last_digest`` depends on
        # packet completion order, so the rx stream is only pure (and
        # materializable) when real digests are off.
        self.materialize_rx = not compute_real_digests
        self.blocks_hashed = 0
        self.last_digest: Optional[bytes] = None

    def rx_steps(self, packet: Packet) -> Iterator[Step]:
        profile = self.profile
        yield Compute(profile.rx_header_instr)
        # Store the packet to SDRAM.
        for _ in range(chunks_of(packet.size_bytes)):
            yield Compute(profile.rx_chunk_instr)
            yield MemWrite("sdram", CHUNK_BYTES)
        # Hash the payload block by block: SDRAM -> SRAM -> rounds.
        blocks = md4_blocks_for(packet.payload_bytes_len)
        for _ in range(blocks):
            yield MemRead("sdram", CHUNK_BYTES)
            yield MemWrite("sram", CHUNK_BYTES)
            yield MemRead("sram", CHUNK_BYTES)
            yield Compute(OPS_PER_BLOCK)
        self.blocks_hashed += blocks
        if self.compute_real_digests:
            self.last_digest = md4_digest(packet.payload())
        # Digest write-back and descriptor enqueue.
        yield MemWrite("sram", DIGEST_BYTES)
        yield Compute(profile.rx_finish_instr)
        packet.output_port = packet.input_port
        yield MemWrite("scratch", 8)
        yield Compute(profile.enqueue_instr)
        yield PutTx()

    def rx_steps_list(self, packet: Packet) -> list:
        if self.compute_real_digests:
            # Impure stream (real digests): never memoized — matches
            # ``materialize_rx`` being False in this configuration.
            return list(self.rx_steps(packet))
        blocks = md4_blocks_for(packet.payload_bytes_len)
        key = (chunks_of(packet.size_bytes), blocks)
        steps = self._rx_steps_memo.get(key)
        if steps is None:
            steps = list(self.rx_steps(packet))
            self._rx_steps_memo[key] = steps
            return steps
        self.blocks_hashed += blocks
        packet.output_port = packet.input_port
        return steps

    def tx_steps(self, packet: Packet) -> Iterator[Step]:
        return self._standard_tx_steps(packet, fetch_sdram=True)

    def tx_steps_list(self, packet: Packet) -> list:
        return self._standard_tx_steps_list(packet, fetch_sdram=True)


register_app("md4", Md4App)
