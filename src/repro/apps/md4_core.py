"""RFC 1320 MD4 message digest, pure Python.

The `md4` benchmark computes a 128-bit digital signature per packet; the
step-stream model charges the timing cost, and this module supplies the
actual algorithm so detailed-mode runs (and tests against the RFC's
official test vectors) operate on real digests.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF


def _left_rotate(value: int, amount: int) -> int:
    value &= _MASK
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _f(x: int, y: int, z: int) -> int:
    return (x & y) | (~x & z)


def _g(x: int, y: int, z: int) -> int:
    return (x & y) | (x & z) | (y & z)


def _h(x: int, y: int, z: int) -> int:
    return x ^ y ^ z


def _round1_schedule():
    shifts = (3, 7, 11, 19)
    return [(k, shifts[k % 4]) for k in range(16)]


def _round2_schedule():
    shifts = (3, 5, 9, 13)
    order = [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
    return [(k, shifts[i % 4]) for i, k in enumerate(order)]


def _round3_schedule():
    shifts = (3, 9, 11, 15)
    order = [0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15]
    return [(k, shifts[i % 4]) for i, k in enumerate(order)]


_SCHED1 = _round1_schedule()
_SCHED2 = _round2_schedule()
_SCHED3 = _round3_schedule()

#: Operations per 64-byte block: 48 steps of ~6 ALU ops each plus message
#: scheduling — the cost constant the md4 app's step stream charges.
OPS_PER_BLOCK = 48 * 6


def _process_block(state, block: bytes):
    a, b, c, d = state
    words = struct.unpack("<16I", block)

    # Each step computes into the "a" slot and the registers rotate, so
    # the textbook [A B C D] [D A B C] [C D A B] [B C D A] order emerges.
    for k, s in _SCHED1:
        new = _left_rotate((a + _f(b, c, d) + words[k]) & _MASK, s)
        a, b, c, d = d, new, b, c
    for k, s in _SCHED2:
        new = _left_rotate((a + _g(b, c, d) + words[k] + 0x5A827999) & _MASK, s)
        a, b, c, d = d, new, b, c
    for k, s in _SCHED3:
        new = _left_rotate((a + _h(b, c, d) + words[k] + 0x6ED9EBA1) & _MASK, s)
        a, b, c, d = d, new, b, c

    return (
        (state[0] + a) & _MASK,
        (state[1] + b) & _MASK,
        (state[2] + c) & _MASK,
        (state[3] + d) & _MASK,
    )


def md4_digest(message: bytes) -> bytes:
    """Compute the 16-byte MD4 digest of ``message`` (RFC 1320)."""
    state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
    length_bits = (len(message) * 8) & 0xFFFFFFFFFFFFFFFF

    padded = bytearray(message)
    padded.append(0x80)
    while len(padded) % 64 != 56:
        padded.append(0)
    padded += struct.pack("<Q", length_bits)

    for offset in range(0, len(padded), 64):
        state = _process_block(state, bytes(padded[offset : offset + 64]))
    return struct.pack("<4I", *state)


def md4_hexdigest(message: bytes) -> str:
    """Hex form of :func:`md4_digest`."""
    return md4_digest(message).hex()


def md4_blocks_for(payload_len: int) -> int:
    """Number of 64-byte blocks MD4 processes for a payload length.

    Accounts for the mandatory padding block spill.
    """
    if payload_len < 0:
        raise ValueError(f"negative payload length {payload_len}")
    # Padding adds 1 byte plus an 8-byte length field.
    return (payload_len + 1 + 8 + 63) // 64
