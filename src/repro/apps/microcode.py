"""Microcode programs and table serializers for detailed execution.

This module provides everything the detailed mode needs to run *real*
microcode through the interpreter:

* :func:`serialize_stride_trie` — compiles a binary
  :class:`~repro.apps.routing.RoutingTrie` into an 8-bit-stride lookup
  table laid out in simulated SRAM words (the data structure IXP
  reference forwarding code actually walks);
* ``IPFWDR_UC`` — IP forwarding microcode: chunked packet store to
  SDRAM, a data-dependent stride-table walk over the serialized trie,
  port-info read, descriptor enqueue;
* ``NAT_UC`` — NAT microcode: 5-tuple hashing, a bucket probe in SRAM
  with a real compare-and-branch, entry install on miss with a
  scratchpad port counter, and the compute-heavy rewrite loop.

The programs' *decisions* (output ports, hit/miss behaviour) come from
the memory contents, so tests can assert they agree with the fast
models and the pure-Python reference structures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.routing import RoutingTrie
from repro.errors import NpuError
from repro.npu.memstore import MemStore

#: Stride-table layout constants (byte addresses in SRAM).
TRIE_BASE = 0x0000
TABLE_BYTES = 256 * 4
LEAF_FLAG = 0x80000000

#: NAT region layout (byte addresses in SRAM / scratch).
NAT_BASE = 0x0010_0000
NAT_BUCKETS = 4096
NAT_ENTRY_BYTES = 16
#: Scratch address of the free-port counter — above the descriptor ring,
#: which occupies scratch bytes 0..2047 ((flow & 0xff) << 3).
NAT_PORT_COUNTER_ADDR = 0x0804
NAT_PORT_BASE = 20_000

#: SDRAM staging layout for packet bodies in detailed mode.
PKT_REGION_BASE = 0x0000_0000
PKT_SLOT_BYTES = 2048
PKT_SLOTS = 4096

#: SDRAM region holding per-port output info blocks.
PORT_INFO_BASE = 0x0100_0000


def _subtree_has_routes(node) -> bool:
    """True if any node strictly below ``node`` carries a next hop."""
    for child in (node.zero, node.one):
        if child is not None:
            if child.next_hop is not None or _subtree_has_routes(child):
                return True
    return False


def serialize_stride_trie(
    trie: RoutingTrie, store: MemStore, base_addr: int = TRIE_BASE
) -> int:
    """Write an 8-bit-stride LPM table for ``trie`` into ``store``.

    Returns the number of 256-entry tables emitted.  Entry encoding:
    bit 31 set -> leaf, low 8 bits are the output port; otherwise the
    word is the byte address of the next-level table (never zero, since
    level-1+ tables start one table past the root).
    """
    tables: List[Optional[List[Tuple[str, int]]]] = []

    def walk(node, inherited_port: int, depth: int) -> int:
        table_index = len(tables)
        tables.append(None)
        entries: List[Tuple[str, int]] = []
        for byte in range(256):
            current = node
            port = inherited_port
            for bit_position in range(8):
                if current is None:
                    break
                bit = (byte >> (7 - bit_position)) & 1
                current = current.one if bit else current.zero
                if current is not None and current.next_hop is not None:
                    port = current.next_hop
            if current is not None and depth < 3 and _subtree_has_routes(current):
                entries.append(("table", walk(current, port, depth + 1)))
            else:
                entries.append(("leaf", port))
        tables[table_index] = entries
        return table_index

    root_port = trie.root.next_hop
    if root_port is None:
        raise NpuError("trie has no default route")
    walk(trie.root, root_port, 0)

    for table_index, entries in enumerate(tables):
        assert entries is not None
        table_addr = base_addr + table_index * TABLE_BYTES
        for byte, (kind, value) in enumerate(entries):
            if kind == "leaf":
                word = LEAF_FLAG | (value & 0xFF)
            else:
                word = base_addr + value * TABLE_BYTES
            store.write_word(table_addr + byte * 4, word)
    return len(tables)


def stride_lookup_reference(store: MemStore, base_addr: int, address: int) -> int:
    """Pure-Python walk of a serialized table (test oracle)."""
    table_addr = base_addr
    for level in range(4):
        byte = (address >> (24 - 8 * level)) & 0xFF
        word = store.read_word(table_addr + byte * 4)
        if word & LEAF_FLAG:
            return word & 0xFF
        table_addr = word
    raise NpuError("stride table deeper than 4 levels")


def write_port_info_blocks(store: MemStore, num_ports: int) -> None:
    """Populate the SDRAM port-info blocks (one 8-byte record per port)."""
    for port in range(num_ports):
        store.write_word(PORT_INFO_BASE + port * 8, 0x1000 + port)
        store.write_word(PORT_INFO_BASE + port * 8 + 4, port)


#: IP forwarding microcode.  Register plan:
#:   r1 table addr    r2 shift      r3 stride byte   r4 entry addr
#:   r5 entry word    r6 out port   r10 bytes left   r11 sdram addr
#:   r12 burn counter r14 descriptor scratch addr
IPFWDR_UC = f"""
.name ipfwdr_uc
.equ TRIE_BASE, {TRIE_BASE}
.equ LEAF_FLAG, {LEAF_FLAG}
.equ PKT_REGION, {PKT_REGION_BASE}
.equ PKT_SLOT, {PKT_SLOT_BYTES}
.equ SLOT_MASK, {PKT_SLOTS - 1}
.equ PORT_INFO, {PORT_INFO_BASE}

    ; ---- header parse / validation (busy work) ----
    li      r12, 60
parse:
    sub     r12, r12, 1
    xor     r13, r12, r12
    bne     r12, zero, parse

    ; ---- store packet to SDRAM in 64-byte chunks ----
    and     r11, pkt_flow, SLOT_MASK
    mul     r11, r11, PKT_SLOT
    add     r11, r11, PKT_REGION
    mov     r15, r11                 ; keep buffer base for TX
    mov     r10, pkt_size
    li      r16, 64
store_loop:
    li      r12, 14                  ; per-chunk alignment/bookkeeping
burn_chunk:
    sub     r12, r12, 1
    add     r13, r13, r12
    bne     r12, zero, burn_chunk
    sdram_wr r11, r13, 64
    add     r11, r11, 64
    ble     r10, r16, store_done     ; this chunk covered the remainder
    sub     r10, r10, 64
    br      store_loop
store_done:

    ; ---- LPM walk over the stride table in SRAM ----
    li      r1, TRIE_BASE
    li      r2, 24
lookup:
    shr     r3, pkt_dst, r2
    and     r3, r3, 0xff
    shl     r4, r3, 2
    add     r4, r1, r4
    sram_rd r5, r4, 4
    and     r6, r5, LEAF_FLAG
    bne     r6, zero, leaf
    mov     r1, r5                   ; descend to the next-level table
    sub     r2, r2, 8
    br      lookup
leaf:
    and     r6, r5, 0xff
    set_out_port r6

    ; ---- output-port info from SDRAM ----
    shl     r7, r6, 3
    add     r7, r7, PORT_INFO
    sdram_rd r8, r7, 8

    ; ---- post-lookup bookkeeping ----
    li      r12, 18
finish:
    sub     r12, r12, 1
    add     r13, r13, r8
    bne     r12, zero, finish

    ; ---- descriptor enqueue through scratch ----
    and     r14, pkt_flow, 0xff
    shl     r14, r14, 3
    scratch_wr r14, r15, 8
    puttx
    done
"""


#: NAT microcode.  Register plan:
#:   r1 running hash   r2 bucket addr  r3 stored key  r4 port counter
#:   r5 counter addr   r6 out port     r12 loop counter
NAT_UC = f"""
.name nat_uc
.equ NAT_BASE, {NAT_BASE}
.equ BUCKET_MASK, {NAT_BUCKETS - 1}
.equ CTR_ADDR, {NAT_PORT_COUNTER_ADDR}

    ; ---- header parse ----
    li      r12, 36
parse:
    sub     r12, r12, 1
    bne     r12, zero, parse

    ; ---- hash the 5-tuple ----
    hash    r1, pkt_src, pkt_dst
    hash    r1, r1, pkt_sport
    hash    r1, r1, pkt_dport
    hash    r1, r1, pkt_proto
    or      r1, r1, 1                ; keys are never zero (0 = empty)

    ; ---- probe the bucket in SRAM ----
    and     r2, r1, BUCKET_MASK
    shl     r2, r2, 4
    add     r2, r2, NAT_BASE
    sram_rd r3, r2, 16
    beq     r3, r1, hit

    ; ---- miss: install the translation ----
    sram_wr r2, r1, 16
    li      r5, CTR_ADDR
    scratch_rd r4, r5, 4
    add     r4, r4, 1
    scratch_wr r5, r4, 4

hit:
    ; ---- header rewrite + incremental checksum (compute heavy) ----
    li      r12, 196
rewrite:
    sub     r12, r12, 1
    xor     r13, r13, r12
    add     r13, r13, r1
    shr     r14, r13, 3
    or      r13, r13, r14
    and     r13, r13, 0xffffff
    mul     r14, r12, 3
    bne     r12, zero, rewrite

    ; ---- route on the flow and enqueue ----
    and     r6, pkt_flow, 15
    set_out_port r6
    and     r14, pkt_flow, 0xff
    shl     r14, r14, 3
    scratch_wr r14, r13, 8
    puttx
    done
"""
