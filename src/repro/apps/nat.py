"""`nat` — network address translation.

The paper: "In nat, each packet only needs an access to SRAM for looking
up the IP forwarding table" and later "nat has very few memory accesses,
and the MEs are kept busy" — which is why EDVS never finds idle time to
exploit on this benchmark.  The model:

receive
    parse the header; a single SRAM read fetches the translation entry
    (the real :class:`~repro.apps.nat_table.NatTable` supplies it, and a
    brand-new flow pays one extra SRAM write to install its entry); a
    large compute block rewrites the header and incrementally updates
    checksums; enqueue the descriptor.
transmit
    cut-through: the packet moves RFIFO -> TFIFO without an SDRAM round
    trip, so transmit is compute-only per chunk.
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.base import AppModel, AppProfile, AppResources, register_app
from repro.apps.nat_table import NatTable
from repro.npu.steps import Compute, Drop, MemRead, MemWrite, PutTx, Step
from repro.traffic.packet import Packet

#: SRAM bytes per translation-entry read/install.
NAT_ENTRY_BYTES = 16

#: nat's cost profile: header rewriting dominates; no packet-body moves.
NAT_PROFILE = AppProfile(
    rx_header_instr=300,
    rx_chunk_instr=30,  # cut-through FIFO move bookkeeping per chunk
    rx_finish_instr=120,
    lookup_step_instr=24,
    enqueue_instr=30,
    tx_header_instr=80,
    tx_chunk_instr=30,
    tx_finish_instr=40,
)

#: The header-rewrite + incremental-checksum compute block.
REWRITE_INSTR = 1600


class NatApp(AppModel):
    """Source NAT with a real translation table; compute-bound."""

    name = "nat"

    # The rx stream allocates translation-table entries as it runs, and
    # entry order is observable across interleaved packets — rx must stay
    # lazy.  The tx skeleton is pure.
    materialize_tx = True

    def __init__(self, resources: AppResources, profile=None):
        super().__init__(resources, profile or NAT_PROFILE)
        if resources.nat_table is None:
            resources.nat_table = NatTable()
        self.table: NatTable = resources.nat_table
        self.translated = 0
        self.dropped_exhausted = 0

    def rx_steps(self, packet: Packet) -> Iterator[Step]:
        profile = self.profile
        yield Compute(profile.rx_header_instr)
        # The single SRAM lookup the paper describes.
        new_flow = not self.table.is_known(packet.five_tuple)
        yield MemRead("sram", NAT_ENTRY_BYTES)
        yield Compute(profile.lookup_step_instr)
        entry = self.table.translate(packet.five_tuple)
        if entry is None:
            self.dropped_exhausted += 1
            yield Drop("nat-port-exhausted")
            return
        if new_flow:
            # Install the fresh translation entry.
            yield MemWrite("sram", NAT_ENTRY_BYTES)
            yield Compute(profile.lookup_step_instr)
        # Header rewrite and incremental checksum update: pure compute.
        yield Compute(REWRITE_INSTR)
        self.translated += 1
        packet.output_port = packet.flow_id % self.resources.num_ports
        yield Compute(profile.rx_finish_instr)
        yield MemWrite("scratch", 8)
        yield Compute(profile.enqueue_instr)
        yield PutTx()

    def tx_steps(self, packet: Packet) -> Iterator[Step]:
        # Cut-through transmit: no SDRAM fetch, per-chunk FIFO moves only.
        return self._standard_tx_steps(packet, fetch_sdram=False)


register_app("nat", NatApp)
