"""NAT translation table.

`nat` rewrites each packet's source endpoint according to a translation
entry looked up (one SRAM access) by the packet's 5-tuple; unknown flows
allocate a new external port.  The table is a real hash map with an
explicit external-port allocator so translations are stable per flow and
collisions/port exhaustion are honest failure modes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import NpuError

FiveTuple = Tuple[int, int, int, int, int]


class NatTable:
    """Source-NAT translation state.

    Parameters
    ----------
    external_ip:
        The single external address translations map to.
    port_base / port_count:
        External port range handed out to new flows.
    """

    def __init__(
        self,
        external_ip: int = 0xC0A80001,
        port_base: int = 20_000,
        port_count: int = 40_000,
    ):
        if port_count <= 0:
            raise NpuError(f"port_count must be positive, got {port_count}")
        self.external_ip = external_ip
        self.port_base = port_base
        self.port_count = port_count
        self._entries: Dict[FiveTuple, Tuple[int, int]] = {}
        self._next_port = 0
        self.hits = 0
        self.misses = 0
        self.exhaustions = 0

    def translate(self, five_tuple: FiveTuple) -> Optional[Tuple[int, int]]:
        """Return ``(external_ip, external_port)`` for a flow.

        Known flows hit the existing entry; unknown flows allocate the
        next external port.  Returns ``None`` when the port pool is
        exhausted (the packet would be dropped).
        """
        entry = self._entries.get(five_tuple)
        if entry is not None:
            self.hits += 1
            return entry
        if len(self._entries) >= self.port_count:
            self.exhaustions += 1
            return None
        self.misses += 1
        port = self.port_base + self._next_port
        self._next_port += 1
        entry = (self.external_ip, port)
        self._entries[five_tuple] = entry
        return entry

    def is_known(self, five_tuple: FiveTuple) -> bool:
        """True if the flow already has a translation."""
        return five_tuple in self._entries

    def __len__(self) -> int:
        return len(self._entries)
