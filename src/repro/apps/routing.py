"""Longest-prefix-match routing table (binary trie).

`ipfwdr` walks a trie stored in SRAM: each step of the walk is one SRAM
read in the step stream, so the *depth* of the successful lookup directly
shapes the application's memory behaviour.  The implementation is a real
binary trie with prefix insertion and LPM lookup; tests cross-check it
against a brute-force reference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import NpuError


class _TrieNode:
    __slots__ = ("zero", "one", "next_hop")

    def __init__(self):
        self.zero: Optional[_TrieNode] = None
        self.one: Optional[_TrieNode] = None
        self.next_hop: Optional[int] = None


class RoutingTrie:
    """Binary LPM trie mapping IPv4 prefixes to next-hop port indices."""

    def __init__(self, default_port: int = 0):
        self._root = _TrieNode()
        self._root.next_hop = default_port
        self.prefixes = 0

    def insert(self, prefix: int, length: int, port: int) -> None:
        """Insert ``prefix/length`` -> ``port``.

        ``prefix`` is a 32-bit address whose top ``length`` bits matter.
        """
        if not 0 <= length <= 32:
            raise NpuError(f"prefix length must be 0..32, got {length}")
        if not 0 <= prefix < 2**32:
            raise NpuError(f"prefix must be a 32-bit value, got {prefix}")
        node = self._root
        for bit_index in range(length):
            bit = (prefix >> (31 - bit_index)) & 1
            if bit:
                if node.one is None:
                    node.one = _TrieNode()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _TrieNode()
                node = node.zero
        if node.next_hop is None:
            self.prefixes += 1
        node.next_hop = port

    @property
    def root(self) -> _TrieNode:
        """The root node (used by the stride-table serializer)."""
        return self._root

    def lookup(self, address: int) -> Tuple[int, int]:
        """Longest-prefix-match: returns ``(port, depth_visited)``.

        ``depth_visited`` is the number of trie nodes traversed — the
        number of SRAM reads the microengine pays for the walk (at least
        1: the root/default-route read).
        """
        node = self._root
        best = node.next_hop
        depth = 1
        for bit_index in range(32):
            bit = (address >> (31 - bit_index)) & 1
            node = node.one if bit else node.zero
            if node is None:
                break
            depth += 1
            if node.next_hop is not None:
                best = node.next_hop
        assert best is not None  # root always carries the default route
        return best, depth

    def __len__(self) -> int:
        return self.prefixes


def random_routing_trie(
    rng, num_prefixes: int = 256, num_ports: int = 16
) -> RoutingTrie:
    """Build a realistic routing table covering the whole address space.

    All 256 /8 prefixes are installed with round-robin output ports (so
    arbitrary destinations spread across every port, as a deployed edge
    table would), and ``num_prefixes`` longer random prefixes (/12-/24,
    the classic BGP length mix) are layered on top to vary LPM depth.
    """
    if num_prefixes < 0:
        raise NpuError(f"num_prefixes must be non-negative, got {num_prefixes}")
    trie = RoutingTrie(default_port=0)
    for octet in range(256):
        trie.insert(octet << 24, 8, (octet * 7 + rng.randrange(num_ports)) % num_ports)
    lengths = [12, 16, 16, 20, 24, 24]
    for _ in range(num_prefixes):
        length = rng.choice(lengths)
        prefix = rng.getrandbits(length) << (32 - length)
        trie.insert(prefix, length, rng.randrange(num_ports))
    return trie


def strides_for_depth(depth_bits: int, stride_bits: int = 8, max_strides: int = 5) -> int:
    """SRAM reads for a multibit (stride) trie walk of ``depth_bits``.

    The timing model walks an 8-bit-stride table (as IXP reference code
    does) rather than one read per bit: a /24 match costs 3 reads.
    """
    if depth_bits <= 1:
        return 1
    return min(max_strides, 1 + (depth_bits - 2) // stride_bits + 1)


def brute_force_lpm(
    routes: List[Tuple[int, int, int]], address: int, default_port: int = 0
) -> int:
    """Reference LPM over ``(prefix, length, port)`` tuples (tests only)."""
    best_port = default_port
    best_length = -1
    for prefix, length, port in routes:
        # >= so that a re-inserted identical prefix overrides (last wins),
        # matching the trie's overwrite semantics.
        if length >= best_length:
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
            if (address & mask) == (prefix & mask):
                best_port = port
                best_length = length
    return best_port
