"""`url` — URL-request-based routing.

The paper: "It checks the payload of packets frequently, so it needs a
large number of SRAM and SDRAM accesses" — the most memory-intensive of
the four benchmarks.  The model:

receive
    parse the header; store the packet to SDRAM; then *re-read* every
    payload chunk back from SDRAM and scan it for a URL token (heavy
    per-chunk compute); probe the SRAM URL table (a few hash probes);
    route on the match; enqueue the descriptor.
transmit
    standard descriptor + SDRAM fetch + MAC handoff.
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.base import (
    CHUNK_BYTES,
    AppModel,
    AppProfile,
    AppResources,
    chunks_of,
    register_app,
)
from repro.npu.steps import Compute, MemRead, MemWrite, PutTx, Step
from repro.traffic.packet import Packet

#: SRAM bytes per URL-table probe (one bucket record).
URL_BUCKET_BYTES = 16
#: Number of hash probes per lookup.
URL_PROBES = 3
#: SDRAM bytes of the route/port information block.
PORT_INFO_BYTES = 8

#: url's cost profile: payload scanning dominates.
URL_PROFILE = AppProfile(
    rx_header_instr=250,
    rx_chunk_instr=130,
    rx_finish_instr=120,
    lookup_step_instr=30,
    enqueue_instr=30,
    tx_header_instr=50,
    tx_chunk_instr=60,
    tx_finish_instr=40,
)

#: Instructions per payload chunk scanned for the URL token (~2.7/byte).
SCAN_CHUNK_INSTR = 170


class UrlApp(AppModel):
    """URL routing: payload scanning plus SRAM hash-table probing."""

    name = "url"

    # Pure streams: pattern scans only bump commutative counters and the
    # route choice is a pure function of the packet.
    materialize_rx = True
    materialize_tx = True

    def __init__(self, resources: AppResources, profile=None):
        super().__init__(resources, profile or URL_PROFILE)
        self._route_rng = resources.rng_streams.get("apps.url.routes")
        self.scanned_chunks = 0

    def rx_steps(self, packet: Packet) -> Iterator[Step]:
        profile = self.profile
        yield Compute(profile.rx_header_instr)
        nchunks = chunks_of(packet.size_bytes)
        # Store the packet to SDRAM...
        for _ in range(nchunks):
            yield Compute(profile.rx_chunk_instr)
            yield MemWrite("sdram", CHUNK_BYTES)
        # ...then read the payload back chunk by chunk and scan it.
        payload_chunks = chunks_of(packet.payload_bytes_len)
        for _ in range(payload_chunks):
            yield MemRead("sdram", CHUNK_BYTES)
            yield Compute(SCAN_CHUNK_INSTR)
            self.scanned_chunks += 1
        # Probe the URL table in SRAM.
        for _ in range(URL_PROBES):
            yield MemRead("sram", URL_BUCKET_BYTES)
            yield Compute(profile.lookup_step_instr)
        # Route on the (deterministic per-flow) match.
        packet.output_port = packet.flow_id % self.resources.num_ports
        yield MemRead("sdram", PORT_INFO_BYTES)
        yield Compute(profile.rx_finish_instr)
        yield MemWrite("scratch", 8)
        yield Compute(profile.enqueue_instr)
        yield PutTx()

    def rx_steps_list(self, packet: Packet) -> list:
        payload_chunks = chunks_of(packet.payload_bytes_len)
        key = (chunks_of(packet.size_bytes), payload_chunks)
        steps = self._rx_steps_memo.get(key)
        if steps is None:
            steps = list(self.rx_steps(packet))
            self._rx_steps_memo[key] = steps
            return steps
        self.scanned_chunks += payload_chunks
        packet.output_port = packet.flow_id % self.resources.num_ports
        return steps

    def tx_steps(self, packet: Packet) -> Iterator[Step]:
        return self._standard_tx_steps(packet, fetch_sdram=True)

    def tx_steps_list(self, packet: Packet) -> list:
        return self._standard_tx_steps_list(packet, fetch_sdram=True)


register_app("url", UrlApp)
