"""Pluggable sweep execution backends.

* :mod:`~repro.backends.base` — the :class:`ExecutionBackend`
  contract: submit pending jobs, stream outcomes back in any order,
  bit-identical results;
* :mod:`~repro.backends.local` — :class:`SerialBackend` (in-process)
  and :class:`ProcessBackend` (local process pool);
* :mod:`~repro.backends.distributed` — :class:`DistributedBackend`,
  the TCP coordinator of the multi-machine job queue;
* :mod:`~repro.backends.worker` — :func:`run_worker`, the
  ``repro worker --connect HOST:PORT`` pull loop;
* :mod:`~repro.backends.protocol` — the length-prefixed JSON wire
  format shared by coordinator and workers.

:func:`~repro.sweep.engine.run_sweep` selects a backend from its
``backend=`` argument, the ``REPRO_SWEEP_BACKEND`` environment
variable (``serial`` / ``process`` / ``distributed``; the distributed
endpoint comes from ``REPRO_SWEEP_CONNECT``), or — by default — serial
for one worker and the process pool otherwise, exactly as before the
backends existed.

Quickstart (two machines)::

    # machine A — the coordinator side runs the sweep as usual:
    repro study --scenario all --policy tdvs,edvs \\
        --backend distributed --connect 0.0.0.0:7641

    # machine B (any number of times):
    repro worker --connect machineA:7641
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.errors import BackendError
from repro.backends.base import ExecutionBackend, StartFn, run_backend
from repro.backends.distributed import DistributedBackend, LeaseClock
from repro.backends.local import ProcessBackend, SerialBackend
from repro.backends.protocol import PROTOCOL_VERSION, parse_endpoint
from repro.backends.worker import run_worker

#: Environment override for the default backend (``serial`` /
#: ``process`` / ``distributed``); experiments consult it through
#: :func:`~repro.sweep.engine.run_sweep`, so every figure grid can fan
#: out to a worker fleet with zero call-site changes.
BACKEND_ENV_VAR = "REPRO_SWEEP_BACKEND"

#: Environment fallback for the distributed coordinator endpoint.
CONNECT_ENV_VAR = "REPRO_SWEEP_CONNECT"

#: Name → backend selector tokens accepted by :func:`get_backend`.
BACKEND_NAMES = ("serial", "process", "distributed")


def get_backend(
    name: Optional[Union[str, ExecutionBackend]] = None,
    workers: Optional[int] = None,
    connect: Optional[str] = None,
    log=None,
    lease_s: Optional[float] = None,
    max_retries: Optional[int] = None,
) -> ExecutionBackend:
    """Build a backend from a selector token (or pass one through).

    ``name=None`` consults ``REPRO_SWEEP_BACKEND`` and falls back to
    the classic behaviour: serial for ``workers`` <= 1, the local
    process pool otherwise.  ``connect`` (or ``REPRO_SWEEP_CONNECT``)
    gives the distributed coordinator its ``HOST:PORT`` to listen on;
    ``lease_s`` / ``max_retries`` tune its fault tolerance (both are
    ignored by the local backends, and by pre-built instances, which
    pass through untouched).
    """
    if isinstance(name, ExecutionBackend):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
    if workers is None:
        from repro.sweep.engine import default_workers

        workers = default_workers()
    if name is None:
        name = "process" if workers > 1 else "serial"
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(max(1, workers))
    if name == "distributed":
        connect = connect or os.environ.get(CONNECT_ENV_VAR, "").strip() or None
        if connect is None:
            raise BackendError(
                "distributed backend needs an endpoint to listen on: pass "
                "--connect HOST:PORT (or set REPRO_SWEEP_CONNECT)"
            )
        host, port = parse_endpoint(connect)
        extra = {}
        if lease_s is not None:
            extra["lease_s"] = lease_s
        if max_retries is not None:
            extra["max_retries"] = max_retries
        return DistributedBackend(host=host, port=port, log=log, **extra)
    raise BackendError(
        f"unknown sweep backend {name!r}; expected one of "
        + ", ".join(BACKEND_NAMES)
    )


__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "CONNECT_ENV_VAR",
    "DistributedBackend",
    "ExecutionBackend",
    "LeaseClock",
    "PROTOCOL_VERSION",
    "ProcessBackend",
    "SerialBackend",
    "StartFn",
    "get_backend",
    "parse_endpoint",
    "run_backend",
    "run_worker",
]
