"""The execution-backend contract.

An :class:`ExecutionBackend` turns a list of pending
:class:`~repro.sweep.spec.Job` objects into a stream of
:class:`~repro.sweep.store.SweepOutcome` objects.  The contract is
small and strict, so the sweep engine can treat every execution
strategy — in-process, process pool, multi-machine queue — the same:

* :meth:`~ExecutionBackend.run` yields **exactly one** outcome per
  submitted job, keyed by ``job_id``, in **any order** (the engine
  restores job order and fans duplicates out);
* results are **bit-identical** across backends: every job carries its
  own seed, so where or when it runs can never change its numbers;
* outcomes are yielded **as they complete**, so the engine can persist
  each one to the :class:`~repro.sweep.store.ResultStore`
  incrementally — a crashed coordinator resumes from the cache instead
  of re-paying finished work.

Jobs handed to a backend are already de-duplicated and cache-filtered
by :func:`~repro.sweep.engine.run_sweep`; backends never consult the
store themselves.
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence

from repro.sweep.spec import Job
from repro.sweep.store import SweepOutcome


class ExecutionBackend(abc.ABC):
    """One strategy for executing pending sweep jobs."""

    #: Short backend identifier (``serial`` / ``process`` /
    #: ``distributed``), also the CLI/env selector token.
    name: str = "?"

    @abc.abstractmethod
    def run(self, jobs: Sequence[Job]) -> Iterator[SweepOutcome]:
        """Execute ``jobs``, yielding one outcome each, in any order.

        A backend instance is single-use: after the generator is
        exhausted (or closed), the backend's resources are released and
        a fresh instance is needed for the next sweep.
        """

    def close(self) -> None:
        """Release any resources held outside :meth:`run` (idempotent)."""
