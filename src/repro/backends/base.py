"""The execution-backend contract.

An :class:`ExecutionBackend` turns a list of pending
:class:`~repro.sweep.spec.Job` objects into a stream of
:class:`~repro.sweep.store.SweepOutcome` objects.  The contract is
small and strict, so the sweep engine can treat every execution
strategy — in-process, process pool, multi-machine queue — the same:

* :meth:`~ExecutionBackend.run` yields **exactly one** outcome per
  submitted job, keyed by ``job_id``, in **any order** (the engine
  restores job order and fans duplicates out);
* results are **bit-identical** across backends: every job carries its
  own seed, so where or when it runs can never change its numbers;
* outcomes are yielded **as they complete**, so the engine can persist
  each one to the :class:`~repro.sweep.store.ResultStore`
  incrementally — a crashed coordinator resumes from the cache instead
  of re-paying finished work.

Jobs handed to a backend are already de-duplicated and cache-filtered
by :func:`~repro.sweep.engine.run_sweep`; backends never consult the
store themselves.
"""

from __future__ import annotations

import abc
import inspect
from typing import Callable, Iterator, Optional, Sequence

from repro.sweep.spec import Job
from repro.sweep.store import SweepOutcome

#: Dispatch notification: called when a job starts executing (serial),
#: is submitted to the pool (process), or is granted to a worker
#: (distributed).  May fire from a non-main thread, and more than once
#: for a job the distributed backend requeues after a lost lease.
StartFn = Callable[[Job], None]


class ExecutionBackend(abc.ABC):
    """One strategy for executing pending sweep jobs."""

    #: Short backend identifier (``serial`` / ``process`` /
    #: ``distributed``), also the CLI/env selector token.
    name: str = "?"

    @abc.abstractmethod
    def run(
        self, jobs: Sequence[Job], on_start: Optional[StartFn] = None
    ) -> Iterator[SweepOutcome]:
        """Execute ``jobs``, yielding one outcome each, in any order.

        ``on_start`` is the dispatch notification of the session event
        surface (see :data:`StartFn`); backends that cannot observe job
        starts may fire it at submission time instead.

        A backend instance is single-use: after the generator is
        exhausted (or closed), the backend's resources are released and
        a fresh instance is needed for the next sweep.
        """

    def close(self) -> None:
        """Release any resources held outside :meth:`run` (idempotent)."""

    def telemetry(self) -> dict:
        """Fleet telemetry for the finished run (flat name → value).

        Integer values are counters, floats are gauges — the session
        merges the dict into its sweep-level metrics snapshot under a
        ``backend.<name>.`` prefix.  The base implementation reports
        nothing; backends override to expose their counters (jobs
        granted/completed/requeued, lease renewals, heartbeat EWMA for
        the distributed fleet).  Call after :meth:`run` drains — values
        mid-run are a live, unsynchronized view.
        """
        return {}


def run_backend(
    backend: ExecutionBackend,
    jobs: Sequence[Job],
    on_start: Optional[StartFn] = None,
) -> Iterator[SweepOutcome]:
    """Call :meth:`ExecutionBackend.run`, tolerating legacy signatures.

    Third-party backends written against the pre-session contract take
    only ``jobs``; for those, every job is announced up front (they are
    all about to be dispatched) and the plain iterator is returned.
    """
    try:
        parameters = inspect.signature(backend.run).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        parameters = {}
    accepts_on_start = "on_start" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    if accepts_on_start:
        return backend.run(jobs, on_start=on_start)
    if on_start is not None:
        for job in jobs:
            on_start(job)
    return backend.run(jobs)
