"""The multi-machine backend: a TCP job-queue coordinator.

:class:`DistributedBackend` binds a TCP endpoint, queues the pending
jobs, and leases them out to ``repro worker --connect HOST:PORT``
processes (see :mod:`repro.backends.worker`), streaming outcomes back
to the sweep engine as they arrive.  Fault tolerance is built into the
lease discipline:

* every grant carries a **lease**: the worker must heartbeat before
  the lease term expires or the job is presumed lost;
* the lease term is **adaptive**: it starts at ``lease_s`` and then
  tracks observed job wall-clock (an EWMA with a floor, see
  :class:`LeaseClock`) — short jobs shrink the term so dead workers
  are detected in seconds, long jobs grow it so network jitter never
  costs a spurious requeue;
* a worker whose connection drops (crash, ``SIGKILL``, network cut)
  has all of its leased jobs **requeued immediately**;
* requeues are **bounded**: a job granted more than ``1 + max_retries``
  times fails the sweep with a :class:`~repro.errors.BackendError`
  (an :class:`~repro.errors.ExperimentError`) naming the job;
* a late outcome for an already-completed job — the leaseholder was
  slow, not dead, and the requeued copy finished first — is **dropped**,
  so nothing is ever delivered twice.

Exactly-once delivery plus the engine's incremental
:class:`~repro.sweep.store.ResultStore` appends give crash-resume on
the coordinator side too: restart the sweep with the same store and
only unfinished cells are re-queued.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import BackendError, ExperimentError
from repro.backends.base import ExecutionBackend, StartFn
from repro.obs.spans import get_recorder
from repro.backends.protocol import (
    DEFAULT_HOST,
    PROTOCOL_VERSION,
    recv_message,
    send_message,
)
from repro.sweep.spec import Job
from repro.sweep.store import SweepOutcome

#: One log callback: a short human-readable event line.
LogFn = Callable[[str], None]


class LeaseClock:
    """Adaptive lease term derived from observed job wall-clock.

    Grants start at ``initial_s``.  Every completed job feeds its
    wall-clock into an EWMA; once one exists the term becomes
    ``margin * ewma`` clamped to ``[floor_s, cap_s]``.  The floor keeps
    sub-second jobs from producing a term shorter than a worker can
    reliably heartbeat; the cap bounds how long a truly dead worker can
    sit on a lease after a run of very long jobs.
    """

    def __init__(
        self,
        initial_s: float,
        floor_s: float = 2.0,
        margin: float = 4.0,
        cap_s: float = 300.0,
        alpha: float = 0.3,
    ):
        if floor_s <= 0 or initial_s <= 0:
            raise BackendError("lease terms must be positive")
        if margin <= 0:
            raise BackendError(f"lease margin must be positive, got {margin}")
        if not 0.0 < alpha <= 1.0:
            raise BackendError(f"lease EWMA alpha must be in (0, 1], got {alpha}")
        if cap_s < floor_s:
            raise BackendError(
                f"lease cap {cap_s}s is below the floor {floor_s}s"
            )
        self.initial_s = initial_s
        self.floor_s = floor_s
        self.margin = margin
        self.cap_s = cap_s
        self.alpha = alpha
        self.ewma_s: Optional[float] = None

    def observe(self, wall_s: float) -> None:
        """Feed one completed job's wall-clock into the EWMA."""
        wall_s = max(0.0, wall_s)
        if self.ewma_s is None:
            self.ewma_s = wall_s
        else:
            self.ewma_s = self.alpha * wall_s + (1.0 - self.alpha) * self.ewma_s

    @property
    def term_s(self) -> float:
        """The lease term the next grant should carry."""
        if self.ewma_s is None:
            return self.initial_s
        return min(max(self.floor_s, self.margin * self.ewma_s), self.cap_s)


@dataclass
class _Lease:
    """One outstanding job grant."""

    job: Job
    worker: str
    deadline: float
    #: The term this grant was issued under; heartbeats extend by this
    #: (not the clock's current term), so a lease always stays
    #: consistent with the heartbeat cadence its worker was told.
    term_s: float
    granted_at: float
    #: When the lease last heartbeat (or was granted) — feeds the
    #: heartbeat-interval EWMA in the coordinator telemetry.
    last_beat: float = 0.0
    #: ``perf_counter`` at grant time — the start of the grant→outcome
    #: span on the ``job`` track (``granted_at`` is ``monotonic``, the
    #: lease-math clock; spans share the recorder's ``perf_counter``
    #: timeline instead).
    granted_perf: float = 0.0


class _State:
    """Shared coordinator state, guarded by one lock."""

    def __init__(self, jobs: Sequence[Job], clock: LeaseClock, max_retries: int,
                 log: Optional[LogFn], on_start: Optional[StartFn] = None):
        self.lock = threading.Lock()
        self.pending = deque(jobs)
        self.leases: Dict[str, _Lease] = {}
        self.grants: Dict[str, int] = {}
        self.completed = set()
        self.total = len(jobs)
        self.results: "queue.Queue[object]" = queue.Queue()
        self.clock = clock
        self.lease_s = clock.initial_s
        self.max_retries = max_retries
        self.failed = False
        self.shutdown = threading.Event()
        self.log = log
        self.on_start = on_start
        #: Fleet counters (guarded by the same lock); merged into the
        #: session's sweep-level metrics snapshot after the run.
        self.counters = {
            "jobs_granted": 0,
            "jobs_completed": 0,
            "jobs_requeued": 0,
            "duplicates_dropped": 0,
            "lease_expirations": 0,
            "heartbeats": 0,
            "lease_renewals": 0,
            "workers_connected": 0,
            "worker_jobs_reported": 0,
            "worker_heartbeats_reported": 0,
        }
        #: EWMA of the interval between a lease's consecutive
        #: heartbeats — the fleet's effective heartbeat latency.
        self.heartbeat_ewma_s: Optional[float] = None

    def _say(self, line: str) -> None:
        if self.log is not None:
            self.log(line)

    def grant(self, worker: str) -> dict:
        """Answer one ``pull``: a job, a wait, or a shutdown."""
        granted: Optional[Job] = None
        grant_start = time.perf_counter()
        with self.lock:
            if self.failed or self.shutdown.is_set():
                return {"type": "shutdown"}
            if self.pending:
                job = self.pending.popleft()
                now = time.monotonic()
                term_s = self.clock.term_s
                self.grants[job.job_id] = self.grants.get(job.job_id, 0) + 1
                self.leases[job.job_id] = _Lease(
                    job=job, worker=worker,
                    deadline=now + term_s, term_s=term_s, granted_at=now,
                    last_beat=now, granted_perf=grant_start,
                )
                self.counters["jobs_granted"] += 1
                granted = job
                reply = {"type": "job", "job": job.to_dict(), "lease_s": term_s}
            elif len(self.completed) >= self.total:
                return {"type": "shutdown"}
            else:
                return {"type": "wait", "poll_s": 0.2}
        # Fire the dispatch hook outside the lock: a slow subscriber
        # must never stall heartbeats or completions.
        if granted is not None:
            get_recorder().add_wall(
                "grant", "coordinator",
                grant_start, time.perf_counter() - grant_start,
                {"job": granted.job_id, "worker": worker},
            )
            if self.on_start is not None:
                self.on_start(granted)
        return reply

    def heartbeat(self, job_id: str, worker: str) -> None:
        """Extend a live lease (stale heartbeats are ignored)."""
        with self.lock:
            self.counters["heartbeats"] += 1
            lease = self.leases.get(job_id)
            if lease is not None and lease.worker == worker:
                now = time.monotonic()
                lease.deadline = now + lease.term_s
                self.counters["lease_renewals"] += 1
                interval = max(0.0, now - lease.last_beat)
                lease.last_beat = now
                if self.heartbeat_ewma_s is None:
                    self.heartbeat_ewma_s = interval
                else:
                    self.heartbeat_ewma_s = (
                        0.3 * interval + 0.7 * self.heartbeat_ewma_s
                    )

    def complete(self, job_id: str, outcome: SweepOutcome) -> None:
        """Deliver an outcome exactly once; duplicates are dropped."""
        with self.lock:
            if job_id in self.completed:
                self.counters["duplicates_dropped"] += 1
                self._say(f"dropping duplicate outcome for {job_id}")
                return
            self.completed.add(job_id)
            self.counters["jobs_completed"] += 1
            lease = self.leases.pop(job_id, None)
            if lease is not None:
                self.clock.observe(time.monotonic() - lease.granted_at)
                # Grant→outcome as the coordinator saw it: the wall-clock
                # cost of the whole remote attempt, one span per job.
                get_recorder().add_wall(
                    "job", "job",
                    lease.granted_perf,
                    time.perf_counter() - lease.granted_perf,
                    {"job": job_id, "worker": lease.worker},
                )
            # A late delivery may race a lease-expiry requeue: purge the
            # pending copy so the finished job is never granted again.
            if any(job.job_id == job_id for job in self.pending):
                self.pending = deque(
                    job for job in self.pending if job.job_id != job_id
                )
            self.results.put(outcome)

    def fail_attempt(self, job_id: str, worker: str, reason: str) -> None:
        """Handle one lost/failed attempt: requeue or give up.

        Only the current leaseholder may fail its lease — a stale
        report (the job was already requeued and re-granted to another
        worker) must not cancel the live lease or burn retry budget.
        """
        with self.lock:
            lease = self.leases.get(job_id)
            if lease is None or lease.worker != worker or job_id in self.completed:
                return
            del self.leases[job_id]
            attempts = self.grants.get(job_id, 1)
            if attempts > self.max_retries:
                self.failed = True
                self.results.put(BackendError(
                    f"job {job_id} ({lease.job.label or 'unlabelled'}) failed "
                    f"after {attempts} attempt(s); last worker {worker}: {reason}"
                ))
                return
            self.counters["jobs_requeued"] += 1
            self._say(f"requeueing {job_id} (attempt {attempts} lost: {reason})")
            self.pending.appendleft(lease.job)

    def release_worker(self, worker: str, reason: str) -> None:
        """Requeue every job the departed worker still held."""
        with self.lock:
            held = [job_id for job_id, lease in self.leases.items()
                    if lease.worker == worker]
        for job_id in held:
            self.fail_attempt(job_id, worker, reason)

    def expire_leases(self) -> None:
        """Requeue jobs whose leaseholder stopped heartbeating."""
        now = time.monotonic()
        with self.lock:
            expired = [(job_id, lease.worker)
                       for job_id, lease in self.leases.items()
                       if lease.deadline < now]
            self.counters["lease_expirations"] += len(expired)
        for job_id, worker in expired:
            self.fail_attempt(job_id, worker, "lease expired")

    def absorb_worker_telemetry(self, telemetry: object) -> None:
        """Fold a worker's self-reported counters into the fleet totals.

        Workers attach an optional ``telemetry`` dict to each outcome
        message (absent on protocol-v1 peers that predate it); only the
        keys the coordinator knows are aggregated, so a newer worker
        never breaks an older coordinator.
        """
        if not isinstance(telemetry, dict):
            return
        with self.lock:
            for src, dst in (
                ("jobs_run", "worker_jobs_reported"),
                ("heartbeats_sent", "worker_heartbeats_reported"),
            ):
                value = telemetry.get(src)
                if isinstance(value, int) and not isinstance(value, bool):
                    self.counters[dst] += max(0, value)

    def absorb_worker_spans(self, spans: object) -> None:
        """Fold a worker's wall-clock spans into the coordinator log.

        Workers attach an optional ``spans`` list to each outcome
        message — pull-wait, execute and ship spans on their own
        ``worker:<name>`` tracks — absent on protocol-v1 peers that
        predate it.  Malformed entries are dropped, never raised on,
        exactly like unknown ``telemetry`` keys.
        """
        if not isinstance(spans, list):
            return
        get_recorder().extend(spans)


class DistributedBackend(ExecutionBackend):
    """Coordinator side of the multi-machine job queue.

    Parameters
    ----------
    host / port:
        TCP endpoint to listen on; port ``0`` binds an ephemeral port
        (read it back from :attr:`address` — how the tests wire
        loopback workers).  The socket binds eagerly, so the address
        is printable before the sweep starts.
    lease_s:
        Initial lease term — used until the first job completes, after
        which the term adapts to observed job wall-clock (see
        :class:`LeaseClock` and ``lease_floor_s``/``lease_margin``).
        Workers heartbeat at a third of each grant's term; a job whose
        lease lapses is requeued even if the TCP connection looks open
        (half-open links, hung workers).
    lease_floor_s / lease_margin / lease_cap_s:
        Adaptive-term shape: the term never drops below the floor,
        grants ``lease_margin`` times the job-wall-clock EWMA, and
        never exceeds the cap.
    max_retries:
        Extra grants a job may receive after its first attempt is lost
        before the sweep fails.
    """

    name = "distributed"

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = 0,
        lease_s: float = 15.0,
        max_retries: int = 2,
        log: Optional[LogFn] = None,
        lease_floor_s: float = 2.0,
        lease_margin: float = 4.0,
        lease_cap_s: float = 300.0,
    ):
        if lease_s <= 0:
            raise BackendError(f"lease_s must be positive, got {lease_s}")
        if max_retries < 0:
            raise BackendError(f"max_retries must be >= 0, got {max_retries}")
        self.lease_s = lease_s
        self.clock = LeaseClock(
            initial_s=lease_s,
            floor_s=min(lease_floor_s, lease_s),
            margin=lease_margin,
            cap_s=max(lease_cap_s, lease_s),
        )
        self.max_retries = max_retries
        self.log = log
        self._listener: Optional[socket.socket] = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(16)
        except OSError as exc:
            self._listener.close()
            self._listener = None
            raise BackendError(f"cannot listen on {host}:{port}: {exc}") from None
        self.host, self.port = self._listener.getsockname()[:2]
        self._connections: List[socket.socket] = []
        self._conn_lock = threading.Lock()
        self._last_state: Optional[_State] = None

    @property
    def address(self) -> str:
        """The bound ``HOST:PORT`` workers should connect to."""
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conn_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    def run(
        self, jobs: Sequence[Job], on_start: Optional[StartFn] = None
    ) -> Iterator[SweepOutcome]:
        if self._listener is None:
            raise BackendError("distributed backend already closed (single-use)")
        jobs = list(jobs)
        state = _State(jobs, self.clock, self.max_retries, self.log,
                       on_start=on_start)
        self._last_state = state
        accept = threading.Thread(
            target=self._accept_loop, args=(state,), daemon=True,
            name="repro-coordinator-accept",
        )
        accept.start()
        delivered = 0
        try:
            while delivered < len(jobs):
                state.expire_leases()
                try:
                    item = state.results.get(timeout=0.05)
                except queue.Empty:
                    continue
                if isinstance(item, BaseException):
                    raise item
                yield item
                delivered += 1
        finally:
            state.shutdown.set()
            self.close()

    def telemetry(self) -> dict:
        """Fleet counters from the last run, plus lease/heartbeat gauges."""
        if self._last_state is None:
            return {}
        state = self._last_state
        with state.lock:
            out: dict = dict(state.counters)
            if state.heartbeat_ewma_s is not None:
                out["heartbeat_ewma_s"] = float(state.heartbeat_ewma_s)
        if self.clock.ewma_s is not None:
            out["job_wall_ewma_s"] = float(self.clock.ewma_s)
        out["lease_term_s"] = float(self.clock.term_s)
        return out

    # -- socket threads -------------------------------------------------
    def _accept_loop(self, state: _State) -> None:
        assert self._listener is not None
        listener = self._listener
        while not state.shutdown.is_set():
            try:
                conn, peer = listener.accept()
            except OSError:
                return  # listener closed: sweep over
            with self._conn_lock:
                self._connections.append(conn)
            worker = f"{peer[0]}:{peer[1]}"
            threading.Thread(
                target=self._serve_worker, args=(conn, worker, state),
                daemon=True, name=f"repro-coordinator-{worker}",
            ).start()

    def _serve_worker(self, conn: socket.socket, worker: str, state: _State) -> None:
        reason = "worker disconnected"
        try:
            while True:
                message = recv_message(conn)
                if message is None:
                    break
                kind = message.get("type")
                if kind == "hello":
                    if message.get("protocol") != PROTOCOL_VERSION:
                        send_message(conn, {
                            "type": "shutdown",
                            "error": f"protocol mismatch: coordinator speaks "
                                     f"v{PROTOCOL_VERSION}",
                        })
                        break
                    name = message.get("worker")
                    if name:
                        worker = f"{worker} ({name})"
                    with state.lock:
                        state.counters["workers_connected"] += 1
                    state._say(f"worker connected: {worker}")
                    send_message(conn, {
                        "type": "welcome",
                        "protocol": PROTOCOL_VERSION,
                        "lease_s": state.lease_s,
                    })
                elif kind == "pull":
                    send_message(conn, state.grant(worker))
                elif kind == "heartbeat":
                    state.heartbeat(str(message.get("job_id")), worker)
                elif kind == "outcome":
                    outcome = replace(
                        SweepOutcome.from_dict(message["outcome"]), cached=False
                    )
                    state.absorb_worker_telemetry(message.get("telemetry"))
                    state.absorb_worker_spans(message.get("spans"))
                    state.complete(outcome.job_id, outcome)
                    send_message(conn, {"type": "ok"})
                elif kind == "error":
                    job_id = str(message.get("job_id"))
                    state.fail_attempt(
                        job_id, worker,
                        f"job raised: {message.get('message', 'unknown error')}",
                    )
                    send_message(conn, {"type": "ok"})
                else:
                    raise BackendError(f"unexpected message type {kind!r}")
        except (OSError, ExperimentError, KeyError) as exc:
            reason = f"worker connection error: {exc}"
        finally:
            state.release_worker(worker, reason)
            state._say(f"worker gone: {worker}")
            try:
                conn.close()
            except OSError:
                pass
