"""Single-host backends: in-process serial and process-pool execution.

Both are thin wrappers over :func:`~repro.sweep.engine.run_job` — the
same execution path the distributed workers use — refactored out of
the engine's former inline loop so every strategy satisfies one
:class:`~repro.backends.base.ExecutionBackend` contract.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterator, Optional, Sequence

from repro.errors import BackendError
from repro.backends.base import ExecutionBackend, StartFn
from repro.obs.spans import get_recorder
from repro.sweep.spec import Job
from repro.sweep.store import SweepOutcome


class SerialBackend(ExecutionBackend):
    """Run every job in this process, in submission order.

    No executor, no IPC — the easiest backend to debug or profile, and
    the reference the others must match bit for bit.
    """

    name = "serial"

    def __init__(self):
        self.jobs_run = 0

    def run(
        self, jobs: Sequence[Job], on_start: Optional[StartFn] = None
    ) -> Iterator[SweepOutcome]:
        from repro.sweep.engine import run_job

        spans = get_recorder()
        for job in jobs:
            with spans.wall_span(
                "grant", "coordinator", {"job": job.job_id, "worker": "serial"}
            ):
                if on_start is not None:
                    on_start(job)
            start_s = time.perf_counter()
            with spans.wall_span(
                "execute", "worker:serial", {"job": job.job_id}
            ):
                outcome = run_job(job)
            spans.add_wall(
                "job", "job", start_s, time.perf_counter() - start_s,
                {"job": job.job_id, "worker": "serial"},
            )
            self.jobs_run += 1
            yield outcome

    def telemetry(self) -> dict:
        return {"jobs_run": self.jobs_run}


class ProcessBackend(ExecutionBackend):
    """Fan jobs out over a local :class:`ProcessPoolExecutor`.

    Outcomes are yielded as workers finish them, so incremental store
    persistence and progress reporting see completions immediately.
    ``on_start`` fires at pool submission — the closest observable
    moment to the actual start in another process.
    """

    name = "process"

    def __init__(self, workers: int):
        if workers < 1:
            raise BackendError(f"process backend needs workers >= 1, got {workers}")
        self.workers = workers
        self.jobs_run = 0
        self._pool_size = 0

    def run(
        self, jobs: Sequence[Job], on_start: Optional[StartFn] = None
    ) -> Iterator[SweepOutcome]:
        from repro.sweep.engine import run_job

        if not jobs:
            return
        spans = get_recorder()
        self._pool_size = min(self.workers, len(jobs))
        with ProcessPoolExecutor(max_workers=self._pool_size) as pool:
            remaining = set()
            submitted_at = {}
            job_ids = {}
            submit_order = {}
            for job in jobs:
                with spans.wall_span(
                    "grant", "coordinator",
                    {"job": job.job_id, "worker": "pool"},
                ):
                    if on_start is not None:
                        on_start(job)
                    future = pool.submit(run_job, job)
                remaining.add(future)
                submitted_at[future] = time.perf_counter()
                job_ids[future] = job.job_id
                submit_order[future] = len(submit_order)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                # ``finished`` is a set; its iteration order follows
                # object hashes, not anything reproducible.  Drain each
                # completion batch in submission order so the outcome
                # stream (and the span log riding it) is stable across
                # runs and interpreters.
                for future in sorted(finished, key=submit_order.__getitem__):
                    self.jobs_run += 1
                    # Submit→completion as seen from the coordinator;
                    # the child process's own wall spans stay in the
                    # child (no IPC channel carries them back — only
                    # the deterministic sim spans ride the outcome).
                    spans.add_wall(
                        "job", "job", submitted_at[future],
                        time.perf_counter() - submitted_at[future],
                        {"job": job_ids[future], "worker": "pool"},
                    )
                    yield future.result()

    def telemetry(self) -> dict:
        return {"jobs_run": self.jobs_run, "pool_workers": self._pool_size}
