"""The coordinator/worker wire protocol.

Every message is one length-prefixed JSON object: a 4-byte big-endian
payload length followed by UTF-8 JSON.  Workers initiate every
exchange; the coordinator only ever replies.  The message types:

========== ==================== =======================================
direction  type                 meaning
========== ==================== =======================================
worker →   ``hello``            handshake; carries the protocol version
coord  →   ``welcome``          handshake reply; carries the lease term
worker →   ``pull``             ask for a job
coord  →   ``job``              a job grant (payload: ``Job.to_dict``)
coord  →   ``wait``             queue momentarily empty; poll again
coord  →   ``shutdown``         sweep finished (or aborted); disconnect
worker →   ``heartbeat``        lease keep-alive while a job runs
                                (fire-and-forget: no reply)
worker →   ``outcome``          a finished job (``SweepOutcome.to_dict``)
worker →   ``error``            a job raised in the worker
coord  →   ``ok``               ack for ``outcome`` / ``error``
========== ==================== =======================================

Heartbeats are the one fire-and-forget message, so a worker may send
them from a side thread (under the shared send lock) while its main
thread blocks in ``run_job``; the reply stream then only ever contains
responses to the main thread's requests.

Optional keys are backward-compatible *within* a protocol version:
``outcome`` messages may carry a ``telemetry`` object (per-job worker
counters — see :data:`OUTCOME_TELEMETRY_KEYS`) that older coordinators
ignore and newer coordinators fold into fleet totals.  Any change that
a peer cannot safely ignore still bumps :data:`PROTOCOL_VERSION`.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import BackendError

#: Wire protocol version; bumped on any incompatible framing or
#: message-shape change.  Handshakes reject mismatches outright —
#: a silent cross-version sweep could corrupt results.
PROTOCOL_VERSION = 1

#: Frame header: payload byte length, 4-byte big-endian.
_HEADER = struct.Struct(">I")

#: Upper bound on one message; an outcome is a few KB, so anything
#: near this is a framing error, not data.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Optional per-job counters an ``outcome`` message may attach under
#: its ``telemetry`` key.  Coordinators aggregate only the names they
#: know, so either peer may be the newer one.
OUTCOME_TELEMETRY_KEYS = ("jobs_run", "heartbeats_sent")

#: Default coordinator host when an endpoint omits one.
DEFAULT_HOST = "127.0.0.1"


def parse_endpoint(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or ``:PORT`` for loopback) into a pair."""
    host, sep, port_text = text.strip().rpartition(":")
    if not sep:
        host, port_text = "", text.strip()
    try:
        port = int(port_text)
    except ValueError:
        raise BackendError(
            f"bad endpoint {text!r}: expected HOST:PORT (e.g. 127.0.0.1:7641)"
        ) from None
    if not 0 <= port <= 65535:
        raise BackendError(f"bad endpoint {text!r}: port out of range")
    return host or DEFAULT_HOST, port


def send_message(
    sock: socket.socket,
    message: Dict[str, Any],
    lock: Optional[threading.Lock] = None,
) -> None:
    """Send one framed message (atomically under ``lock`` if given)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    frame = _HEADER.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one framed message; ``None`` on a clean EOF.

    EOF in the middle of a frame — the peer died mid-send — raises
    :class:`BackendError`, as does an oversized or non-object payload.
    """
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise BackendError(
            f"oversized protocol message ({length} bytes); "
            "peer is not speaking the repro sweep protocol"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    assert payload is not None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise BackendError(f"malformed protocol message: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise BackendError("protocol message must be an object with a 'type'")
    return message


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise BackendError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
