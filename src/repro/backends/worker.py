"""The worker side of the distributed backend.

:func:`run_worker` (CLI: ``repro worker --connect HOST:PORT``) connects
to a coordinator, pulls jobs, runs each through the exact same
:func:`~repro.sweep.engine.run_job` path every other backend uses, and
pushes length-prefixed JSON outcomes back.  While a job runs, a side
thread heartbeats the coordinator at a third of the lease term so slow
jobs are not mistaken for dead workers; heartbeats are fire-and-forget,
so the reply stream stays a clean request/response sequence for the
main thread.

Fault injection for the test wall: setting the environment variable
``REPRO_WORKER_CRASH_AFTER_PULL`` makes the worker die abruptly
(``os._exit``) right after accepting a job grant — the deterministic
stand-in for ``kill -9`` mid-run.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Callable, Optional

from repro.errors import BackendError, ReproError
from repro.backends.protocol import (
    PROTOCOL_VERSION,
    parse_endpoint,
    recv_message,
    send_message,
)
from repro.obs.spans import SpanRecorder
from repro.sweep.spec import Job

#: Fault-injection hook (tests/CI only): crash hard after the next grant.
CRASH_ENV_VAR = "REPRO_WORKER_CRASH_AFTER_PULL"

LogFn = Callable[[str], None]


class CoordinatorUnreachable(BackendError):
    """No coordinator answered within the connect-retry window.

    Distinct from other backend faults so ``--serve`` can treat "the
    fleet has drained and nothing new appeared" as a clean exit while
    still surfacing real failures (handshake refusal, protocol
    violations) loudly.
    """


def _log_to_stderr(line: str) -> None:
    sys.stderr.write(line + "\n")
    sys.stderr.flush()


def _connect_with_retry(host: str, port: int, timeout_s: float) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout_s`` elapses.

    Workers may legitimately start before the coordinator binds (CI
    launches them in the background first), so refusals are retried.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise CoordinatorUnreachable(
                    f"cannot reach coordinator at {host}:{port} "
                    f"after {timeout_s:.0f}s: {exc}"
                ) from None
            time.sleep(0.1)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    job_id: str,
    interval_s: float,
    stop: threading.Event,
    sent: list,
) -> None:
    # ``sent`` is a one-cell counter the main thread reads after join()
    # — it rides the outcome message as worker telemetry.
    while not stop.wait(interval_s):
        try:
            send_message(sock, {"type": "heartbeat", "job_id": job_id}, send_lock)
            sent[0] += 1
        except OSError:
            return  # connection gone; the main thread will notice


def run_worker(
    connect: str,
    max_jobs: Optional[int] = None,
    connect_timeout_s: float = 30.0,
    serve: bool = False,
    log: Optional[LogFn] = _log_to_stderr,
) -> int:
    """Serve one coordinator session; returns the number of jobs run.

    Parameters
    ----------
    connect:
        Coordinator ``HOST:PORT``.
    max_jobs:
        Stop after this many completed jobs (``None``: until shutdown).
    connect_timeout_s:
        How long to keep retrying the initial (and, with ``serve``,
        each subsequent) connection.
    serve:
        After a session ends, reconnect and serve the next sweep —
        lets one pool of workers drain the several ``run_sweep`` calls
        an experiment or study session issues — until no coordinator
        appears within ``connect_timeout_s``.
    """
    total = 0
    while True:
        remaining = None if max_jobs is None else max_jobs - total
        try:
            total += _serve_session(connect, remaining, connect_timeout_s, log)
        except CoordinatorUnreachable:
            if serve:
                return total  # no coordinator reappeared: done serving
            raise
        if not serve or (max_jobs is not None and total >= max_jobs):
            return total
        time.sleep(0.2)  # let the finished coordinator unbind before redialing


def _serve_session(
    connect: str,
    max_jobs: Optional[int],
    connect_timeout_s: float,
    log: Optional[LogFn],
) -> int:
    host, port = parse_endpoint(connect)
    sock = _connect_with_retry(host, port, connect_timeout_s)
    send_lock = threading.Lock()
    completed = 0
    worker_name = f"{socket.gethostname()}:{os.getpid()}"
    # Per-job wall spans (pull-wait, execute, ship) ride each outcome
    # message as the optional ``spans`` key — protocol-compatible the
    # way ``telemetry`` is, and disabled by REPRO_OBS_SPANS=off on the
    # worker side (the message then simply omits the key, which is also
    # what a pre-spans peer looks like to the coordinator).
    span_track = f"worker:{worker_name}"

    def say(line: str) -> None:
        if log is not None:
            log(line)

    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Replies always follow requests promptly; block without the
        # connect-phase timeout so a long "wait" poll cycle never trips.
        sock.settimeout(None)
        send_message(sock, {
            "type": "hello",
            "worker": worker_name,
            "protocol": PROTOCOL_VERSION,
        }, send_lock)
        welcome = recv_message(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise BackendError(
                f"coordinator at {host}:{port} refused the handshake: "
                f"{(welcome or {}).get('error', 'connection closed')}"
            )
        lease_s = float(welcome.get("lease_s", 15.0))
        say(f"worker: connected to {host}:{port} (lease {lease_s:g}s)")

        pull_start: Optional[float] = None
        while max_jobs is None or completed < max_jobs:
            try:
                if pull_start is None:
                    pull_start = time.perf_counter()
                send_message(sock, {"type": "pull"}, send_lock)
                reply = recv_message(sock)
            except (OSError, BackendError):
                # The coordinator tears connections down when the sweep
                # completes (or it died); either way this session is over
                # — the coordinator's lease bookkeeping, not the worker,
                # decides the fate of any in-flight job.
                say("worker: coordinator connection closed")
                break
            if reply is None or reply.get("type") == "shutdown":
                break
            if reply.get("type") == "wait":
                time.sleep(float(reply.get("poll_s", 0.2)))
                continue
            if reply.get("type") != "job":
                raise BackendError(f"unexpected coordinator reply: {reply!r}")
            job = Job.from_dict(reply["job"])
            job_spans = SpanRecorder()
            job_spans.add_wall(
                "pull", span_track,
                pull_start, time.perf_counter() - pull_start,
                {"job": job.job_id},
            )
            pull_start = None
            if os.environ.get(CRASH_ENV_VAR):
                os._exit(17)  # fault injection: die holding the lease

            # The lease term is per-grant (the coordinator adapts it to
            # observed job length); heartbeat at a third of *this*
            # grant's term so a shrunken lease is still kept alive.
            grant_lease_s = float(reply.get("lease_s", lease_s))
            heartbeat_s = max(grant_lease_s / 3.0, 0.2)
            stop = threading.Event()
            beats = [0]
            heartbeat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, send_lock, job.job_id, heartbeat_s, stop, beats),
                daemon=True, name="repro-worker-heartbeat",
            )
            heartbeat.start()
            try:
                from repro.sweep.engine import run_job

                with job_spans.wall_span(
                    "execute", span_track, {"job": job.job_id}
                ):
                    outcome = run_job(job)
            except ReproError as exc:
                stop.set()
                heartbeat.join()
                say(f"worker: job {job.label or job.job_id} raised: {exc}")
                try:
                    send_message(sock, {
                        "type": "error", "job_id": job.job_id, "message": str(exc),
                    }, send_lock)
                    recv_message(sock)  # ok
                except (OSError, BackendError):
                    say("worker: coordinator connection closed")
                    break
                continue
            stop.set()
            heartbeat.join()
            try:
                # ``telemetry`` carries per-job deltas the coordinator
                # sums into fleet totals; the key is optional within
                # protocol v1, so older coordinators simply ignore it.
                # ``spans`` likewise.  The ship span times outcome
                # serialization — the send that carries it cannot ride
                # the message it would be timing.
                ship_start = time.perf_counter()
                payload = outcome.to_dict()
                job_spans.add_wall(
                    "ship", span_track,
                    ship_start, time.perf_counter() - ship_start,
                    {"job": job.job_id},
                )
                message = {
                    "type": "outcome",
                    "job_id": outcome.job_id,
                    "outcome": payload,
                    "telemetry": {
                        "jobs_run": 1,
                        "heartbeats_sent": beats[0],
                    },
                }
                if len(job_spans):
                    message["spans"] = job_spans.records()
                send_message(sock, message, send_lock)
                recv_message(sock)  # ok
            except (OSError, BackendError):
                # Delivery unconfirmed: the coordinator (if alive) will
                # requeue the lease; a completed duplicate is dropped
                # on its side, so breaking here never double-counts.
                say("worker: coordinator connection closed")
                break
            completed += 1
            say(f"worker: finished {job.label or job.job_id} "
                f"({completed} this session)")
    finally:
        try:
            sock.close()
        except OSError:
            pass
    say(f"worker: session over after {completed} job(s)")
    return completed
