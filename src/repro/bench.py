"""The per-run observation benchmark: what does checking a trace cost?

The paper's premise is that checker overhead bounds how much design
space a study can explore — simulation-time (online) checking is only
worth it if it is cheap.  This harness measures exactly that, per
catalog scenario, and writes the machine-readable ``BENCH_run.json``
artifact CI tracks run over run:

* **run wall-clock** — the same configuration simulated three ways:
  unobserved (no subscribers: the bus binds no-op emitters), with the
  interpretive checking path (``REPRO_LOC_MONITOR=interpreted``
  semantics: wildcard sinks, per-event :class:`TraceEvent` allocation,
  AST-walking evaluator) and with compiled monitors (the default:
  tuple rows on the :class:`~repro.trace.bus.TraceBus`, ring-buffer
  closures);
* **checking-path throughput** — the scenario's captured trace replayed
  through both checking paths at volume, yielding events/sec through
  the observation layer alone.  This is the headline number: the
  simulation itself is identical across modes, so the replay isolates
  what one observed event costs;
* **equivalence** — every benchmarked run asserts that compiled and
  interpreted monitors produced identical check results and
  distributions, so the artifact doubles as a correctness regression
  guard.

Monitors under test are the real workload: the paper's power and
throughput distribution formulas plus the study engine's derived LOC
gates for the scenario.

Entry points: :func:`run_bench` (library),
:meth:`repro.api.Session.bench_run` (session facade) and ``repro
bench`` on the CLI (which also applies the soft regression gate via
:func:`compare_bench`).
"""

from __future__ import annotations

import cProfile
import gc
import heapq
import json
import math
import os
import pstats
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.errors import ExperimentError
from repro.experiments.common import (
    EXPERIMENT_SEED,
    cycles_for,
    span_for,
)
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.builtin import (
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.checker import build_checker
from repro.loc.monitor import build_monitor
from repro.obs.spans import OBS_SPANS_ENV_VAR
from repro.runner import SimulationRun
from repro.scenarios import get_scenario, list_scenarios
from repro.studies.spec import StudySpec
from repro.trace.buffer import TraceBuffer
from repro.trace.bus import OBS_COUNTERS_ENV_VAR
from repro.trace.events import TraceEvent

#: Default scenario subset: one surge, one attack, one steady-saturation
#: workload — diverse shapes without paying for the whole catalog.
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "flash_crowd",
    "ddos_min64",
    "saturation_stress",
)

#: Observation modes benchmarked per scenario, in artifact order.
MODES: Tuple[str, ...] = ("no_checkers", "interpreted", "compiled")

#: Iterations of the host-calibration spin loop (see
#: :func:`host_calibration`).  Fixed, so every artifact's score measures
#: the same synthetic work.
CALIBRATION_OPS = 120_000


def _calibration_spin() -> int:
    """The fixed synthetic workload: integer arithmetic + heap churn.

    Shaped like the kernel hot loop (tuple heap pushes/pops dominate the
    simulator), deterministic, and returns a checksum so the interpreter
    cannot elide any of it.
    """
    heap: List[Tuple[int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    acc = 0
    for i in range(CALIBRATION_OPS):
        acc = (acc * 33 + i) % 1_000_003
        push(heap, (acc, i))
        if len(heap) > 64:
            acc += pop(heap)[1]
    return acc


def host_calibration(repeats: int = 5) -> Dict:
    """Score this host against the fixed spin loop; stamped per artifact.

    ``ops_per_s`` (best-of-N, minimum-wall estimator like every other
    bench number) is the host-speed scalar: the regression gate divides
    the two artifacts' scores to compare *calibrated* ratios, so a
    baseline recorded on a fast runner does not read as a regression on
    a slow one (and vice versa).
    """
    best: Optional[float] = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        _calibration_spin()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    assert best is not None
    return {
        "spin_ops": CALIBRATION_OPS,
        "spin_best_s": round(best, 6),
        "ops_per_s": round(CALIBRATION_OPS / best, 1) if best > 0 else None,
    }


def calibration_ratio(baseline: Dict, current: Dict) -> float:
    """Current host speed over baseline host speed (1.0 when unstamped).

    Artifacts written before the calibration stamp existed compare at
    ratio 1.0 — the uncalibrated behaviour.
    """
    old = baseline.get("host", {}).get("ops_per_s")
    new = current.get("host", {}).get("ops_per_s")
    if not old or not new:
        return 1.0
    return new / old


def bench_formulas(scenario_name: str, span: int) -> List:
    """The monitored formulas for one scenario: a real job's load.

    The paper's formulas (2)/(3) distributions plus the study engine's
    derived LOC gates for the scenario — exactly what a study job
    attaches.
    """
    spec = StudySpec(span=span)
    gates = [a.formula for a in spec.assertions_for(get_scenario(scenario_name))]
    return [
        power_distribution_formula(span=span),
        throughput_distribution_formula(span=span),
        *gates,
    ]


def bench_config(scenario_name: str, profile: str) -> RunConfig:
    """The benchmarked configuration for one scenario."""
    return RunConfig(
        benchmark="ipfwdr",
        duration_cycles=cycles_for(profile),
        seed=EXPERIMENT_SEED,
        traffic=TrafficConfig.for_scenario(scenario_name),
        dvs=DvsConfig(policy="tdvs"),
    )


def _timed_run(
    config: RunConfig,
    monitors: Sequence = (),
    sinks: Sequence = (),
    fuse: Optional[bool] = None,
):
    """One simulation; returns (wall_s, RunResult).

    Collects garbage before timing and pauses automatic collection for
    the duration of the run — the discipline ``timeit`` applies — so a
    generational sweep triggered by a *previous* run's garbage cannot
    land inside this run's timed region.  Those pauses were the largest
    single source of repeat-to-repeat spread in the fused-vs-unfused
    A/B pairs.
    """
    run = SimulationRun(config, sinks=sinks, monitors=monitors, fuse=fuse)
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    try:
        result = run.run()
    finally:
        wall = time.perf_counter() - start
        if was_enabled:
            gc.enable()
    return wall, result


def _event_count(result) -> int:
    """Primary trace events a run offers: one ``fifo`` per enqueued
    packet plus one ``forward`` per transmitted packet (deterministic
    per config, independent of who observes)."""
    totals = result.totals
    enqueued = totals.offered_packets - totals.rx_dropped
    return totals.forwarded_packets + enqueued


def _replay_interpreted(trace, formulas, repeat: int) -> float:
    """Replay through the legacy path: TraceEvent per event, wildcard sinks."""
    sinks = [
        build_checker(f) if isinstance(f, str) else DistributionAnalyzer(f)
        for f in formulas
    ]
    start = time.perf_counter()
    for _ in range(repeat):
        for name, row in trace:
            event = TraceEvent(name, *row)
            for sink in sinks:
                sink.emit(event)
    return time.perf_counter() - start


def _replay_compiled(trace, formulas, repeat: int) -> float:
    """Replay through the bus fast path: per-name tuple handlers."""
    monitors = [build_monitor(f, mode="compiled") for f in formulas]
    handlers: Dict[str, List[Callable]] = {}
    for monitor in monitors:
        if not monitor.compiled:  # pragma: no cover - bench formulas compile
            raise ExperimentError(
                f"bench formula {monitor.formula.unparse()!r} did not compile"
            )
        handlers.setdefault(monitor.event, []).append(monitor._feed)
    start = time.perf_counter()
    for _ in range(repeat):
        for name, row in trace:
            feeds = handlers.get(name)
            if feeds is not None:
                for feed in feeds:
                    feed(row)
    return time.perf_counter() - start


def _wall_stats(samples: Sequence[float]) -> Dict:
    """Best/mean/stddev over one mode's repeat samples.

    Population stddev — the repeats are the whole measurement, not a
    sample from a larger draw.  ``best_s`` is the gate-friendly number
    (minimum wall = least scheduler noise); the spread quantifies how
    trustworthy a single-run comparison would have been.
    """
    best = min(samples)
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return {
        "best_s": round(best, 4),
        "mean_s": round(mean, 4),
        "stddev_s": round(math.sqrt(variance), 4),
        "samples": len(samples),
    }


def _best_compiled_wall_with_env_off(
    env_var: str, config: RunConfig, formulas: Sequence, repeats: int
) -> Optional[float]:
    """Best compiled-mode wall with one observability lane disabled.

    Saves/sets/restores ``env_var`` around the reruns so the rest of
    the bench (and the calling process) keeps its configuration.
    """
    saved = os.environ.get(env_var)
    os.environ[env_var] = "off"
    try:
        best = None
        for _ in range(max(1, repeats)):
            monitors = [build_monitor(f, mode="compiled") for f in formulas]
            wall, _result = _timed_run(config, monitors=monitors)
            best = wall if best is None else min(best, wall)
    finally:
        if saved is None:
            del os.environ[env_var]
        else:
            os.environ[env_var] = saved
    return best


def _results_identical(compiled_monitors, interpreted_monitors) -> bool:
    """Compare finished results across modes (dict/equality forms)."""
    for compiled, interpreted in zip(compiled_monitors, interpreted_monitors):
        a, b = compiled.finish(), interpreted.finish()
        if hasattr(a, "to_dict"):
            if a.to_dict() != b.to_dict():
                return False
        elif a != b:
            return False
    return True


def bench_scenario(
    scenario_name: str,
    profile: str = "bench",
    repeats: int = 3,
    replay_target_events: int = 100_000,
) -> Dict:
    """Benchmark one scenario; returns its artifact entry."""
    config = bench_config(scenario_name, profile)
    span = span_for(profile)
    formulas = bench_formulas(scenario_name, span)

    # Capture the trace once (also the interpreted-mode result anchor).
    buffer = TraceBuffer()
    capture_monitors = [build_monitor(f, mode="interpreted") for f in formulas]
    _, capture_result = _timed_run(
        config, monitors=capture_monitors, sinks=[buffer]
    )
    trace = [(e.name, e.as_tuple()[1:]) for e in buffer.events]
    events = _event_count(capture_result)

    # Whole-run wall clock per observation mode.  Every repeat sample is
    # kept: ``walls`` (and the gate) use the best-of-N minimum, while the
    # per-mode stddev lands in the artifact so a reader can tell a real
    # regression from scheduler noise.
    walls: Dict[str, float] = {}
    wall_stats: Dict[str, Dict] = {}
    compiled_monitors: List = []
    for mode in MODES:
        samples: List[float] = []
        for _ in range(max(1, repeats)):
            if mode == "no_checkers":
                wall, result = _timed_run(config)
            else:
                monitors = [
                    build_monitor(
                        f,
                        mode="interpreted" if mode == "interpreted" else "compiled",
                    )
                    for f in formulas
                ]
                wall, result = _timed_run(config, monitors=monitors)
                if mode == "compiled":
                    compiled_monitors = monitors
            if _event_count(result) != events:
                raise ExperimentError(
                    f"{scenario_name}: event count changed under observation "
                    f"({_event_count(result)} != {events}) — the bus must "
                    "not perturb the simulation"
                )
            samples.append(wall)
        walls[mode] = min(samples)
        wall_stats[mode] = _wall_stats(samples)

    # Counter overhead: the per-channel observation counters default
    # on, so ``walls["compiled"]`` already pays them; rerun the same
    # compiled configuration with ``REPRO_OBS_COUNTERS=off`` to price
    # exactly what the counters add.
    uncounted = _best_compiled_wall_with_env_off(
        OBS_COUNTERS_ENV_VAR, config, formulas, repeats
    )
    counter_overhead_pct = (
        round(100.0 * (walls["compiled"] / uncounted - 1.0), 2)
        if uncounted and uncounted > 0
        else None
    )

    # Span overhead, same shape: ``walls["compiled"]`` pays the
    # end-of-run kernel-phase span capture (``REPRO_OBS_SPANS`` defaults
    # on); rerun with it off to price what the spans add.  The capture
    # is a run-end snapshot, never per-event, so this should sit in the
    # noise floor — the artifact records it to prove that.
    unspanned = _best_compiled_wall_with_env_off(
        OBS_SPANS_ENV_VAR, config, formulas, repeats
    )
    span_overhead_pct = (
        round(100.0 * (walls["compiled"] / unspanned - 1.0), 2)
        if unspanned and unspanned > 0
        else None
    )

    if not _results_identical(compiled_monitors, capture_monitors):
        raise ExperimentError(
            f"{scenario_name}: compiled and interpreted monitors disagree — "
            "run the differential wall (tests/test_monitors.py)"
        )

    # Fused vs unfused kernel throughput: the same unobserved run A/B'd
    # with compute fusion forced on and off.  Fusion is byte-identical
    # by design, so any difference here is pure event-loop speed — and
    # fused losing anywhere is a regression the CI lane hard-fails on
    # (see :func:`fusion_regressions`).  Samples interleave so slow
    # drift (thermal, noisy neighbours) hits both sides equally.
    fused_samples: List[float] = []
    unfused_samples: List[float] = []
    _timed_run(config, fuse=True)  # untimed warmup eats first-run effects
    pair = ((True, fused_samples), (False, unfused_samples))
    for rep in range(max(1, repeats)):
        # Alternate which side samples first so position bias (allocator
        # and cache state left by the previous run) averages out.
        for fuse, samples in (pair if rep % 2 == 0 else pair[::-1]):
            wall, result = _timed_run(config, fuse=fuse)
            if _event_count(result) != events:
                raise ExperimentError(
                    f"{scenario_name}: event count changed under "
                    f"fuse={fuse} ({_event_count(result)} != {events}) — "
                    "fusion must not perturb the simulation"
                )
            samples.append(wall)
    fused_best = min(fused_samples)
    unfused_best = min(unfused_samples)
    # Per-repeat paired speedups: each pair ran back to back, so a load
    # step or frequency drift hits both sides of a pair roughly equally
    # and divides out — the gate trusts the paired median over the
    # global minima, which a spike during one side's samples can skew.
    paired_speedups = [
        round(unfused / fused, 4)
        for fused, unfused in zip(fused_samples, unfused_samples)
        if fused > 0
    ]

    # Checking-path throughput: replay the captured trace at volume,
    # best wall-clock over ``repeats`` measurements (replay timings are
    # short; the minimum is the least noisy estimator).
    repeat = max(1, -(-replay_target_events // max(1, len(trace))))
    replayed = len(trace) * repeat
    interpreted_s = min(
        _replay_interpreted(trace, formulas, repeat)
        for _ in range(max(1, repeats))
    )
    compiled_s = min(
        _replay_compiled(trace, formulas, repeat) for _ in range(max(1, repeats))
    )

    return {
        "events": events,
        "trace_events": len(trace),
        "duration_cycles": config.duration_cycles,
        "run_wall_s": {mode: round(walls[mode], 4) for mode in MODES},
        "run_wall_stats": wall_stats,
        "run_events_per_s": {
            mode: round(events / walls[mode], 1) if walls[mode] > 0 else None
            for mode in MODES
        },
        "counters": {
            "compiled_counted_s": round(walls["compiled"], 4),
            "compiled_uncounted_s": round(uncounted, 4) if uncounted else None,
            "overhead_pct": counter_overhead_pct,
        },
        "spans": {
            "compiled_with_spans_s": round(walls["compiled"], 4),
            "compiled_no_spans_s": round(unspanned, 4) if unspanned else None,
            "overhead_pct": span_overhead_pct,
        },
        "fusion": {
            "fused_events_per_s": round(events / fused_best, 1)
            if fused_best > 0
            else None,
            "unfused_events_per_s": round(events / unfused_best, 1)
            if unfused_best > 0
            else None,
            "speedup": round(unfused_best / fused_best, 3)
            if fused_best > 0
            else None,
            "paired_speedups": paired_speedups,
            "fused_wall_stats": _wall_stats(fused_samples),
            "unfused_wall_stats": _wall_stats(unfused_samples),
        },
        "checking": {
            "replayed_events": replayed,
            "interpreted": {
                "wall_s": round(interpreted_s, 4),
                "events_per_s": round(replayed / interpreted_s, 1)
                if interpreted_s > 0
                else None,
            },
            "compiled": {
                "wall_s": round(compiled_s, 4),
                "events_per_s": round(replayed / compiled_s, 1)
                if compiled_s > 0
                else None,
            },
            "speedup": round(interpreted_s / compiled_s, 2)
            if compiled_s > 0
            else None,
        },
        "results_identical": True,
    }


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    profile: str = "bench",
    repeats: int = 3,
    replay_target_events: int = 100_000,
    progress: Optional[Callable[[str, Dict], None]] = None,
) -> Dict:
    """Run the per-run observation benchmark; returns the artifact dict.

    ``scenarios`` defaults to :data:`DEFAULT_SCENARIOS`; pass ``["all"]``
    for the whole catalog.  ``progress(scenario_name, entry)`` fires as
    each scenario completes.
    """
    names = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    if names == ["all"]:
        names = list(list_scenarios())
    for name in names:
        get_scenario(name)  # raise early on unknown names

    entries: Dict[str, Dict] = {}
    for name in names:
        entry = bench_scenario(
            name,
            profile=profile,
            repeats=repeats,
            replay_target_events=replay_target_events,
        )
        entries[name] = entry
        if progress is not None:
            progress(name, entry)

    interp_s = sum(e["checking"]["interpreted"]["wall_s"] for e in entries.values())
    comp_s = sum(e["checking"]["compiled"]["wall_s"] for e in entries.values())
    replayed = sum(e["checking"]["replayed_events"] for e in entries.values())
    run_interp = sum(e["run_wall_s"]["interpreted"] for e in entries.values())
    run_comp = sum(e["run_wall_s"]["compiled"] for e in entries.values())
    counted_s = sum(e["counters"]["compiled_counted_s"] for e in entries.values())
    uncounted_s = sum(
        e["counters"]["compiled_uncounted_s"] or 0.0 for e in entries.values()
    )
    spanned_s = sum(e["spans"]["compiled_with_spans_s"] for e in entries.values())
    unspanned_s = sum(
        e["spans"]["compiled_no_spans_s"] or 0.0 for e in entries.values()
    )
    fusion_ratios = [
        e["fusion"]["speedup"]
        for e in entries.values()
        if e.get("fusion", {}).get("speedup")
    ]
    fusion_geomean = (
        round(
            math.exp(
                sum(math.log(r) for r in fusion_ratios) / len(fusion_ratios)
            ),
            3,
        )
        if fusion_ratios
        else None
    )
    return {
        "bench": "run",
        "profile": profile,
        "span": span_for(profile),
        "repeats": repeats,
        # Host-speed stamp: lets the regression gate compare calibrated
        # ratios across runners (see :func:`calibration_ratio`).
        "host": host_calibration(),
        "scenarios": entries,
        "totals": {
            "replayed_events": replayed,
            "events_per_s_checking": {
                "interpreted": round(replayed / interp_s, 1) if interp_s > 0 else None,
                "compiled": round(replayed / comp_s, 1) if comp_s > 0 else None,
            },
            # The headline: events/sec through the checking path,
            # compiled monitors over the interpreted baseline.
            "speedup_compiled_vs_interpreted": round(interp_s / comp_s, 2)
            if comp_s > 0
            else None,
            "run_speedup_with_checkers": round(run_interp / run_comp, 3)
            if run_comp > 0
            else None,
            # Cost of the default-on per-channel observation counters
            # (compiled whole-run wall, counted vs REPRO_OBS_COUNTERS=off).
            "counter_overhead_pct": round(
                100.0 * (counted_s / uncounted_s - 1.0), 2
            )
            if uncounted_s > 0
            else None,
            # Cost of the default-on run-timeline spans (compiled
            # whole-run wall, spans on vs REPRO_OBS_SPANS=off).
            "span_overhead_pct": round(
                100.0 * (spanned_s / unspanned_s - 1.0), 2
            )
            if unspanned_s > 0
            else None,
            # Whole-run kernel speed with compute fusion on vs off
            # (unobserved runs; must never dip below ~1.0 — see
            # :func:`fusion_regressions`).
            "fusion_geomean_speedup": fusion_geomean,
        },
    }


#: Minimum relative slack for the fused-vs-unfused gate.  Best-of-N
#: minima still jitter by a few percent run to run (and a single-repeat
#: lane measures no spread at all), so the gate never tightens below
#: this floor — wide enough to absorb scheduler noise, narrow enough to
#: catch a real per-part regression like the pre-relay fusion scheme.
FUSION_SLACK_FLOOR = 0.05


def fusion_regressions(data: Dict) -> List[str]:
    """Hard gate: scenarios where the fused kernel ran slower than unfused.

    Fusion is byte-identical and exists purely for speed, so losing to
    the unfused path anywhere is a defect, not a trade-off.  The gate is
    noise-aware the same way :func:`compare_bench` is.  Two estimators
    of the true speedup are computed — the *ratio of best-of-N minima*
    (skewed only by a load spike covering every sample on one side) and
    the *median of the per-repeat paired speedups* (each pair ran back
    to back, so a load step divides out of the ratio; skewed only by an
    episode spanning most pairs asymmetrically).  Their noise failure
    modes are disjoint while a real slowdown depresses both, so the
    gate judges the more favorable of the two.  The comparison widens
    by the larger side's relative repeat spread (never below
    :data:`FUSION_SLACK_FLOOR`) so one noisy sample cannot fail a lane.
    Single-repeat runs (smoke lanes) are never gated — one sample per
    side measures jitter, not fusion — the gate needs at least two.
    Returns message strings; empty means fused held up everywhere.
    """

    def rel_noise(stats: Dict) -> float:
        best = stats.get("best_s")
        stddev = stats.get("stddev_s")
        if not best or stddev is None:
            return 0.0
        return stddev / best

    messages: List[str] = []
    for name, entry in sorted(data.get("scenarios", {}).items()):
        fusion = entry.get("fusion", {})
        fused = fusion.get("fused_events_per_s")
        unfused = fusion.get("unfused_events_per_s")
        if not fused or not unfused:
            continue
        samples = min(
            fusion.get("fused_wall_stats", {}).get("samples", 0),
            fusion.get("unfused_wall_stats", {}).get("samples", 0),
        )
        if samples < 2:
            continue
        slack = max(
            FUSION_SLACK_FLOOR,
            rel_noise(fusion.get("fused_wall_stats", {})),
            rel_noise(fusion.get("unfused_wall_stats", {})),
        )
        estimates = [fused / unfused]
        paired = fusion.get("paired_speedups")
        if paired:
            estimates.append(sorted(paired)[len(paired) // 2])
        observed = max(estimates)
        if observed < 1.0 - slack:
            drop = 100.0 * (1.0 - observed)
            messages.append(
                f"{name}: fused kernel slower than unfused by {drop:.1f}% "
                f"({fused:,.0f} vs {unfused:,.0f} events/s best-of-N)"
            )
    return messages


def render_bench_text(data: Dict) -> str:
    """Human-readable report of a :func:`run_bench` artifact."""
    lines = [
        f"per-run observation bench (profile={data['profile']}, "
        f"span={data['span']}, repeats={data['repeats']})",
        f"{'scenario':18s} {'events':>7s} {'no-chk(s)':>10s} {'interp(s)':>10s} "
        f"{'compiled(s)':>11s} {'check ev/s int':>14s} {'check ev/s comp':>15s} "
        f"{'speedup':>8s}",
    ]
    for name, entry in data["scenarios"].items():
        checking = entry["checking"]
        lines.append(
            f"{name:18s} {entry['events']:7d} "
            f"{entry['run_wall_s']['no_checkers']:10.3f} "
            f"{entry['run_wall_s']['interpreted']:10.3f} "
            f"{entry['run_wall_s']['compiled']:11.3f} "
            f"{checking['interpreted']['events_per_s']:14,.0f} "
            f"{checking['compiled']['events_per_s']:15,.0f} "
            f"{checking['speedup']:7.1f}x"
        )
    totals = data["totals"]
    lines.append(
        f"checking path: {totals['events_per_s_checking']['interpreted']:,.0f} -> "
        f"{totals['events_per_s_checking']['compiled']:,.0f} events/s "
        f"({totals['speedup_compiled_vs_interpreted']:.1f}x compiled vs "
        f"interpreted); whole-run speedup with checkers attached: "
        f"{totals['run_speedup_with_checkers']:.2f}x"
    )
    overhead = totals.get("counter_overhead_pct")
    if overhead is not None:
        lines.append(
            f"observation counters (default on): {overhead:+.1f}% whole-run "
            f"wall vs REPRO_OBS_COUNTERS=off"
        )
    span_overhead = totals.get("span_overhead_pct")
    if span_overhead is not None:
        lines.append(
            f"run-timeline spans (default on): {span_overhead:+.1f}% "
            f"whole-run wall vs REPRO_OBS_SPANS=off"
        )
    fusion_geomean = totals.get("fusion_geomean_speedup")
    if fusion_geomean is not None:
        lines.append(
            f"compute fusion (default on): {fusion_geomean:.2f}x geomean "
            f"whole-run kernel speed vs unfused"
        )
    host = data.get("host", {})
    if host.get("ops_per_s"):
        lines.append(
            f"host calibration: {host['ops_per_s']:,.0f} spin ops/s "
            f"(stamped for cross-host gate calibration)"
        )
    return "\n".join(lines)


def compare_bench(
    baseline: Dict, current: Dict, tolerance: float = 0.20
) -> List[str]:
    """Regression gate: messages when events/sec fell > ``tolerance``.

    Compares the checking-path events/sec totals (both modes), each
    scenario's compiled checking throughput, and each scenario's
    whole-run kernel throughput (``run_events_per_s``, compiled mode)
    against a previous artifact.  Every compared number is best-of-N
    (the repeat minimum), and the whole-run gate is noise-aware: when
    both artifacts carry ``run_wall_stats``, the tolerance widens by
    the larger side's relative stddev, so a noisy machine produces a
    wider gate instead of a flaky one.

    When both artifacts carry a ``host`` calibration stamp (see
    :func:`host_calibration`), the baseline numbers are rescaled by the
    hosts' spin-loop speed ratio before comparison, so a baseline
    committed from a fast runner does not read as a regression on a
    slow one.  Unstamped artifacts compare uncalibrated (ratio 1.0).

    Returns message strings; empty means no regression beyond the
    tolerance.  Whether a non-empty list is a warning or a failure is
    the caller's policy (``repro bench`` defaults to warn;
    ``--regress-fail`` promotes it)."""
    warnings: List[str] = []
    cal = calibration_ratio(baseline, current)

    def check(label: str, old_value, new_value, extra_slack: float = 0.0) -> None:
        if not old_value or not new_value:
            return
        expected = old_value * cal
        if new_value < expected * (1.0 - tolerance - extra_slack):
            drop = 100.0 * (1.0 - new_value / expected)
            warnings.append(
                f"{label}: events/sec regressed {drop:.0f}% "
                f"({expected:,.0f} calibrated -> {new_value:,.0f})"
            )

    def run_noise(entry: Dict) -> float:
        """Relative repeat spread of the compiled whole-run wall."""
        stats = entry.get("run_wall_stats", {}).get("compiled", {})
        best = stats.get("best_s")
        stddev = stats.get("stddev_s")
        if not best or stddev is None:
            return 0.0
        return stddev / best

    old_totals = baseline.get("totals", {}).get("events_per_s_checking", {})
    new_totals = current.get("totals", {}).get("events_per_s_checking", {})
    for mode in ("interpreted", "compiled"):
        check(f"totals.{mode}", old_totals.get(mode), new_totals.get(mode))
    # Walk the union of scenario keys: a scenario present on only one
    # side (the default subset changed, or the catalog gained/lost an
    # entry) is a note, not a crash — the numeric gate only applies
    # where both artifacts measured the same thing.
    old_scenarios = baseline.get("scenarios", {})
    new_scenarios = current.get("scenarios", {})
    for name in sorted(set(old_scenarios) | set(new_scenarios)):
        if name not in new_scenarios:
            warnings.append(
                f"{name}: in baseline but not current run; skipping comparison"
            )
            continue
        if name not in old_scenarios:
            warnings.append(
                f"{name}: in current run but not baseline; skipping comparison"
            )
            continue
        # .get chains: a schema-drifted artifact skips the comparison
        # rather than failing the gate.
        check(
            f"{name}.compiled",
            old_scenarios[name].get("checking", {}).get("compiled", {})
            .get("events_per_s"),
            new_scenarios[name].get("checking", {}).get("compiled", {})
            .get("events_per_s"),
        )
        check(
            f"{name}.run.compiled",
            old_scenarios[name].get("run_events_per_s", {}).get("compiled"),
            new_scenarios[name].get("run_events_per_s", {}).get("compiled"),
            extra_slack=max(
                run_noise(old_scenarios[name]), run_noise(new_scenarios[name])
            ),
        )
    return warnings


def kernel_gain(baseline: Dict, current: Dict) -> Dict:
    """Whole-run kernel throughput vs a baseline artifact.

    Ratios of compiled-mode ``run_events_per_s`` per scenario (packets
    through the simulation per wall second — the kernel-speed number,
    as opposed to the checking-path replay throughput), over the
    scenarios both artifacts measured.  The geometric mean is the
    headline; ``min_speedup`` is the gate-friendly floor.  When both
    artifacts carry a host-calibration stamp, ``calibrated_geomean``
    normalizes away the host-speed difference — the number to hold
    against a speedup target across different runners.
    """
    entries: Dict[str, Dict] = {}
    old_scenarios = baseline.get("scenarios", {})
    new_scenarios = current.get("scenarios", {})
    for name in sorted(set(old_scenarios) & set(new_scenarios)):
        old = old_scenarios[name].get("run_events_per_s", {}).get("compiled")
        new = new_scenarios[name].get("run_events_per_s", {}).get("compiled")
        if not old or not new:
            continue
        entries[name] = {
            "baseline": old,
            "current": new,
            "speedup": round(new / old, 3),
        }
    ratios = [e["speedup"] for e in entries.values()]
    geomean = (
        round(math.exp(sum(math.log(r) for r in ratios) / len(ratios)), 3)
        if ratios
        else None
    )
    cal = calibration_ratio(baseline, current)
    return {
        "scenarios": entries,
        "min_speedup": min(ratios) if ratios else None,
        "geomean_speedup": geomean,
        "calibration_ratio": round(cal, 3),
        "calibrated_geomean": round(geomean / cal, 3)
        if geomean is not None and cal > 0
        else None,
    }


def _readable_name(name: str) -> str:
    """Human attribution for one profile frame.

    cProfile records the code object's qualname (bare name before
    py3.11), so nested closures arrive as ``build_monitor.<locals>.feed``
    and anonymous code as ``<lambda>``/``<genexpr>``.  The table and the
    collapsed stacks should read as code the reader can find: the
    ``<locals>`` hop is dropped and anonymous frames keep a stable
    printable form (the ``file:line`` part of the label is what locates
    them).
    """
    name = name.replace(".<locals>", "")
    if name.startswith("<") and name.endswith(">"):
        name = name[1:-1]
    return name


def _frame_label(func: Tuple[str, int, str]) -> str:
    """One collapsed-stack frame: ``file:line:name``, basename only.

    Semicolons separate frames and the trailing space separates the
    count in the folded format, so neither may appear inside a frame.
    """
    filename, lineno, name = func
    base = os.path.basename(filename) if filename not in ("~", "") else "~"
    name = _readable_name(name)
    label = f"{base}:{lineno}:{name}" if lineno else f"{base}:{name}"
    return label.replace(";", ",").replace(" ", "_")


def _render_profile_table(stats: pstats.Stats, top_n: int) -> str:
    """Top-``top_n`` cumulative-time table with readable attribution.

    Same columns as ``pstats.print_stats`` but rendered here so frame
    names pass through :func:`_readable_name` — fused-block callbacks
    and table-dispatched steps appear as the bound methods they are
    (``microengine.py:...(Microengine._fused_advance)``), and compiled
    monitor feeds lose the ``<locals>`` hop.
    """
    total_calls = 0
    prim_calls = 0
    total_tt = 0.0
    for _cc, _nc, _tt, _ct, _callers in stats.stats.values():
        total_calls += _nc
        prim_calls += _cc
        total_tt += _tt
    calls = (
        f"{total_calls} function calls"
        if total_calls == prim_calls
        else f"{total_calls} function calls ({prim_calls} primitive calls)"
    )
    lines = [
        f"{calls} in {total_tt:.3f} seconds",
        "",
        f"{'ncalls':>12s} {'tottime':>9s} {'percall':>9s} "
        f"{'cumtime':>9s} {'percall':>9s}  location(function)",
    ]
    ranked = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    for func, (cc, nc, tt, ct, _callers) in ranked[: max(0, top_n)]:
        filename, lineno, name = func
        if filename in ("~", ""):
            where = f"{_readable_name(name)}"
        else:
            where = (
                f"{os.path.basename(filename)}:{lineno}"
                f"({_readable_name(name)})"
            )
        ncalls = str(nc) if nc == cc else f"{nc}/{cc}"
        lines.append(
            f"{ncalls:>12s} {tt:9.3f} {tt / nc if nc else 0.0:9.6f} "
            f"{ct:9.3f} {ct / cc if cc else 0.0:9.6f}  {where}"
        )
    return "\n".join(lines) + "\n"


def collapsed_stacks(stats: pstats.Stats) -> List[str]:
    """Caller;callee folded lines from cProfile stats, flamegraph-ready.

    cProfile records caller/callee *pairs*, not full stacks, so each
    line is a two-frame stack weighted by the cumulative microseconds
    the callee spent under that caller — an approximation that still
    surfaces where the hot loop's time pools.  Root (uncalled)
    functions appear as single-frame lines.
    """
    lines: List[str] = []
    for func, (_cc, _nc, _tt, ct, callers) in sorted(stats.stats.items()):
        label = _frame_label(func)
        if not callers:
            weight = int(ct * 1e6)
            if weight > 0:
                lines.append(f"{label} {weight}")
            continue
        for caller, caller_stats in sorted(callers.items()):
            weight = int(caller_stats[3] * 1e6)  # cumtime under this caller
            if weight > 0:
                lines.append(f"{_frame_label(caller)};{label} {weight}")
    return lines


def profile_kernel(
    scenario_name: str = "flash_crowd",
    profile: str = "bench",
    top_n: int = 25,
    stacks_path: Optional[str] = None,
) -> Dict:
    """Run one compiled-monitor simulation under cProfile.

    The profiled workload is the same kernel hot loop ``repro bench``
    times: the scenario's configuration with the full compiled-monitor
    set attached.  Returns a dict with the top-``top_n``
    cumulative-time table (``table``, pre-rendered text) and, when
    ``stacks_path`` is given, writes caller;callee collapsed stacks
    there for flamegraph tooling (see :func:`collapsed_stacks`).
    """
    config = bench_config(scenario_name, profile)
    formulas = bench_formulas(scenario_name, span_for(profile))
    monitors = [build_monitor(f, mode="compiled") for f in formulas]
    run = SimulationRun(config, monitors=monitors)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run.run()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    table = _render_profile_table(stats, top_n)
    stacks = collapsed_stacks(stats)
    if stacks_path is not None:
        with open(stacks_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(stacks) + ("\n" if stacks else ""))
    return {
        "scenario": scenario_name,
        "profile": profile,
        "top_n": top_n,
        "events": _event_count(result),
        "table": table,
        "stack_lines": len(stacks),
        "stacks_path": stacks_path,
    }


def write_bench_json(data: Dict, path: str) -> None:
    """Write the artifact (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> Dict:
    """Read a previously written artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
