"""Command-line interface.

Usage::

    repro list                              # list experiments
    repro run fig06 [--profile quick]       # regenerate one figure
    repro run all  [--profile quick]        # regenerate everything
    repro simulate --benchmark ipfwdr --load 1000 --policy tdvs ...
    repro loc-gen "FORMULA" --out analyzer.py

``repro simulate`` runs a single configuration and prints the totals;
``repro loc-gen`` emits a standalone LOC analyzer script for a formula.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.experiments import get_experiment, list_experiments
from repro.loc.codegen import generate_analyzer_source
from repro.runner import run_simulation
from repro.version import PAPER, __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=f"Reproduction toolkit for: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, or 'all'")
    run_parser.add_argument(
        "--profile",
        default="quick",
        choices=("bench", "quick", "paper"),
        help="run-length profile (default: quick)",
    )
    run_parser.add_argument(
        "--out", default=None, help="write output to this file instead of stdout"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the experiments' data dictionaries as JSON instead of text",
    )

    sim_parser = sub.add_parser("simulate", help="run one simulation")
    sim_parser.add_argument("--benchmark", default="ipfwdr")
    sim_parser.add_argument("--load", type=float, default=1000.0, help="offered Mbps")
    sim_parser.add_argument(
        "--policy", default="none", choices=("none", "tdvs", "edvs")
    )
    sim_parser.add_argument("--window", type=int, default=40_000, help="cycles")
    sim_parser.add_argument("--threshold", type=float, default=1000.0, help="Mbps")
    sim_parser.add_argument("--idle-threshold", type=float, default=0.10)
    sim_parser.add_argument("--cycles", type=int, default=1_600_000)
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument(
        "--process", default="mmpp", choices=("mmpp", "poisson", "cbr")
    )

    gen_parser = sub.add_parser("loc-gen", help="generate a standalone LOC analyzer")
    gen_parser.add_argument("formula", help="LOC formula text")
    gen_parser.add_argument("--out", default=None, help="output path (default stdout)")

    return parser


def _cmd_list() -> int:
    for experiment_id in list_experiments():
        experiment = get_experiment(experiment_id)
        print(f"{experiment_id:15s} {experiment.paper_ref:12s} {experiment.title}")
    return 0


def _cmd_run(args) -> int:
    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    chunks = []
    for experiment_id in ids:
        result = get_experiment(experiment_id).run(profile=args.profile)
        if args.json:
            chunks.append(result.to_json())
        else:
            chunks.append(f"## {experiment_id}\n\n{result.text}")
    if args.json:
        output = "[\n" + ",\n".join(chunks) + "\n]\n" if len(chunks) > 1 else chunks[0] + "\n"
    else:
        output = "\n\n\n".join(chunks) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"wrote {args.out}")
    else:
        print(output, end="")
    return 0


def _cmd_simulate(args) -> int:
    dvs = DvsConfig(
        policy=args.policy,
        window_cycles=args.window,
        top_threshold_mbps=args.threshold,
        idle_threshold=args.idle_threshold,
    )
    config = RunConfig(
        benchmark=args.benchmark,
        duration_cycles=args.cycles,
        seed=args.seed,
        traffic=TrafficConfig(offered_load_mbps=args.load, process=args.process),
        dvs=dvs,
    )
    result = run_simulation(config)
    totals = result.totals
    print(f"benchmark        : {args.benchmark}")
    print(f"policy           : {args.policy}")
    print(f"simulated time   : {totals.duration_s * 1e3:.3f} ms")
    print(f"offered          : {totals.offered_mbps:.1f} Mbps "
          f"({totals.offered_packets} packets)")
    print(f"forwarded        : {totals.throughput_mbps:.1f} Mbps "
          f"({totals.forwarded_packets} packets)")
    print(f"loss             : {totals.loss_fraction * 100:.2f}%")
    print(f"mean power       : {totals.mean_power_w:.3f} W")
    if args.policy != "none":
        print(f"VF transitions   : {result.governor_transitions}")
        print(f"monitor overhead : {result.dvs_overhead_w * 1e3:.3f} mW")
    for me in totals.me_summaries:
        print(
            f"  ME{me.index} ({me.role}) busy={me.busy_fraction:.2f} "
            f"idle={me.idle_fraction:.2f} stalled={me.stalled_fraction:.2f} "
            f"freq={me.freq_mhz:.0f}MHz"
        )
    return 0


def _cmd_loc_gen(args) -> int:
    source = generate_analyzer_source(args.formula)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.out}")
    else:
        print(source, end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "loc-gen":
        return _cmd_loc_gen(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
