"""Command-line interface.

Usage::

    repro list                              # list experiments
    repro run fig06 [--profile quick] [--workers 4]
    repro run all  [--profile quick]        # regenerate everything
    repro simulate --benchmark ipfwdr --load 1000 --policy tdvs ...
    repro scenarios                         # list the workload catalog
    repro scenarios flash_crowd --run       # play one scenario
    repro sweep --policy tdvs --workers 4   # parallel design-space sweep
    repro study --scenario all --policy tdvs,edvs --workers 4
    repro sweep --backend distributed --connect 0.0.0.0:7641  # coordinator
    repro worker --connect HOST:7641        # pull jobs from a coordinator
    repro bench --out BENCH_run.json        # observation-path benchmark
    repro loc-gen "FORMULA" --out analyzer.py

``repro simulate`` runs a single configuration and prints the totals;
``repro sweep`` expands a policy/threshold/window/traffic/seed grid and
fans it out over worker processes (see :mod:`repro.sweep`);
``repro scenarios`` lists and runs the built-in workload catalog
(:mod:`repro.scenarios`); ``repro study`` runs the scenario-conditioned
policy study (:mod:`repro.studies`) and prints the per-scenario
optimal (threshold, window) map; ``repro worker`` joins a distributed
sweep as a job-pulling worker (:mod:`repro.backends`); ``repro
loc-gen`` emits a standalone LOC analyzer script for a formula.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.experiments import get_experiment, list_experiments
from repro.loc.codegen import generate_analyzer_source
from repro.runner import run_simulation
from repro.version import PAPER, __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=f"Reproduction toolkit for: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, or 'all'")
    run_parser.add_argument(
        "--profile",
        default="quick",
        choices=("bench", "quick", "paper"),
        help="run-length profile (default: quick)",
    )
    run_parser.add_argument(
        "--out", default=None, help="write output to this file instead of stdout"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the experiments' data dictionaries as JSON instead of text",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for simulation grids (default: serial, or "
        "the REPRO_SWEEP_WORKERS environment variable)",
    )

    sim_parser = sub.add_parser("simulate", help="run one simulation")
    sim_parser.add_argument("--benchmark", default="ipfwdr")
    sim_parser.add_argument("--load", type=float, default=1000.0, help="offered Mbps")
    sim_parser.add_argument(
        "--policy", default="none", choices=("none", "tdvs", "edvs")
    )
    sim_parser.add_argument("--window", type=int, default=40_000, help="cycles")
    sim_parser.add_argument("--threshold", type=float, default=1000.0, help="Mbps")
    sim_parser.add_argument("--idle-threshold", type=float, default=0.10)
    sim_parser.add_argument("--cycles", type=int, default=1_600_000)
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument(
        "--process", default="mmpp", choices=("mmpp", "poisson", "cbr")
    )

    scen_parser = sub.add_parser(
        "scenarios", help="list, inspect or run catalog traffic scenarios"
    )
    scen_parser.add_argument(
        "name", nargs="?", default=None, help="scenario to inspect (default: list all)"
    )
    scen_parser.add_argument(
        "--run", action="store_true", help="simulate the named scenario"
    )
    scen_parser.add_argument(
        "--profile",
        default="quick",
        choices=("bench", "quick", "paper"),
        help="run-length profile for --run (default: quick)",
    )
    scen_parser.add_argument("--benchmark", default="ipfwdr")
    scen_parser.add_argument(
        "--policy", default="none", choices=("none", "tdvs", "edvs", "combined")
    )
    scen_parser.add_argument("--seed", type=int, default=1)

    sweep_parser = sub.add_parser(
        "sweep", help="run a design-space sweep, optionally in parallel"
    )
    sweep_parser.add_argument(
        "--policy",
        action="append",
        choices=("none", "tdvs", "edvs", "combined"),
        help="policy axis (repeatable; default: tdvs)",
    )
    sweep_parser.add_argument(
        "--threshold",
        action="append",
        type=float,
        help="TDVS top-threshold axis in Mbps (repeatable; default: the "
        "paper's 800/1000/1200/1400 grid)",
    )
    sweep_parser.add_argument(
        "--window",
        action="append",
        type=int,
        help="monitor-window axis in cycles (repeatable; default: the "
        "paper's 20k/40k/60k/80k grid)",
    )
    sweep_parser.add_argument(
        "--traffic",
        action="append",
        help="traffic axis: level:high, load:1000 or scenario:flash_crowd "
        "(repeatable; default: level:high)",
    )
    sweep_parser.add_argument("--benchmark", action="append", help="benchmark axis")
    sweep_parser.add_argument(
        "--seed", action="append", type=int, help="seed axis (repeatable)"
    )
    sweep_parser.add_argument(
        "--profile",
        default="quick",
        choices=("bench", "quick", "paper"),
        help="run-length profile (default: quick)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None, help="worker processes (default: serial)"
    )
    sweep_parser.add_argument(
        "--store",
        default=None,
        help="JSONL result store: completed jobs are skipped on re-runs",
    )
    sweep_parser.add_argument(
        "--distributions",
        action="store_true",
        help="attach the formula (2)/(3) distribution analyzers to each job",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    _add_backend_args(sweep_parser)

    study_parser = sub.add_parser(
        "study",
        help="scenario-conditioned DVS policy study: per-scenario optimal "
        "(threshold, window) maps with LOC-assertion gating",
    )
    study_parser.add_argument(
        "--scenario",
        action="append",
        help="scenario names (repeatable, comma lists allowed; "
        "'all' or omitted: the whole catalog)",
    )
    study_parser.add_argument(
        "--policy",
        action="append",
        help="competing policies (repeatable, comma lists allowed; "
        "default: tdvs,edvs)",
    )
    study_parser.add_argument(
        "--objective",
        default="min_energy",
        help="study objective (default: min_energy; see repro.studies)",
    )
    study_parser.add_argument(
        "--threshold",
        action="append",
        type=float,
        help="TDVS top-threshold axis in Mbps (repeatable; default: the "
        "paper's 800/1000/1200/1400 grid)",
    )
    study_parser.add_argument(
        "--window",
        action="append",
        type=int,
        help="monitor-window axis in cycles (repeatable; default: the "
        "paper's 20k/40k/60k/80k grid)",
    )
    study_parser.add_argument("--benchmark", default="ipfwdr")
    study_parser.add_argument(
        "--seed", action="append", type=int, help="seed axis (repeatable)"
    )
    study_parser.add_argument(
        "--profile",
        default="quick",
        choices=("bench", "quick", "paper"),
        help="run-length profile (default: quick)",
    )
    study_parser.add_argument(
        "--latency-slack",
        type=float,
        default=None,
        help="multiplier on the quietest-phase pace in the derived LOC "
        "span-latency bound (default: 2.0)",
    )
    study_parser.add_argument(
        "--loss-margin",
        type=float,
        default=None,
        help="tolerated absolute loss-fraction excess over the ungoverned "
        "baseline (default: 0.02)",
    )
    study_parser.add_argument(
        "--workers", type=int, default=None, help="worker processes (default: serial)"
    )
    study_parser.add_argument(
        "--store",
        default=None,
        help="JSONL result store: completed jobs are skipped on re-runs",
    )
    study_parser.add_argument(
        "--json", action="store_true", help="emit the policy map as JSON"
    )
    study_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit the full markdown report (map + per-scenario Pareto fronts)",
    )
    study_parser.add_argument(
        "--pareto",
        action="store_true",
        help="also print per-scenario Pareto front tables (text output)",
    )
    study_parser.add_argument(
        "--out", default=None, help="write the report to this file instead of stdout"
    )
    study_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    study_parser.add_argument(
        "--mem-gates",
        action="store_true",
        help="also gate candidates on the mem_* queue-pressure channels "
        "(memory service-latency LOC assertions; see StudySpec.mem_gates)",
    )
    _add_backend_args(study_parser)

    worker_parser = sub.add_parser(
        "worker",
        help="join a distributed sweep: pull jobs from a coordinator, "
        "run them locally, stream outcomes back",
    )
    worker_parser.add_argument(
        "--connect", required=True, help="coordinator HOST:PORT to pull jobs from"
    )
    worker_parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="stop after this many completed jobs (default: until shutdown)",
    )
    worker_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the coordinator connection (default: 30)",
    )
    worker_parser.add_argument(
        "--serve",
        action="store_true",
        help="after a sweep finishes, reconnect and serve the next one "
        "until no coordinator appears within --timeout",
    )
    worker_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job worker log lines"
    )

    gen_parser = sub.add_parser("loc-gen", help="generate a standalone LOC analyzer")
    gen_parser.add_argument("formula", help="LOC formula text")
    gen_parser.add_argument("--out", default=None, help="output path (default stdout)")

    lint_parser = sub.add_parser(
        "lint",
        help="static invariant checks: determinism hazards, LOC formula "
        "analysis, wire/schema consistency",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any unsuppressed finding (the CI gate)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        dest="fmt",
        help="output format (github emits ::error annotations)",
    )
    lint_parser.add_argument(
        "--root",
        default=None,
        metavar="PATH",
        help="repository root to lint (default: the root containing "
        "the installed repro package, else the current directory)",
    )
    lint_parser.add_argument(
        "--no-catalog",
        action="store_true",
        help="skip the builtin/study-gate formula analysis (file-level "
        "passes only)",
    )
    lint_parser.add_argument(
        "--loc-coverage",
        default=None,
        metavar="PATH",
        help="also write the LOC compiled-vs-fallback coverage report "
        "as JSON",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="per-run observation benchmark: events/sec through the "
        "checking path, compiled monitors vs the interpretive baseline",
    )
    bench_parser.add_argument(
        "--scenario",
        action="append",
        help="scenario names (repeatable, comma lists allowed; 'all' for "
        "the catalog; default: a diverse 3-scenario subset)",
    )
    bench_parser.add_argument(
        "--profile",
        default="bench",
        choices=("bench", "quick", "paper"),
        help="run-length profile (default: bench)",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per mode; the best wall-clock counts "
        "(default: 3)",
    )
    bench_parser.add_argument(
        "--replay-events",
        type=int,
        default=100_000,
        help="approximate events replayed through each checking path "
        "(default: 100000)",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_run.json",
        help="JSON artifact path (default: BENCH_run.json)",
    )
    bench_parser.add_argument(
        "--baseline",
        default=None,
        help="previous BENCH_run.json to diff against (soft gate: "
        "regressions print warnings, the exit code stays 0)",
    )
    bench_parser.add_argument(
        "--regress-warn",
        type=float,
        default=0.20,
        help="events/sec drop fraction that triggers a warning against "
        "--baseline (default: 0.20)",
    )
    bench_parser.add_argument(
        "--regress-fail",
        action="store_true",
        help="promote the --baseline gate from warnings to a hard "
        "failure: exit 1 when any events/sec drop exceeds --regress-warn",
    )
    bench_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress"
    )
    bench_parser.add_argument(
        "--profile-kernel",
        nargs="?",
        const="flash_crowd",
        default=None,
        metavar="SCENARIO",
        help="instead of the benchmark, run one compiled-monitor "
        "simulation under cProfile and print the top cumulative-time "
        "table (default scenario: flash_crowd)",
    )
    bench_parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="rows in the --profile-kernel cumulative table (default: 25)",
    )
    bench_parser.add_argument(
        "--profile-stacks",
        default=None,
        metavar="PATH",
        help="with --profile-kernel: also write collapsed (folded) "
        "stacks here for flamegraph tooling",
    )

    metrics_parser = sub.add_parser(
        "metrics",
        help="summarize or diff repro.obs metrics snapshots "
        "(the JSONL files --metrics-out writes)",
    )
    metrics_parser.add_argument("snapshot", help="metrics snapshot JSONL path")
    metrics_parser.add_argument(
        "--diff",
        default=None,
        metavar="BASELINE",
        help="diff the snapshot against this baseline snapshot instead "
        "of summarizing it",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="work with span logs (the JSONL files --spans-out writes)",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    export_parser = trace_sub.add_parser(
        "export",
        help="export a span log for an external timeline viewer",
    )
    export_parser.add_argument("spanlog", help="span log JSONL path")
    export_parser.add_argument(
        "--format",
        default="perfetto",
        choices=("perfetto",),
        help="export format: perfetto emits Chrome trace-event JSON "
        "(loads in https://ui.perfetto.dev or chrome://tracing)",
    )
    export_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: <spanlog-stem>.perfetto.json)",
    )

    report_parser = sub.add_parser(
        "report",
        help="render a study report from a study JSON artifact "
        "(repro study --json --out study.json)",
    )
    report_parser.add_argument("study", help="study JSON path")
    report_parser.add_argument(
        "--html",
        action="store_true",
        help="render the self-contained HTML study report (winner "
        "tables, Pareto fronts, latency histograms, timeline summary)",
    )
    report_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: <study-stem>.html)",
    )
    report_parser.add_argument(
        "--metrics",
        default=None,
        metavar="SNAPSHOT",
        help="metrics snapshot JSONL to render forward-latency "
        "histograms from",
    )
    report_parser.add_argument(
        "--spans",
        default=None,
        metavar="SPANLOG",
        help="span log JSONL to embed the run-timeline summary from",
    )
    report_parser.add_argument(
        "--title",
        default="Scenario-conditioned DVS policy study",
        help="report page title",
    )

    return parser


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """The shared execution-backend selector (sweep and study)."""
    parser.add_argument(
        "--backend",
        default=None,
        choices=("serial", "process", "distributed"),
        help="execution backend (default: the REPRO_SWEEP_BACKEND environment "
        "variable, else serial/process chosen from --workers)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        help="with --backend distributed: HOST:PORT the coordinator listens "
        "on (port 0 picks a free port; workers join with "
        "'repro worker --connect HOST:PORT')",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the session's metrics snapshot (trace channel "
        "counters, outcome tallies, backend telemetry) to this JSONL "
        "file when the command finishes (a span log lands next to it "
        "as <stem>.spans<ext> unless --spans-out says otherwise)",
    )
    parser.add_argument(
        "--spans-out",
        default=None,
        metavar="PATH",
        help="write the session's span timeline (wall-clock "
        "orchestration + deterministic sim-time run phases) to this "
        "JSONL span log; feed it to 'repro trace export' or "
        "'repro report --html'",
    )
    parser.add_argument(
        "--early-abort",
        action="store_true",
        help="let streaming anomaly gates stop doomed jobs early "
        "(aborted_early outcomes; changes job identity, so gated runs "
        "never alias full-run caches)",
    )


def _make_backend(args):
    """Build the backend the sweep/study commands were asked for.

    Returns ``None`` when no explicit ``--backend`` was given, letting
    the session's :class:`~repro.api.policy.ExecutionPolicy` consult
    the environment and its serial/process default.  A distributed
    coordinator announces its bound address up front so workers can be
    pointed at it.
    """
    if args.backend is None:
        return None
    from repro.backends import get_backend

    def log(line: str) -> None:
        print(f"coordinator: {line}", file=sys.stderr)

    backend = get_backend(
        args.backend,
        workers=args.workers,
        connect=args.connect,
        log=None if getattr(args, "quiet", False) else log,
    )
    if args.backend == "distributed":
        # A wildcard bind is not a dialable address; tell remote
        # workers to use this machine's name instead.
        join = backend.address
        if backend.host in ("0.0.0.0", "::"):
            import socket

            join = f"{socket.gethostname()}:{backend.port}"
        print(
            f"coordinator listening on {backend.address} — join with: "
            f"repro worker --connect {join}",
            file=sys.stderr,
        )
    return backend


def _run_session(args, backend=None) -> "Session":
    """The :class:`~repro.api.session.Session` one command runs under.

    Policy fields come straight from the parsed flags; anything the
    user did not pass stays ``None`` and defers to the ``REPRO_SWEEP_*``
    environment variables, exactly as the pre-session CLI behaved.
    """
    from repro.api import ExecutionPolicy, Session, StorePolicy

    early_abort = None
    if getattr(args, "early_abort", False):
        from repro.obs.gates import EarlyAbortPolicy

        early_abort = EarlyAbortPolicy()
    return Session(
        execution=ExecutionPolicy(
            backend=backend,
            workers=getattr(args, "workers", None),
            early_abort=early_abort,
        ),
        store=StorePolicy(path=getattr(args, "store", None)),
    )


def _write_session_metrics(session, args, meta: dict) -> None:
    """Honor ``--metrics-out`` / ``--spans-out`` after a command finishes.

    The span log defaults to living next to the metrics snapshot
    (``study-metrics.jsonl`` → ``study-metrics.spans.jsonl``) so one
    flag ships both observability artifacts; ``--spans-out`` overrides
    the location (and works without ``--metrics-out``).
    """
    path = getattr(args, "metrics_out", None)
    if path:
        session.write_metrics(path, meta=meta)
        print(f"wrote metrics snapshot {path}", file=sys.stderr)
    spans_path = getattr(args, "spans_out", None)
    if not spans_path and path:
        root, ext = os.path.splitext(path)
        spans_path = f"{root}.spans{ext or '.jsonl'}"
    if spans_path:
        session.write_spans(spans_path, meta=meta)
        print(f"wrote span log {spans_path}", file=sys.stderr)


def _cmd_list() -> int:
    for experiment_id in list_experiments():
        experiment = get_experiment(experiment_id)
        print(f"{experiment_id:15s} {experiment.paper_ref:12s} {experiment.title}")
    return 0


def _cmd_run(args) -> int:
    from repro.api import ExecutionPolicy, Session

    ids = list_experiments() if args.experiment == "all" else [args.experiment]
    # max(1, ...) keeps the historical tolerance for ``--workers 0``.
    session = Session(
        execution=ExecutionPolicy(
            workers=None if args.workers is None else max(1, args.workers)
        )
    )
    chunks = []
    for experiment_id in ids:
        result = session.experiment(experiment_id, profile=args.profile)
        if args.json:
            chunks.append(result.to_json())
        else:
            chunks.append(f"## {experiment_id}\n\n{result.text}")
    if args.json:
        output = "[\n" + ",\n".join(chunks) + "\n]\n" if len(chunks) > 1 else chunks[0] + "\n"
    else:
        output = "\n\n\n".join(chunks) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"wrote {args.out}")
    else:
        print(output, end="")
    return 0


def _cmd_simulate(args) -> int:
    dvs = DvsConfig(
        policy=args.policy,
        window_cycles=args.window,
        top_threshold_mbps=args.threshold,
        idle_threshold=args.idle_threshold,
    )
    config = RunConfig(
        benchmark=args.benchmark,
        duration_cycles=args.cycles,
        seed=args.seed,
        traffic=TrafficConfig(offered_load_mbps=args.load, process=args.process),
        dvs=dvs,
    )
    result = run_simulation(config)
    totals = result.totals
    print(f"benchmark        : {args.benchmark}")
    print(f"policy           : {args.policy}")
    _print_run_totals(result)
    for me in totals.me_summaries:
        print(
            f"  ME{me.index} ({me.role}) busy={me.busy_fraction:.2f} "
            f"idle={me.idle_fraction:.2f} stalled={me.stalled_fraction:.2f} "
            f"freq={me.freq_mhz:.0f}MHz"
        )
    return 0


def _print_run_totals(result) -> None:
    totals = result.totals
    print(f"simulated time   : {totals.duration_s * 1e3:.3f} ms")
    print(f"offered          : {totals.offered_mbps:.1f} Mbps "
          f"({totals.offered_packets} packets)")
    print(f"forwarded        : {totals.throughput_mbps:.1f} Mbps "
          f"({totals.forwarded_packets} packets)")
    print(f"loss             : {totals.loss_fraction * 100:.2f}%")
    print(f"mean power       : {totals.mean_power_w:.3f} W")
    if result.governor_policy != "none":
        print(f"VF transitions   : {result.governor_transitions}")
        print(f"monitor overhead : {result.dvs_overhead_w * 1e3:.3f} mW")


def _cmd_scenarios(args) -> int:
    from repro.experiments.common import cycles_for
    from repro.scenarios import all_scenarios, get_scenario

    if args.name is None:
        print(f"{'name':18s} {'segs':>4s} {'mean':>8s} {'peak':>8s}  title")
        for scenario in all_scenarios():
            print(
                f"{scenario.name:18s} {len(scenario.segments):4d} "
                f"{scenario.mean_load_mbps:8.1f} {scenario.peak_load_mbps:8.1f}  "
                f"{scenario.title}"
            )
        return 0

    scenario = get_scenario(args.name)
    print(f"scenario : {scenario.name} — {scenario.title}")
    print(f"about    : {scenario.description}")
    print(
        f"load     : mean {scenario.mean_load_mbps:.1f} Mbps, "
        f"peak {scenario.peak_load_mbps:.1f} Mbps"
    )
    print(f"flows    : {scenario.num_flows} (zipf s={scenario.zipf_s:g})")
    total = scenario.total_weight
    for k, segment in enumerate(scenario.segments):
        print(
            f"  [{k}] {100 * segment.weight / total:5.1f}% of run  "
            f"{segment.offered_load_mbps:7.1f} Mbps  {segment.process:7s} "
            f"{segment.size_mix}"
        )
    if not args.run:
        return 0

    config = RunConfig(
        benchmark=args.benchmark,
        duration_cycles=cycles_for(args.profile),
        seed=args.seed,
        traffic=TrafficConfig.for_scenario(scenario.name),
        dvs=DvsConfig(policy=args.policy),
    )
    result = run_simulation(config)
    print()
    print(f"benchmark        : {args.benchmark}")
    print(f"policy           : {args.policy}")
    _print_run_totals(result)
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.common import (
        EXPERIMENT_SEED,
        TDVS_THRESHOLDS_MBPS,
        TDVS_WINDOWS_CYCLES,
        cycles_for,
        span_for,
    )
    from repro.api import EventHooks
    from repro.sweep import SweepSpec, progress_printer, summarize

    spec = SweepSpec(
        benchmarks=tuple(args.benchmark or ("ipfwdr",)),
        policies=tuple(args.policy or ("tdvs",)),
        thresholds_mbps=tuple(args.threshold or TDVS_THRESHOLDS_MBPS),
        windows_cycles=tuple(args.window or TDVS_WINDOWS_CYCLES),
        traffic=tuple(args.traffic or ("level:high",)),
        seeds=tuple(args.seed or (EXPERIMENT_SEED,)),
        duration_cycles=cycles_for(args.profile),
        span=span_for(args.profile) if args.distributions else None,
    )
    jobs = spec.jobs()
    workers = args.workers
    print(
        f"sweep: {len(jobs)} jobs, "
        f"backend={args.backend or 'auto'}, "
        f"workers={workers if workers is not None else 'auto'}, "
        f"store={args.store or 'none'}"
    )
    session = _run_session(args, backend=_make_backend(args))
    outcomes = session.sweep(
        jobs,
        hooks=EventHooks(progress=None if args.quiet else progress_printer()),
    )
    print(summarize(outcomes))
    _write_session_metrics(session, args, {"command": "sweep", "jobs": len(jobs)})
    return 0


def _split_csv(values: Optional[List[str]]) -> List[str]:
    """Flatten repeatable, comma-separated CLI values.

    ``["tdvs,edvs", "combined"]`` becomes ``["tdvs", "edvs", "combined"]``.
    """
    out: List[str] = []
    for value in values or []:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _cmd_study(args) -> int:
    from repro.api import EventHooks
    from repro.experiments.common import cycles_for, span_for
    from repro.studies import StudySpec
    from repro.studies.report import (
        render_json,
        render_markdown,
        render_pareto_text,
        render_text,
    )
    from repro.sweep import progress_printer

    scenarios = [s for s in _split_csv(args.scenario) if s != "all"]
    policies = _split_csv(args.policy) or ["tdvs", "edvs"]
    overrides = {}
    if args.latency_slack is not None:
        overrides["latency_slack"] = args.latency_slack
    if args.loss_margin is not None:
        overrides["loss_margin"] = args.loss_margin
    spec = StudySpec(
        scenarios=tuple(scenarios),
        policies=tuple(policies),
        thresholds_mbps=tuple(args.threshold or StudySpec.thresholds_mbps),
        windows_cycles=tuple(args.window or StudySpec.windows_cycles),
        benchmark=args.benchmark,
        seeds=tuple(args.seed or StudySpec.seeds),
        duration_cycles=cycles_for(args.profile),
        span=span_for(args.profile),
        objective=args.objective,
        mem_gates=args.mem_gates,
        **overrides,
    )
    spec.validate()
    jobs_by_scenario = spec.jobs_by_scenario()
    total_jobs = sum(len(jobs) for _, jobs in jobs_by_scenario)
    print(
        f"study: {len(jobs_by_scenario)} scenarios, "
        f"{total_jobs} jobs, objective={spec.objective}, "
        f"backend={args.backend or 'auto'}, "
        f"workers={args.workers if args.workers is not None else 'auto'}, "
        f"store={args.store or 'none'}"
    )
    session = _run_session(args, backend=_make_backend(args))
    result = session.study(
        spec,
        jobs_by_scenario=jobs_by_scenario,
        hooks=EventHooks(progress=None if args.quiet else progress_printer()),
        on_scenario_complete=None if args.quiet else _study_live_line,
    )
    if args.json:
        report = render_json(result.policy_map)
    elif args.markdown:
        report = render_markdown(result.policy_map)
    else:
        report = render_text(result.policy_map) + "\n"
        if args.pareto:
            for verdict in result.policy_map:
                report += "\n" + render_pareto_text(verdict) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report, end="")
    _write_session_metrics(
        session, args, {"command": "study", "jobs": total_jobs}
    )
    return 0


def _study_live_line(verdict) -> None:
    """One stderr line the moment a scenario's grid drains.

    This is the streaming payoff of the session API: LOC-gated winners
    print as each scenario completes, not after the whole study lands.
    """
    winner = verdict.winner
    if winner is None:
        line = (
            f"study: {verdict.scenario}: no gated winner "
            f"({verdict.candidates_passing}/{len(verdict.candidates)} passed)"
        )
    else:
        knobs = []
        if winner.threshold_mbps is not None:
            knobs.append(f"thr={winner.threshold_mbps:g}")
        if winner.window_cycles is not None:
            knobs.append(f"win={winner.window_cycles}")
        saving = verdict.power_saving_fraction
        line = (
            f"study: {verdict.scenario}: winner {winner.policy}"
            f"{' (' + ', '.join(knobs) + ')' if knobs else ''}"
            f" {winner.power_w:.3f} W"
            + (f" (-{saving * 100:.1f}%)" if saving is not None else "")
        )
    print(line, file=sys.stderr)


def _cmd_worker(args) -> int:
    from repro.backends.worker import _log_to_stderr, run_worker

    completed = run_worker(
        args.connect,
        max_jobs=args.max_jobs,
        connect_timeout_s=args.timeout,
        serve=args.serve,
        log=None if args.quiet else _log_to_stderr,
    )
    print(f"worker: completed {completed} job(s)")
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.api import Session
    from repro.bench import (
        compare_bench,
        fusion_regressions,
        load_bench_json,
        render_bench_text,
        write_bench_json,
    )

    if args.profile_kernel is not None:
        from repro.bench import profile_kernel

        report = profile_kernel(
            scenario_name=args.profile_kernel,
            profile=args.profile,
            top_n=args.profile_top,
            stacks_path=args.profile_stacks,
        )
        print(
            f"profiled {report['scenario']} ({report['events']} events, "
            f"profile={report['profile']})"
        )
        print(report["table"], end="")
        if args.profile_stacks:
            print(
                f"wrote {report['stack_lines']} collapsed-stack lines to "
                f"{args.profile_stacks}"
            )
        return 0

    scenarios = _split_csv(args.scenario) or None

    def live_line(name: str, entry: dict) -> None:
        checking = entry["checking"]
        print(
            f"bench: {name}: {entry['events']} events, "
            f"checking {checking['interpreted']['events_per_s']:,.0f} -> "
            f"{checking['compiled']['events_per_s']:,.0f} ev/s "
            f"({checking['speedup']:.1f}x)",
            file=sys.stderr,
        )

    # Load the baseline up front: --baseline may point at the same path
    # as --out (the natural "compare against my last run" invocation),
    # and writing first would make the gate compare the run to itself.
    # A missing baseline is a first run, not an error — the gate is soft.
    baseline = None
    if args.baseline:
        try:
            baseline = load_bench_json(args.baseline)
        except FileNotFoundError:
            print(
                f"bench: no baseline at {args.baseline} (first run?) — "
                "skipping the regression gate",
                file=sys.stderr,
            )
        except (OSError, ValueError) as exc:
            # A torn/corrupt artifact (e.g. a previous run killed
            # mid-write landing in the CI cache) must not turn the soft
            # gate into a hard failure.
            print(
                f"bench: unreadable baseline {args.baseline} ({exc!r}) — "
                "skipping the regression gate",
                file=sys.stderr,
            )

    session = Session()
    data = session.bench_run(
        scenarios=scenarios,
        profile=args.profile,
        repeats=args.repeats,
        replay_target_events=args.replay_events,
        progress=None if args.quiet else live_line,
    )
    write_bench_json(data, args.out)
    print(render_bench_text(data))
    print(f"wrote {args.out}")

    # Fused-vs-unfused is a hard intra-artifact gate, independent of any
    # baseline: fusion is byte-identical and exists purely for speed, so
    # losing to the unfused path anywhere is a defect.
    fusion_failures = fusion_regressions(data)
    for failure in fusion_failures:
        print(f"bench: FAIL {failure}", file=sys.stderr)
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::error title=bench_run fusion regression::{failure}")
    if fusion_failures:
        return 1

    if baseline is not None:
        warnings = compare_bench(baseline, data, tolerance=args.regress_warn)
        severity = "FAIL" if args.regress_fail else "WARNING"
        for warning in warnings:
            print(f"bench: {severity} {warning}", file=sys.stderr)
            if os.environ.get("GITHUB_ACTIONS"):
                # Surface as an Actions annotation: an error when the
                # gate is hard (--regress-fail, the nightly lane against
                # the committed baseline), a warning otherwise —
                # wall-clock noise across runners is expected on the
                # soft path.
                kind = "error" if args.regress_fail else "warning"
                print(f"::{kind} title=bench_run regression::{warning}")
        if not warnings:
            print("bench: no events/sec regression vs baseline", file=sys.stderr)
        elif args.regress_fail:
            return 1
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs.metrics import diff_snapshots, read_snapshot, summarize_snapshot

    if args.diff:
        # Inspect both headers tolerantly first: mismatched schema
        # versions get a named-key refusal (exit 2) instead of an
        # unexplained parse error on whichever file is read first —
        # silently diffing incompatible layouts is never an option.
        header, _ = read_snapshot(args.snapshot, check_version=False)
        base_header, _ = read_snapshot(args.diff, check_version=False)
        if base_header.get("version") != header.get("version"):
            print(
                f"metrics diff: snapshot schema mismatch on key "
                f"'version': {args.diff} has "
                f"{base_header.get('version')!r}, {args.snapshot} has "
                f"{header.get('version')!r} — refusing to diff "
                f"incompatible snapshot layouts",
                file=sys.stderr,
            )
            return 2
        header, records = read_snapshot(args.snapshot)
        base_header, base_records = read_snapshot(args.diff)
        meta = {k: v for k, v in header.items() if k not in ("schema", "version")}
        print(f"metrics diff: {args.diff} -> {args.snapshot}")
        if meta:
            print("  " + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())))
        output = diff_snapshots(base_records, records)
        print(output if output else "no differences")
    else:
        header, records = read_snapshot(args.snapshot)
        print(summarize_snapshot(records))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.perfetto import render_perfetto, to_perfetto, track_types
    from repro.obs.spans import read_spans, summarize_spans

    header, records = read_spans(args.spanlog)
    meta = {k: v for k, v in header.items() if k not in ("schema", "version")}
    out = args.out or (os.path.splitext(args.spanlog)[0] + ".perfetto.json")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(render_perfetto(records, meta))
    types = track_types(to_perfetto(records, meta))
    print(
        f"wrote {out}: {len(records)} span(s), track types: "
        f"{', '.join(types) if types else '(none)'}",
        file=sys.stderr,
    )
    if records:
        print(summarize_spans(records))
    return 0


def _cmd_report(args) -> int:
    if not args.html:
        print(
            "repro report: pass --html (the only supported renderer; "
            "use 'repro study --markdown/--json' for the other formats)",
            file=sys.stderr,
        )
        return 2
    from repro.studies.report import render_html

    with open(args.study, "r", encoding="utf-8") as handle:
        study = json.load(handle)
    metrics_records = None
    if args.metrics:
        from repro.obs.metrics import read_snapshot

        metrics_records = read_snapshot(args.metrics)[1]
    span_records = None
    if args.spans:
        from repro.obs.spans import read_spans

        span_records = read_spans(args.spans)[1]
    out = args.out or (os.path.splitext(args.study)[0] + ".html")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(
            render_html(
                study,
                metrics_records=metrics_records,
                span_records=span_records,
                title=args.title,
            )
        )
    print(f"wrote study report {out}", file=sys.stderr)
    return 0


def _cmd_loc_gen(args) -> int:
    source = generate_analyzer_source(args.formula)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.out}")
    else:
        print(source, end="")
    return 0


def _default_lint_root() -> str:
    """The repo root: the directory whose ``src/repro`` we run from."""
    package_root = Path(__file__).resolve().parent  # .../src/repro
    candidate = package_root.parent.parent
    if (candidate / "src" / "repro").is_dir():
        return str(candidate)
    return os.getcwd()


def _cmd_lint(args) -> int:
    from repro.analysis.lint import render, run_lint

    root = args.root or _default_lint_root()
    if not (Path(root) / "src" / "repro").is_dir():
        print(f"repro lint: no src/repro under {root}", file=sys.stderr)
        return 2
    result, coverage = run_lint(root, catalog=not args.no_catalog)
    print(render(result, args.fmt))
    if args.loc_coverage:
        if coverage is None:
            print(
                "repro lint: --loc-coverage needs the catalog passes "
                "(drop --no-catalog)",
                file=sys.stderr,
            )
            return 2
        with open(args.loc_coverage, "w", encoding="utf-8") as handle:
            json.dump(coverage.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote LOC coverage report {args.loc_coverage}", file=sys.stderr)
    if args.strict and result.active:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "loc-gen":
        return _cmd_loc_gen(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
