"""Configuration dataclasses for the NPU model, DVS policies and runs.

Every knob of the reproduction lives here, with defaults matching the
paper's experimental settings (IXP1200-derived NPU at 600 MHz with
memory/bus speeds scaled 1.3x, XScale-style VF ladder 400-600 MHz /
1.1-1.3 V in 50 MHz steps, 10 us transition penalty, 8x10^6-cycle runs).

All configs are plain dataclasses with ``validate()`` plus dict
round-tripping (``to_dict`` / ``from_dict``) so experiments can be
serialized next to their results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigError

T = TypeVar("T", bound="_Base")


@dataclass
class _Base:
    """Shared dict round-trip helpers for all config dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (nested configs become nested dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
        """Rebuild from :meth:`to_dict` output; unknown keys are errors."""
        known = {f.name: f for f in fields(cls)}
        unknown = set(data) - set(known)
        if unknown:
            raise ConfigError(
                f"{cls.__name__}: unknown keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = {}
        for name, value in data.items():
            target = known[name].type
            # Nested config dataclasses arrive as dicts.
            nested = _NESTED_TYPES.get((cls.__name__, name))
            if nested is not None and isinstance(value, dict):
                value = nested.from_dict(value)
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        instance = cls(**kwargs)
        instance.validate()
        return instance

    def replaced(self: T, **changes) -> T:
        """Copy with fields changed (and re-validated)."""
        out = replace(self, **changes)
        out.validate()
        return out

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""


def _positive(value, name: str) -> None:
    if value is None or value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def _non_negative(value, name: str) -> None:
    if value is None or value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")


# ---------------------------------------------------------------------------
# Memory / interconnect
# ---------------------------------------------------------------------------
@dataclass
class MemoryConfig(_Base):
    """SRAM/SDRAM/scratchpad timing and sizing.

    Timing values are in nanoseconds and already include the paper's 1.3x
    memory-speed scaling relative to the stock IXP1200.  ``*_access_ns``
    is the pipeline latency of one access; ``*_occupancy_ns`` is how long
    the controller is held busy per access (queueing builds on it);
    ``*_byte_ns`` adds transfer time per byte moved.
    """

    sram_bytes: int = 8 * 1024 * 1024
    sram_access_ns: float = 24.0
    sram_occupancy_ns: float = 7.0
    sram_byte_ns: float = 0.32

    sdram_bytes: int = 256 * 1024 * 1024
    sdram_access_ns: float = 60.0
    sdram_occupancy_ns: float = 20.0
    sdram_byte_ns: float = 2.0

    scratch_bytes: int = 4 * 1024
    scratch_access_ns: float = 12.0
    scratch_occupancy_ns: float = 3.0
    scratch_byte_ns: float = 0.1

    #: IX bus: per-transfer overhead and per-byte transfer time.
    bus_access_ns: float = 8.0
    bus_byte_ns: float = 0.72

    def validate(self) -> None:
        for name in (
            "sram_bytes",
            "sdram_bytes",
            "scratch_bytes",
        ):
            _positive(getattr(self, name), f"MemoryConfig.{name}")
        for name in (
            "sram_access_ns",
            "sram_occupancy_ns",
            "sdram_access_ns",
            "sdram_occupancy_ns",
            "scratch_access_ns",
            "scratch_occupancy_ns",
            "bus_access_ns",
        ):
            _positive(getattr(self, name), f"MemoryConfig.{name}")
        for name in ("sram_byte_ns", "sdram_byte_ns", "scratch_byte_ns", "bus_byte_ns"):
            _non_negative(getattr(self, name), f"MemoryConfig.{name}")


# ---------------------------------------------------------------------------
# NPU architecture
# ---------------------------------------------------------------------------
@dataclass
class NpuConfig(_Base):
    """Top-level NPU architecture parameters (IXP1200-derived).

    The six microengines are split into receive and transmit groups as in
    Intel's reference forwarding design; each receive ME owns
    ``num_ports / len(rx_me_indices)`` device ports.
    """

    num_microengines: int = 6
    threads_per_me: int = 4
    rx_me_indices: Tuple[int, ...] = (0, 1, 2, 3)
    tx_me_indices: Tuple[int, ...] = (4, 5)

    #: Reference (trace) clock and the ME VF ladder bounds.
    reference_freq_hz: float = 600e6
    me_freq_max_hz: float = 600e6
    me_freq_min_hz: float = 400e6
    me_freq_step_hz: float = 50e6
    me_vdd_max: float = 1.3
    me_vdd_min: float = 1.1

    num_ports: int = 16
    port_rate_bps: float = 622e6
    rx_queue_packets: int = 64

    #: Busy-poll cost when a thread finds no packet waiting (instructions).
    poll_instructions: int = 24

    #: Ablation knob: charge polling time to the ``idle`` state instead
    #: of ``busy``.  The paper's model (and our default) counts polling
    #: as busy — "even if an ME does not process packets ... it will
    #: actively execute instructions to poll the buffers".
    poll_counts_as_idle: bool = False

    #: Context-switch overhead in ME cycles.
    ctx_switch_cycles: int = 1

    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def validate(self) -> None:
        _positive(self.num_microengines, "NpuConfig.num_microengines")
        _positive(self.threads_per_me, "NpuConfig.threads_per_me")
        _positive(self.num_ports, "NpuConfig.num_ports")
        _positive(self.port_rate_bps, "NpuConfig.port_rate_bps")
        _positive(self.rx_queue_packets, "NpuConfig.rx_queue_packets")
        _positive(self.reference_freq_hz, "NpuConfig.reference_freq_hz")
        _positive(self.poll_instructions, "NpuConfig.poll_instructions")
        _non_negative(self.ctx_switch_cycles, "NpuConfig.ctx_switch_cycles")
        indices = tuple(self.rx_me_indices) + tuple(self.tx_me_indices)
        if sorted(indices) != list(range(self.num_microengines)):
            raise ConfigError(
                "rx_me_indices + tx_me_indices must partition "
                f"0..{self.num_microengines - 1}, got rx={self.rx_me_indices} "
                f"tx={self.tx_me_indices}"
            )
        if self.num_ports % len(self.rx_me_indices) != 0:
            raise ConfigError(
                f"num_ports ({self.num_ports}) must divide evenly among "
                f"{len(self.rx_me_indices)} receive MEs"
            )
        if not self.me_freq_min_hz <= self.me_freq_max_hz:
            raise ConfigError("me_freq_min_hz must not exceed me_freq_max_hz")
        _positive(self.me_freq_step_hz, "NpuConfig.me_freq_step_hz")
        span = self.me_freq_max_hz - self.me_freq_min_hz
        steps = span / self.me_freq_step_hz
        if abs(steps - round(steps)) > 1e-6:
            raise ConfigError(
                "me_freq_step_hz must evenly divide the frequency range"
            )
        if not 0 < self.me_vdd_min <= self.me_vdd_max:
            raise ConfigError("need 0 < me_vdd_min <= me_vdd_max")
        self.memory.validate()

    @property
    def ports_per_rx_me(self) -> int:
        """Device ports owned by each receive microengine."""
        return self.num_ports // len(self.rx_me_indices)


# ---------------------------------------------------------------------------
# Power model calibration
# ---------------------------------------------------------------------------
@dataclass
class PowerConfig(_Base):
    """Activity-based power calibration.

    ``me_active_w_max`` is one microengine's dynamic power at the top VF
    point (600 MHz / 1.3 V); other VF points scale by ``f * Vdd^2``.
    Idle (all threads blocked on memory, clock partially gated) and
    stalled (VF transition) states burn ``me_idle_fraction`` of active
    power at the same VF point.  Memory energy is per access + per byte;
    ``base_w`` covers everything the study holds constant (StrongARM,
    PLLs, I/O pads, leakage).

    Defaults calibrate `ipfwdr` at high traffic, no DVS, to ~1.5 W as in
    the paper's Figures 10/11.
    """

    me_active_w_max: float = 0.22
    me_idle_fraction: float = 0.25

    sram_access_nj: float = 2.0
    sram_byte_nj: float = 0.06
    sdram_access_nj: float = 4.5
    sdram_byte_nj: float = 0.12
    scratch_access_nj: float = 0.4
    scratch_byte_nj: float = 0.02
    bus_byte_nj: float = 0.09

    base_w: float = 0.12

    #: DVS monitor overhead: the 32-bit adder TDVS runs per packet
    #: arrival, and the EDVS idle counter update per window.  The paper
    #: measured the total under 1 % of chip power.
    tdvs_adder_nj_per_packet: float = 0.35
    edvs_counter_nj_per_window: float = 1.0

    def validate(self) -> None:
        _positive(self.me_active_w_max, "PowerConfig.me_active_w_max")
        if not 0.0 <= self.me_idle_fraction <= 1.0:
            raise ConfigError("me_idle_fraction must be within [0, 1]")
        for name in (
            "sram_access_nj",
            "sram_byte_nj",
            "sdram_access_nj",
            "sdram_byte_nj",
            "scratch_access_nj",
            "scratch_byte_nj",
            "bus_byte_nj",
            "base_w",
            "tdvs_adder_nj_per_packet",
            "edvs_counter_nj_per_window",
        ):
            _non_negative(getattr(self, name), f"PowerConfig.{name}")


# ---------------------------------------------------------------------------
# DVS policies
# ---------------------------------------------------------------------------
@dataclass
class DvsConfig(_Base):
    """DVS policy selection and parameters.

    ``policy`` is ``"none"``, ``"tdvs"``, ``"edvs"`` or ``"combined"``
    (the extension governor measuring the paper's declined design point;
    see :mod:`repro.dvs.combined`).  Window sizes are
    in clock cycles: reference-clock cycles for TDVS (a chip-wide policy)
    and local ME cycles for EDVS (each ME windows its own clock), as in
    the paper.  ``top_threshold_mbps`` is TDVS's threshold at the top
    frequency; lower levels scale proportionally to frequency (Figure 5).
    ``idle_threshold`` is EDVS's idle-time fraction (10 % in the paper).
    """

    policy: str = "none"
    window_cycles: int = 40_000
    top_threshold_mbps: float = 1000.0
    idle_threshold: float = 0.10
    transition_penalty_us: float = 10.0
    #: Ablation knob: TDVS down-steps only when the window rate falls
    #: below ``threshold * (1 - tdvs_hysteresis)``.  The paper's policy
    #: has no hysteresis (0.0).
    tdvs_hysteresis: float = 0.0

    def validate(self) -> None:
        if self.policy not in ("none", "tdvs", "edvs", "combined"):
            raise ConfigError(
                "policy must be 'none', 'tdvs', 'edvs' or 'combined', "
                f"got {self.policy!r}"
            )
        _positive(self.window_cycles, "DvsConfig.window_cycles")
        _positive(self.top_threshold_mbps, "DvsConfig.top_threshold_mbps")
        if not 0.0 < self.idle_threshold < 1.0:
            raise ConfigError("idle_threshold must be within (0, 1)")
        _non_negative(self.transition_penalty_us, "DvsConfig.transition_penalty_us")
        if not 0.0 <= self.tdvs_hysteresis < 1.0:
            raise ConfigError("tdvs_hysteresis must be within [0, 1)")


# ---------------------------------------------------------------------------
# Traffic
# ---------------------------------------------------------------------------
@dataclass
class TrafficConfig(_Base):
    """Offered traffic for one run.

    Exactly one of three sources must be set: an explicit
    ``offered_load_mbps``, a named ``level`` (``low``/``med``/``high``)
    resolved through the diurnal sampler, or a catalog ``scenario``
    (see :mod:`repro.scenarios`) whose timed segments override the
    single-rate knobs below for the whole run.
    """

    level: Optional[str] = None
    offered_load_mbps: Optional[float] = 1000.0
    scenario: Optional[str] = None
    process: str = "mmpp"
    burst_ratio: float = 4.0
    burst_fraction: float = 0.3
    size_mix: str = "imix"
    num_flows: int = 512
    zipf_s: float = 0.9

    @classmethod
    def for_scenario(cls, name: str, **overrides) -> "TrafficConfig":
        """Convenience constructor selecting a catalog scenario."""
        return cls(scenario=name, offered_load_mbps=None, **overrides)

    def validate(self) -> None:
        sources = dict(
            level=self.level,
            offered_load_mbps=self.offered_load_mbps,
            scenario=self.scenario,
        )
        chosen = {name: value for name, value in sources.items() if value is not None}
        if len(chosen) != 1:
            raise ConfigError(
                "exactly one of level / offered_load_mbps / scenario must "
                f"be set (got {chosen or sources})"
            )
        if self.level is not None and self.level not in ("low", "med", "high"):
            raise ConfigError(f"level must be low/med/high, got {self.level!r}")
        if self.scenario is not None:
            # Imported lazily: repro.scenarios builds on this module.
            from repro.errors import TrafficError
            from repro.scenarios.catalog import get_scenario

            try:
                get_scenario(self.scenario)
            except TrafficError as exc:
                raise ConfigError(str(exc)) from None
        if self.offered_load_mbps is not None:
            _positive(self.offered_load_mbps, "TrafficConfig.offered_load_mbps")
        if self.process not in ("poisson", "cbr", "mmpp"):
            raise ConfigError(f"unknown arrival process {self.process!r}")
        # Imported lazily: keeps `repro.config` import-light.
        from repro.traffic.sizes import SIZE_MIXES

        if self.size_mix not in SIZE_MIXES:
            raise ConfigError(
                f"unknown size mix {self.size_mix!r}; known: {sorted(SIZE_MIXES)}"
            )
        _positive(self.num_flows, "TrafficConfig.num_flows")
        _non_negative(self.zipf_s, "TrafficConfig.zipf_s")


# ---------------------------------------------------------------------------
# Whole-run configuration
# ---------------------------------------------------------------------------
@dataclass
class RunConfig(_Base):
    """Everything one simulation run needs.

    ``duration_cycles`` counts reference-clock (600 MHz) cycles — the
    paper runs 8x10^6 cycles per configuration.  ``benchmark`` selects
    the application model (``ipfwdr``/``url``/``nat``/``md4``).
    """

    benchmark: str = "ipfwdr"
    duration_cycles: int = 8_000_000
    seed: int = 1
    npu: NpuConfig = field(default_factory=NpuConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    dvs: DvsConfig = field(default_factory=DvsConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    #: Emit per-compute-chunk pipeline events ("chunk"), per-instruction
    #: events in detailed mode ("instruction"), or none (None).
    pipeline_events: Optional[str] = None

    #: Fast per-packet models, plus the detailed (interpreted-microcode)
    #: variants usable anywhere a benchmark name is accepted.
    BENCHMARKS = ("ipfwdr", "url", "nat", "md4", "ipfwdr_uc", "nat_uc")

    def validate(self) -> None:
        if self.benchmark not in self.BENCHMARKS:
            raise ConfigError(f"unknown benchmark {self.benchmark!r}")
        _positive(self.duration_cycles, "RunConfig.duration_cycles")
        if self.pipeline_events not in (None, "chunk", "instruction"):
            raise ConfigError(
                f"pipeline_events must be None/'chunk'/'instruction', "
                f"got {self.pipeline_events!r}"
            )
        self.npu.validate()
        self.power.validate()
        self.dvs.validate()
        self.traffic.validate()


#: Nested dataclass fields for from_dict reconstruction.
_NESTED_TYPES: Dict[Tuple[str, str], Any] = {
    ("NpuConfig", "memory"): MemoryConfig,
    ("RunConfig", "npu"): NpuConfig,
    ("RunConfig", "power"): PowerConfig,
    ("RunConfig", "dvs"): DvsConfig,
    ("RunConfig", "traffic"): TrafficConfig,
}
