"""Dynamic voltage scaling: the paper's two policies.

* :class:`~repro.dvs.vf_table.VfTable` — the XScale-style ladder of
  voltage/frequency points (600 MHz/1.3 V down to 400 MHz/1.1 V in
  50 MHz steps) and the frequency-proportional traffic thresholds of the
  paper's Figure 5;
* :class:`~repro.dvs.tdvs.TdvsGovernor` — traffic-based DVS: chip-wide
  VF steps driven by the aggregate arrival volume at the 16 device ports
  per monitoring window;
* :class:`~repro.dvs.edvs.EdvsGovernor` — execution-based DVS: per-ME VF
  steps driven by each engine's idle-time fraction (all threads blocked
  on memory) per window.

Every VF change stalls the affected microengine(s) for the transition
penalty (10 us = 6000 cycles at 600 MHz), which is what makes small
windows expensive.
"""

from repro.dvs.edvs import EdvsGovernor
from repro.dvs.tdvs import TdvsGovernor
from repro.dvs.vf_table import VfPoint, VfTable

__all__ = ["EdvsGovernor", "TdvsGovernor", "VfPoint", "VfTable"]
