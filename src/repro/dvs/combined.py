"""Combined TDVS+EDVS governor (the paper's declined design point).

The paper: "We do not combine the two policies because monitoring both
traffic load and processor idle time on a chip is expensive in terms of
area and power."  This extension implements the combination anyway so
the trade-off can be *measured* rather than assumed:

* a chip-wide **traffic floor**: the TDVS rule computes the slowest
  level the offered traffic justifies;
* per-ME **idle refinement**: the EDVS rule lets an individual ME run
  slower than the floor when its own idle time allows (and pulls it
  back up when it does not).

An ME's effective level is ``max(traffic_floor, its own idle level)``
(higher level index = slower).  Both monitors charge their hardware
overhead, so experiments can check whether the paper's cost objection
holds (see the ``abl-combined`` ablation).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import DvsConfig
from repro.dvs.governor import GovernorBase
from repro.dvs.vf_table import VfTable
from repro.npu.microengine import Microengine
from repro.power.overhead import DvsOverheadMeter
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.stats import RateWindow


class CombinedGovernor(GovernorBase):
    """Traffic floor chip-wide, idle refinement per ME."""

    policy = "combined"

    def __init__(
        self,
        sim: Simulator,
        config: DvsConfig,
        vf_table: VfTable,
        mes: List[Microengine],
        reference_clock: ClockDomain,
        traffic_monitor: RateWindow,
        overhead: Optional[DvsOverheadMeter] = None,
    ):
        super().__init__(sim, config, vf_table, overhead)
        self.mes = mes
        self.reference_clock = reference_clock
        self.traffic_monitor = traffic_monitor
        self.traffic_floor = 0
        self.idle_levels: Dict[int, int] = {me.index: 0 for me in mes}
        self._applied: Dict[int, int] = {me.index: 0 for me in mes}
        self._window_ps = reference_clock.delay_for_cycles(config.window_cycles)

    # ------------------------------------------------------------------
    def _schedule_first(self) -> None:
        self.traffic_monitor.reset_window()
        self.sim.schedule(self._window_ps, self._on_traffic_window)
        for me in sorted(self.mes, key=lambda m: m.index):
            me.reset_window()
            self.sim.schedule(
                me.clock.delay_for_cycles(self.config.window_cycles),
                self._on_idle_window,
                me,
            )

    # -- chip-wide traffic rule -------------------------------------------
    def _on_traffic_window(self) -> None:
        self._charge_window_overhead()
        rate_mbps = self.traffic_monitor.window_rate_per_s() / 1e6
        threshold = self.vf_table.traffic_threshold_mbps(
            self.traffic_floor, self.config.top_threshold_mbps
        )
        if rate_mbps > threshold:
            self.traffic_floor = self.vf_table.step_up(self.traffic_floor)
        elif rate_mbps < threshold:
            self.traffic_floor = self.vf_table.step_down(self.traffic_floor)
        for me in self.mes:
            self._apply_effective(me)
        self.traffic_monitor.reset_window()
        self.sim.schedule(self._window_ps, self._on_traffic_window)

    # -- per-ME idle rule ----------------------------------------------------
    def _on_idle_window(self, me: Microengine) -> None:
        self._charge_window_overhead()
        idle_fraction = me.idle_fraction_window()
        level = self.idle_levels[me.index]
        if idle_fraction > self.config.idle_threshold:
            self.idle_levels[me.index] = self.vf_table.step_down(level)
        elif idle_fraction < self.config.idle_threshold:
            self.idle_levels[me.index] = self.vf_table.step_up(level)
        self._apply_effective(me)
        me.reset_window()
        self.sim.schedule(
            me.clock.delay_for_cycles(self.config.window_cycles),
            self._on_idle_window,
            me,
        )

    # -- composition -----------------------------------------------------------
    def effective_level(self, me_index: int) -> int:
        """Slower of the traffic floor and the ME's own idle level."""
        return max(self.traffic_floor, self.idle_levels[me_index])

    def _apply_effective(self, me: Microengine) -> None:
        target = self.effective_level(me.index)
        if target != self._applied[me.index]:
            self._applied[me.index] = target
            self._apply_level([me], target)
