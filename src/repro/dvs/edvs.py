"""Execution-based dynamic voltage scaling (EDVS).

Each microengine independently monitors its own *idle time* — the share
of an observation window in which **all** of its hardware threads are
blocked on memory references.  If the idle fraction exceeds the
threshold (10 % in the paper) the ME steps its VF down one level; if it
falls below, the ME steps up; the ladder ends clamp.

Because a polling thread is busy (it executes instructions to check
buffers and status registers), lightly loaded receive MEs show almost no
idle time and EDVS leaves them at full speed — idle time here comes from
memory latency under load.  That is also why transmit MEs "never scale
down their VFs" and why `nat`, with almost no memory accesses, sees no
EDVS savings.

Windows are measured in the ME's *own* clock cycles, so a slowed ME
observes longer (wall-clock) windows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import DvsConfig
from repro.dvs.governor import GovernorBase
from repro.dvs.vf_table import VfTable
from repro.npu.microengine import Microengine
from repro.power.overhead import DvsOverheadMeter
from repro.sim.kernel import Simulator


class EdvsGovernor(GovernorBase):
    """Per-ME, idle-time-driven VF control."""

    policy = "edvs"

    def __init__(
        self,
        sim: Simulator,
        config: DvsConfig,
        vf_table: VfTable,
        mes: List[Microengine],
        overhead: Optional[DvsOverheadMeter] = None,
    ):
        super().__init__(sim, config, vf_table, overhead)
        self.mes = mes
        self.levels: Dict[int, int] = {me.index: 0 for me in mes}
        #: Per-ME count of VF changes (transmit MEs should stay at 0).
        self.transitions_per_me: Dict[int, int] = {me.index: 0 for me in mes}

    def _schedule_first(self) -> None:
        for me in mes_sorted(self.mes):
            me.reset_window()
            self.sim.schedule(self._window_ps_for(me), self._on_window, me)

    def _window_ps_for(self, me: Microengine) -> int:
        """Window length in wall time at the ME's current frequency."""
        return me.clock.delay_for_cycles(self.config.window_cycles)

    def _on_window(self, me: Microengine) -> None:
        self._charge_window_overhead()
        idle_fraction = me.idle_fraction_window()
        level = self.levels[me.index]
        new_level = level
        if idle_fraction > self.config.idle_threshold:
            new_level = self.vf_table.step_down(level)
        elif idle_fraction < self.config.idle_threshold:
            new_level = self.vf_table.step_up(level)
        if new_level != level:
            self.levels[me.index] = new_level
            self.transitions_per_me[me.index] += 1
            self._apply_level([me], new_level)
        me.reset_window()
        self.sim.schedule(self._window_ps_for(me), self._on_window, me)

    def level_of(self, me_index: int) -> int:
        """Current ladder level of one ME."""
        return self.levels[me_index]


def mes_sorted(mes: List[Microengine]) -> List[Microengine]:
    """Deterministic ME ordering for scheduling (by index)."""
    return sorted(mes, key=lambda me: me.index)
