"""Shared governor machinery: windows, transitions, penalties.

Both policies follow the same skeleton — observe a window, compare a
control signal against a threshold, step the VF ladder by at most one
level, pay the transition penalty — and differ only in the signal
(arrival traffic vs. idle time) and the scaling domain (chip-wide vs.
per-ME).  The base class owns the mechanical parts so the policy classes
stay small and the experiments can count transitions uniformly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DvsConfig
from repro.dvs.vf_table import VfTable
from repro.npu.microengine import Microengine
from repro.power.overhead import DvsOverheadMeter
from repro.sim.kernel import Simulator
from repro.units import us_to_ps


class GovernorBase:
    """Common state and transition mechanics for DVS governors."""

    #: Policy name used in reports; subclasses override.
    policy = "none"

    def __init__(
        self,
        sim: Simulator,
        config: DvsConfig,
        vf_table: VfTable,
        overhead: Optional[DvsOverheadMeter] = None,
    ):
        self.sim = sim
        self.config = config
        self.vf_table = vf_table
        self.overhead = overhead
        self.penalty_ps = us_to_ps(config.transition_penalty_us)
        self.transitions = 0
        self.windows_evaluated = 0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin scheduling window evaluations."""
        if self._started:
            raise RuntimeError(f"{type(self).__name__} already started")
        self._started = True
        self._schedule_first()

    def _schedule_first(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Transition mechanics
    # ------------------------------------------------------------------
    def _apply_level(self, mes: List[Microengine], level: int) -> None:
        """Move ``mes`` to ``level``: stall for the penalty, switch VF."""
        point = self.vf_table[level]
        for me in mes:
            me.stall_for(self.penalty_ps)
            me.set_vf(point.freq_hz, point.vdd)
        self.transitions += 1

    def _charge_window_overhead(self) -> None:
        self.windows_evaluated += 1
        if self.overhead is not None:
            self.overhead.on_window_evaluation()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"{self.policy}: windows={self.windows_evaluated} "
            f"transitions={self.transitions}"
        )
