"""Traffic-based dynamic voltage scaling (TDVS).

The monitor hardware (a 32-bit adder at the device ports) accumulates
the sizes of all arriving packets over a window of ``window_cycles``
reference-clock cycles.  At each window boundary the average arrival
rate is compared against the *current level's* threshold (Figure 5:
thresholds scale with frequency): a larger volume steps the chip-wide ME
voltage/frequency up one level, a smaller volume steps it down, bounded
by the ladder ends.

The compare-to-current-threshold rule makes the policy oscillate under
mid-range loads — each oscillation costing the 10 us penalty — which is
exactly why the paper finds 20 k-cycle windows catastrophic for
throughput ("the 6000-cycle penalties almost consume 30 % of the window
time") while 80 k windows save power with almost no performance loss.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import DvsConfig
from repro.dvs.governor import GovernorBase
from repro.dvs.vf_table import VfTable
from repro.npu.microengine import Microengine
from repro.power.overhead import DvsOverheadMeter
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.stats import RateWindow


class TdvsGovernor(GovernorBase):
    """Chip-wide, traffic-driven VF control.

    Parameters
    ----------
    sim / config / vf_table / overhead:
        See :class:`~repro.dvs.governor.GovernorBase`.
    mes:
        All microengines (TDVS scales them together).
    reference_clock:
        The fixed clock whose cycles define the window length.
    traffic_monitor:
        :class:`~repro.sim.stats.RateWindow` fed with every arriving
        packet's bits (the 32-bit adder).
    """

    policy = "tdvs"

    def __init__(
        self,
        sim: Simulator,
        config: DvsConfig,
        vf_table: VfTable,
        mes: List[Microengine],
        reference_clock: ClockDomain,
        traffic_monitor: RateWindow,
        overhead: Optional[DvsOverheadMeter] = None,
    ):
        super().__init__(sim, config, vf_table, overhead)
        self.mes = mes
        self.reference_clock = reference_clock
        self.traffic_monitor = traffic_monitor
        self.level = 0
        self._window_ps = reference_clock.delay_for_cycles(config.window_cycles)
        self.level_history: List[int] = [0]

    def _schedule_first(self) -> None:
        self.traffic_monitor.reset_window()
        self.sim.schedule(self._window_ps, self._on_window)

    def current_threshold_mbps(self) -> float:
        """The threshold in force at the current level."""
        return self.vf_table.traffic_threshold_mbps(
            self.level, self.config.top_threshold_mbps
        )

    def _on_window(self) -> None:
        self._charge_window_overhead()
        rate_mbps = self.traffic_monitor.window_rate_per_s() / 1e6
        threshold = self.current_threshold_mbps()
        down_threshold = threshold * (1.0 - self.config.tdvs_hysteresis)
        new_level = self.level
        if rate_mbps > threshold:
            new_level = self.vf_table.step_up(self.level)
        elif rate_mbps < down_threshold:
            new_level = self.vf_table.step_down(self.level)
        if new_level != self.level:
            self.level = new_level
            self._apply_level(self.mes, new_level)
        self.level_history.append(self.level)
        self.traffic_monitor.reset_window()
        self.sim.schedule(self._window_ps, self._on_window)
