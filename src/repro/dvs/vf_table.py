"""The voltage/frequency ladder and threshold scaling (Figure 5).

Operating points span 400-600 MHz in 50 MHz steps with voltage tracking
frequency linearly from 1.1 V to 1.3 V, as in Intel XScale.  TDVS's
traffic thresholds scale proportionally to frequency: at the 1000 Mbps
top threshold the ladder is exactly the paper's Figure 5 row
(1000, 916, 833, 750, 666 Mbps).

Level indices count down from the top: level 0 is the fastest point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import NpuConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class VfPoint:
    """One operating point of the ladder."""

    freq_hz: float
    vdd: float

    @property
    def freq_mhz(self) -> float:
        """Frequency in MHz (for tables and reports)."""
        return self.freq_hz / 1e6


class VfTable:
    """The ladder of VF points plus threshold scaling.

    Parameters
    ----------
    freq_max_hz / freq_min_hz / step_hz:
        Frequency range and step (must divide evenly).
    vdd_max / vdd_min:
        Voltages at the range endpoints; intermediate points interpolate
        linearly (XScale-style).
    """

    def __init__(
        self,
        freq_max_hz: float,
        freq_min_hz: float,
        step_hz: float,
        vdd_max: float,
        vdd_min: float,
    ):
        if freq_min_hz > freq_max_hz or step_hz <= 0:
            raise ConfigError("invalid VF ladder bounds")
        span = freq_max_hz - freq_min_hz
        count = int(round(span / step_hz))
        if abs(count * step_hz - span) > 1e-3:
            raise ConfigError("step_hz must evenly divide the frequency range")
        self.points: List[VfPoint] = []
        for k in range(count + 1):
            freq = freq_max_hz - k * step_hz
            if span > 0:
                vdd = vdd_min + (freq - freq_min_hz) / span * (vdd_max - vdd_min)
            else:
                vdd = vdd_max
            self.points.append(VfPoint(freq, round(vdd, 6)))

    @classmethod
    def from_config(cls, npu: NpuConfig) -> "VfTable":
        """Build the ladder from an :class:`~repro.config.NpuConfig`."""
        return cls(
            npu.me_freq_max_hz,
            npu.me_freq_min_hz,
            npu.me_freq_step_hz,
            npu.me_vdd_max,
            npu.me_vdd_min,
        )

    # ------------------------------------------------------------------
    # Ladder navigation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, level: int) -> VfPoint:
        return self.points[level]

    @property
    def top(self) -> VfPoint:
        """The fastest operating point (level 0)."""
        return self.points[0]

    @property
    def bottom(self) -> VfPoint:
        """The slowest operating point."""
        return self.points[-1]

    def clamp(self, level: int) -> int:
        """Clamp a level index into the ladder."""
        return max(0, min(len(self.points) - 1, level))

    def step_down(self, level: int) -> int:
        """One step slower (until the lower bound is hit)."""
        return self.clamp(level + 1)

    def step_up(self, level: int) -> int:
        """One step faster (until the upper bound is hit)."""
        return self.clamp(level - 1)

    # ------------------------------------------------------------------
    # TDVS threshold scaling (Figure 5)
    # ------------------------------------------------------------------
    def traffic_threshold_mbps(self, level: int, top_threshold_mbps: float) -> float:
        """Threshold at ``level``, scaled by frequency ratio to the top."""
        if top_threshold_mbps <= 0:
            raise ConfigError("top threshold must be positive")
        point = self.points[level]
        return top_threshold_mbps * point.freq_hz / self.top.freq_hz

    def scaling_table(
        self, top_threshold_mbps: float
    ) -> List[Tuple[float, float, float]]:
        """Rows of (freq_MHz, Vdd, threshold_Mbps) — the Figure 5 table."""
        return [
            (
                point.freq_mhz,
                point.vdd,
                self.traffic_threshold_mbps(level, top_threshold_mbps),
            )
            for level, point in enumerate(self.points)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{p.freq_mhz:.0f}MHz/{p.vdd}V" for p in self.points)
        return f"<VfTable {body}>"
