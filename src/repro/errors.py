"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch a single base class.  Each
subsystem has its own subclass to make error provenance obvious in
tracebacks and to let tests assert on precise failure categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The simulation kernel or a component reached an invalid state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid delay."""


class ClockError(SimulationError):
    """A clock-domain operation was invalid (e.g. non-positive frequency)."""


class NpuError(ReproError):
    """An architectural component of the NPU model was misused."""


class MemoryModelError(NpuError):
    """An SRAM/SDRAM/scratchpad access was out of range or malformed."""


class IsaError(NpuError):
    """A microcode instruction is malformed or illegal to execute."""


class AssemblerError(IsaError):
    """Microcode source text failed to assemble.

    Attributes
    ----------
    line:
        1-based source line of the error, or ``None`` if not applicable.
    """

    def __init__(self, message: str, line: "int | None" = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class TrafficError(ReproError):
    """A traffic model or packet source was misconfigured."""


class TraceError(ReproError):
    """A trace file or event stream is malformed."""


class LocError(ReproError):
    """Base class for Logic-of-Constraints errors."""


class LocSyntaxError(LocError):
    """LOC formula text failed to tokenize or parse.

    Attributes
    ----------
    position:
        0-based character offset into the formula, or ``None``.
    """

    def __init__(self, message: str, position: "int | None" = None):
        if position is not None:
            message = f"at offset {position}: {message}"
        super().__init__(message)
        self.position = position


class LocSemanticError(LocError):
    """A parsed LOC formula references unknown events or annotations."""


class LocEvaluationError(LocError):
    """A LOC formula could not be evaluated over the supplied trace."""


class AnalysisError(ReproError):
    """A distribution/percentile/surface computation was invalid."""


class ExperimentError(ReproError):
    """An experiment runner was misconfigured or failed to produce output."""


class BackendError(ExperimentError):
    """A sweep execution backend failed or was misused.

    Subclasses :class:`ExperimentError` so sweep callers that already
    guard experiment execution catch backend faults (worker loss beyond
    the retry budget, protocol violations) without new handlers.
    """
