"""Experiment harnesses: one module per paper figure/table.

Every artifact of the paper's evaluation has a runner here that
regenerates it (text form).  Use the registry::

    from repro.experiments import get_experiment, list_experiments

    for exp_id in list_experiments():
        print(exp_id)
    result = get_experiment("fig06").run(profile="quick")
    print(result.text)

Profiles scale run length: ``quick`` for CI/benches, ``paper`` for the
full 8x10^6-cycle runs the paper used.  EXPERIMENTS.md records measured
outcomes for both where feasible.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
