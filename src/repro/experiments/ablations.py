"""Ablations of the design choices DESIGN.md calls out.

``abl-penalty``
    Sweep the VF-transition penalty (0/5/10/20 us) at the most
    transition-heavy TDVS point (1400 Mbps top threshold, 20k window):
    the throughput collapse of Figure 7 should track the penalty.
``abl-polling``
    Re-run EDVS with polling charged as *idle* instead of busy: EDVS then
    scales receive MEs down at low traffic too, erasing the paper's
    distinction between the two policies' information sources.
``abl-hysteresis``
    Add a down-step hysteresis band to TDVS: transitions (and the 20k
    penalty overhead) drop sharply, recovering most of the lost
    throughput at a small power cost — quantifying how much of the
    paper's small-window collapse is threshold flapping.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import DvsConfig, NpuConfig, RunConfig, TrafficConfig
from repro.experiments.common import (
    EXPERIMENT_SEED,
    LEVEL_LOADS_MBPS,
    cycles_for,
    instrumented_run,
)
from repro.experiments.registry import ExperimentResult, register
from repro.runner import run_simulation


@register("abl-penalty", "VF-transition penalty sweep", "DESIGN.md ablation 5")
def run_penalty(profile: str) -> ExperimentResult:
    """TDVS 1400/20k with penalties 0-20 us."""
    rows = []
    data = {}
    for penalty_us in (0.0, 5.0, 10.0, 20.0):
        dvs = DvsConfig(
            policy="tdvs",
            window_cycles=20_000,
            top_threshold_mbps=1400.0,
            transition_penalty_us=penalty_us,
        )
        run_data = instrumented_run(profile, level="high", dvs=dvs)
        totals = run_data.result.totals
        rows.append(
            (
                f"{penalty_us:.0f}us",
                f"{run_data.result.mean_power_w:.3f}",
                f"{run_data.result.throughput_mbps:.0f}",
                f"{totals.loss_fraction * 100:.1f}%",
                run_data.result.governor_transitions,
            )
        )
        data[penalty_us] = {
            "power_w": run_data.result.mean_power_w,
            "throughput_mbps": run_data.result.throughput_mbps,
            "loss": totals.loss_fraction,
            "transitions": run_data.result.governor_transitions,
        }
    text = format_table(
        ("penalty", "power (W)", "thr (Mbps)", "loss", "transitions"),
        rows,
        title="Ablation: transition penalty (TDVS 1400 Mbps / 20k window, high traffic)",
    )
    return ExperimentResult("abl-penalty", text, data=data)


@register("abl-polling", "Polling-as-idle accounting", "DESIGN.md ablation 3")
def run_polling(profile: str) -> ExperimentResult:
    """EDVS at low traffic with both polling accountings."""
    rows = []
    data = {}
    for as_idle in (False, True):
        npu = NpuConfig(poll_counts_as_idle=as_idle)
        config = RunConfig(
            benchmark="ipfwdr",
            duration_cycles=cycles_for(profile),
            seed=EXPERIMENT_SEED,
            npu=npu,
            traffic=TrafficConfig(offered_load_mbps=LEVEL_LOADS_MBPS["low"]),
            dvs=DvsConfig(policy="edvs", window_cycles=40_000),
        )
        result = run_simulation(config)
        label = "idle" if as_idle else "busy (paper)"
        min_freq = min(m.freq_mhz for m in result.totals.me_summaries)
        rows.append(
            (
                label,
                f"{result.mean_power_w:.3f}",
                f"{result.throughput_mbps:.0f}",
                result.governor_transitions,
                f"{min_freq:.0f}",
            )
        )
        data[label] = {
            "power_w": result.mean_power_w,
            "transitions": result.governor_transitions,
            "min_freq_mhz": min_freq,
        }
    text = format_table(
        ("polling counts as", "power (W)", "thr (Mbps)", "transitions", "min ME MHz"),
        rows,
        title="Ablation: polling accounting under EDVS (ipfwdr, low traffic)",
    )
    return ExperimentResult("abl-polling", text, data=data)


@register("abl-hysteresis", "TDVS down-step hysteresis", "DESIGN.md ablation 2")
def run_hysteresis(profile: str) -> ExperimentResult:
    """TDVS 1400/20k with and without a hysteresis band."""
    rows = []
    data = {}
    for hysteresis in (0.0, 0.10, 0.20):
        dvs = DvsConfig(
            policy="tdvs",
            window_cycles=20_000,
            top_threshold_mbps=1400.0,
            tdvs_hysteresis=hysteresis,
        )
        run_data = instrumented_run(profile, level="high", dvs=dvs)
        rows.append(
            (
                f"{hysteresis * 100:.0f}%",
                f"{run_data.result.mean_power_w:.3f}",
                f"{run_data.result.throughput_mbps:.0f}",
                f"{run_data.result.totals.loss_fraction * 100:.1f}%",
                run_data.result.governor_transitions,
            )
        )
        data[hysteresis] = {
            "power_w": run_data.result.mean_power_w,
            "throughput_mbps": run_data.result.throughput_mbps,
            "transitions": run_data.result.governor_transitions,
        }
    text = format_table(
        ("hysteresis", "power (W)", "thr (Mbps)", "loss", "transitions"),
        rows,
        title="Ablation: TDVS hysteresis (1400 Mbps / 20k window, high traffic)",
    )
    return ExperimentResult("abl-hysteresis", text, data=data)
