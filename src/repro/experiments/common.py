"""Shared experiment machinery: profiles, instrumented runs, caching.

Every simulation-backed experiment goes through the session API
(:mod:`repro.api`): figures build :class:`~repro.sweep.spec.Job`
lists and hand them to :meth:`~repro.api.session.Session.sweep`, which
fans them out over worker processes when parallelism is available
(``--workers`` on the CLI, or the ``REPRO_SWEEP_WORKERS`` environment
variable) and falls back to the in-process serial path otherwise.
Results are identical either way — each job carries its own seed.

The TDVS design-space experiments (Figures 6-9) share one 17-run grid;
:func:`tdvs_design_space` computes it once per profile and caches it so
``fig06``/``fig07``/``fig08``/``fig09`` stay cheap to run back to back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api import ExecutionPolicy, Session
from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.errors import ExperimentError
from repro.loc.analyzer import DistributionResult
from repro.runner import RunResult
from repro.sweep.engine import run_job
from repro.sweep.spec import Job
from repro.sweep.store import SweepOutcome

#: Run lengths (reference-clock cycles) per profile.  ``paper`` is the
#: paper's 8x10^6; ``quick`` keeps several 80k windows while staying
#: laptop-fast; ``bench`` is for pytest-benchmark smoke timing.
PROFILE_CYCLES: Dict[str, int] = {
    "bench": 400_000,
    "quick": 1_600_000,
    "paper": 8_000_000,
}

#: Offered loads (Mbps) for the named traffic levels.  ``high`` is the
#: near-saturation sample the TDVS/EDVS sweeps use (the paper's
#: distribution axes reach 1400 Mbps); ``med``/``low`` match the
#: medium/low samples of Figure 11.
LEVEL_LOADS_MBPS: Dict[str, float] = {"low": 400.0, "med": 1000.0, "high": 1550.0}

#: The paper's TDVS sweep axes.
TDVS_THRESHOLDS_MBPS = (800.0, 1000.0, 1200.0, 1400.0)
TDVS_WINDOWS_CYCLES = (20_000, 40_000, 60_000, 80_000)

#: EDVS sweep axis (Figure 10) and idle threshold.
EDVS_WINDOWS_CYCLES = (20_000, 40_000, 60_000, 80_000)
EDVS_IDLE_THRESHOLD = 0.10

#: Default seed for experiment runs (reproducibility anchor).
EXPERIMENT_SEED = 7

#: Analysis window: formulas (2)/(3) span 100 packets in the paper; the
#: quick/bench profiles forward fewer packets, so they use a smaller span
#: to keep enough formula instances for stable distributions.
SPAN_BY_PROFILE: Dict[str, int] = {"bench": 20, "quick": 50, "paper": 100}


def cycles_for(profile: str) -> int:
    """Run length for a named profile."""
    try:
        return PROFILE_CYCLES[profile]
    except KeyError:
        raise ExperimentError(
            f"unknown profile {profile!r}; known: {sorted(PROFILE_CYCLES)}"
        ) from None


def span_for(profile: str) -> int:
    """LOC formula packet span for a named profile."""
    return SPAN_BY_PROFILE.get(profile, 100)


@dataclass
class InstrumentedRun:
    """One simulation plus its power/throughput distributions."""

    result: RunResult
    power: DistributionResult
    throughput: DistributionResult


def as_instrumented(outcome: SweepOutcome) -> InstrumentedRun:
    """View a sweep outcome as an :class:`InstrumentedRun`."""
    if outcome.power_dist is None or outcome.throughput_dist is None:
        raise ExperimentError(
            f"job {outcome.label or outcome.job_id!r} ran without analyzers "
            "(span=None); instrumented experiments need span set"
        )
    return InstrumentedRun(
        result=outcome.result,
        power=outcome.power_dist,
        throughput=outcome.throughput_dist,
    )


def instrumented_job(
    profile: str,
    benchmark: str = "ipfwdr",
    load_mbps: Optional[float] = None,
    level: Optional[str] = None,
    scenario: Optional[str] = None,
    dvs: Optional[DvsConfig] = None,
    seed: int = EXPERIMENT_SEED,
    process: str = "mmpp",
) -> Job:
    """Build the sweep job for one instrumented experiment run.

    Named levels resolve through :data:`LEVEL_LOADS_MBPS` (the
    experiments' NPU-regime samples); scenarios pass through by name.
    """
    sources = [value for value in (load_mbps, level, scenario) if value is not None]
    if len(sources) != 1:
        raise ExperimentError("give exactly one of load_mbps / level / scenario")
    if level is not None:
        load_mbps = LEVEL_LOADS_MBPS[level]
    if scenario is not None:
        traffic = TrafficConfig.for_scenario(scenario)
    else:
        traffic = TrafficConfig(offered_load_mbps=load_mbps, process=process)
    dvs = dvs or DvsConfig(policy="none")
    config = RunConfig(
        benchmark=benchmark,
        duration_cycles=cycles_for(profile),
        seed=seed,
        traffic=traffic,
        dvs=dvs,
    )
    label = " ".join(
        part
        for part in (
            benchmark,
            scenario or level or f"{load_mbps:g}Mbps",
            dvs.policy,
            f"win={dvs.window_cycles}" if dvs.policy != "none" else "",
        )
        if part
    )
    return Job.build(config, span=span_for(profile), label=label)


def instrumented_run(
    profile: str,
    benchmark: str = "ipfwdr",
    load_mbps: Optional[float] = None,
    level: Optional[str] = None,
    scenario: Optional[str] = None,
    dvs: Optional[DvsConfig] = None,
    seed: int = EXPERIMENT_SEED,
    process: str = "mmpp",
) -> InstrumentedRun:
    """Run one configuration with formula (2)/(3) analyzers attached."""
    job = instrumented_job(
        profile,
        benchmark=benchmark,
        load_mbps=load_mbps,
        level=level,
        scenario=scenario,
        dvs=dvs,
        seed=seed,
        process=process,
    )
    return as_instrumented(run_job(job))


#: Cache: profile -> {(threshold|None, window|None): InstrumentedRun}.
#: The (None, None) key is the no-DVS baseline.
_TDVS_CACHE: Dict[str, Dict[Tuple[Optional[float], Optional[int]], InstrumentedRun]] = {}


def tdvs_design_space(
    profile: str,
    workers: Optional[int] = None,
) -> Dict[Tuple[Optional[float], Optional[int]], InstrumentedRun]:
    """The shared Figures 6-9 grid: 4 thresholds x 4 windows + noDVS.

    Benchmark `ipfwdr` at the high traffic sample, as in Section 4.1.
    The 17 runs go through the session API, so ``workers > 1``
    regenerates the grid in parallel with identical results.
    """
    cached = _TDVS_CACHE.get(profile)
    if cached is not None:
        return cached
    keys: List[Tuple[Optional[float], Optional[int]]] = [(None, None)]
    jobs = [instrumented_job(profile, level="high")]
    for threshold in TDVS_THRESHOLDS_MBPS:
        for window in TDVS_WINDOWS_CYCLES:
            dvs = DvsConfig(
                policy="tdvs",
                window_cycles=window,
                top_threshold_mbps=threshold,
            )
            keys.append((threshold, window))
            jobs.append(instrumented_job(profile, level="high", dvs=dvs))
    session = Session(execution=ExecutionPolicy(workers=workers))
    outcomes = session.sweep(jobs)
    grid = {
        key: as_instrumented(outcome) for key, outcome in zip(keys, outcomes)
    }
    _TDVS_CACHE[profile] = grid
    return grid


def clear_caches() -> None:
    """Drop cached design-space grids (tests use this)."""
    _TDVS_CACHE.clear()
