"""Extension experiments beyond the paper's figures.

``abl-combined``
    The combined TDVS+EDVS governor the paper declined for monitor-cost
    reasons (Section 4: "monitoring both traffic load and processor
    idle time on a chip is expensive").  Measures all four policies at
    the same operating point *including the monitor-hardware overhead*,
    so the cost objection is quantified instead of assumed.

``formula1``
    The paper's formula (1) — the forwarding-latency distribution
    ``time(forward[i+100]) - time(forward[i]) in <40, 80, 5>`` — is
    introduced as the methodology example but never plotted; this
    harness evaluates it on the model (with the analysis window
    re-centred on the measured latency scale).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import DvsConfig
from repro.experiments.common import instrumented_run
from repro.experiments.registry import ExperimentResult, register
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.builtin import forwarding_latency_formula
from repro.config import RunConfig, TrafficConfig
from repro.experiments.common import (
    EXPERIMENT_SEED,
    LEVEL_LOADS_MBPS,
    cycles_for,
    span_for,
)
from repro.runner import run_simulation


@register("abl-combined", "Combined TDVS+EDVS governor", "Section 4 (declined)")
def run_combined(profile: str) -> ExperimentResult:
    """All four policies at the high traffic sample, with monitor cost."""
    rows = []
    data = {}
    for policy in ("none", "tdvs", "edvs", "combined"):
        dvs = (
            DvsConfig(
                policy=policy,
                window_cycles=40_000,
                top_threshold_mbps=1400.0,
                idle_threshold=0.10,
            )
            if policy != "none"
            else None
        )
        run_data = instrumented_run(profile, level="high", dvs=dvs)
        result = run_data.result
        overhead_mw = result.dvs_overhead_w * 1e3
        rows.append(
            (
                policy,
                f"{result.mean_power_w:.3f}",
                f"{result.throughput_mbps:.0f}",
                f"{result.totals.loss_fraction * 100:.1f}%",
                result.governor_transitions,
                f"{overhead_mw:.2f}",
            )
        )
        data[policy] = {
            "power_w": result.mean_power_w,
            "throughput_mbps": result.throughput_mbps,
            "transitions": result.governor_transitions,
            "overhead_w": result.dvs_overhead_w,
        }
    text = format_table(
        ("policy", "power (W)", "thr (Mbps)", "loss", "transitions",
         "monitor mW"),
        rows,
        title=(
            "Extension: combined TDVS+EDVS vs. the single policies "
            "(ipfwdr, high traffic)"
        ),
    )
    return ExperimentResult("abl-combined", text, data=data)


@register("formula1", "Forwarding-latency distribution", "Formula (1)")
def run_formula1(profile: str) -> ExperimentResult:
    """Evaluate formula (1) over a no-DVS run.

    The paper's illustrative triple <40, 80, 5> (us per 100 packets)
    belongs to its testbed's latency scale; the harness keeps the
    formula shape and span but widens the analysis range to bracket the
    model's measured scale, then reports both.
    """
    span = span_for(profile)
    analyzer = DistributionAnalyzer(
        forwarding_latency_formula(span=span, low=0.0, high=1000.0, step=10.0)
    )
    config = RunConfig(
        benchmark="ipfwdr",
        duration_cycles=cycles_for(profile),
        seed=EXPERIMENT_SEED,
        traffic=TrafficConfig(offered_load_mbps=LEVEL_LOADS_MBPS["med"]),
    )
    run_simulation(config, sinks=[analyzer])
    result = analyzer.finish()
    text = (
        f"Formula (1): time(forward[i+{span}]) - time(forward[i])  "
        "in <0, 1000, 10>  (us)\n\n" + result.report(max_rows=14)
    )
    return ExperimentResult(
        "formula1",
        text,
        data={
            "mean_us": result.mean,
            "min_us": result.value_min,
            "max_us": result.value_max,
            "instances": result.total,
        },
    )
