"""Figure 1: power and performance of the Intel IXP NPU family.

Prints the paper's reference table, plus the reproduction model's own
configured operating point for context (the model is an IXP1200-derived
chip scaled to 600 MHz as in the paper's experiments).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import NpuConfig
from repro.experiments.registry import ExperimentResult, register
from repro.power.tables import IXP_FAMILY


@register("fig01", "IXP family power/performance table", "Figure 1")
def run(profile: str) -> ExperimentResult:
    """Render Figure 1 (static reference data; profile is ignored)."""
    headers = (
        "Description",
        "Performance(MIPS)",
        "Media Bandwidth(Gbps)",
        "Frequency of ME(MHz)",
        "Number of MEs",
        "Power(W)",
    )
    rows = [
        (
            point.name,
            point.performance_mips,
            point.media_bandwidth_gbps,
            point.me_frequency_mhz,
            point.num_mes,
            point.power_w,
        )
        for point in IXP_FAMILY
    ]
    npu = NpuConfig()
    rows.append(
        (
            "this model",
            int(npu.num_microengines * npu.me_freq_max_hz / 1e6),
            round(npu.num_ports * npu.port_rate_bps / 1e9, 1),
            int(npu.me_freq_max_hz / 1e6),
            npu.num_microengines,
            "~1.5 (measured)",
        )
    )
    text = format_table(headers, rows, title="Figure 1: Intel IXP NPU family")
    return ExperimentResult(
        "fig01",
        text,
        data={"rows": rows},
    )
