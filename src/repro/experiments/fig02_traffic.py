"""Figure 2: example IP packet distribution over a day.

Reproduces the paper's NLANR edge-router plot — max/median/min observed
throughput per time-of-day bucket across the daytime window the paper
shows (9:47 to 16:43).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.registry import ExperimentResult, register
from repro.traffic.diurnal import DiurnalModel


@register("fig02", "Diurnal IP traffic distribution", "Figure 2")
def run(profile: str) -> ExperimentResult:
    """Sample a synthetic day and render the max/med/min series."""
    model = DiurnalModel()
    start_s = 9 * 3600 + 47 * 60
    end_s = 16 * 3600 + 43 * 60
    samples = 30 if profile != "bench" else 8
    buckets = model.sample_day(
        bucket_s=300.0, samples_per_bucket=samples, start_s=start_s, end_s=end_s
    )
    shown = buckets[:: max(1, len(buckets) // 18)]
    rows = [
        (
            bucket.label,
            f"{bucket.max_bps / 1e6:.1f}",
            f"{bucket.med_bps / 1e6:.1f}",
            f"{bucket.min_bps / 1e6:.1f}",
        )
        for bucket in shown
    ]
    text = format_table(
        ("Time", "Max (Mbit/s)", "Med (Mbit/s)", "Min (Mbit/s)"),
        rows,
        title="Figure 2: day-time packet-rate distribution (synthetic NLANR-like)",
    )
    peak = max(bucket.max_bps for bucket in buckets)
    trough = min(bucket.min_bps for bucket in buckets)
    return ExperimentResult(
        "fig02",
        text,
        data={
            "buckets": [
                (b.start_s, b.min_bps, b.med_bps, b.max_bps) for b in buckets
            ],
            "peak_bps": peak,
            "trough_bps": trough,
        },
    )
