"""Figure 3: the trace event and annotation schema."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.registry import ExperimentResult, register
from repro.trace.annotations import ANNOTATION_DESCRIPTIONS, ANNOTATION_NAMES
from repro.trace.events import EVENT_DESCRIPTIONS, EVENT_TYPES


@register("fig03", "Trace event and annotation types", "Figure 3")
def run(profile: str) -> ExperimentResult:
    """Render the event/annotation tables (static; profile ignored)."""
    events = format_table(
        ("Event type", "Details"),
        [(name, EVENT_DESCRIPTIONS[name]) for name in EVENT_TYPES],
        title="Figure 3 (events)",
    )
    annotations = format_table(
        ("Annotation type", "Details"),
        [(name, ANNOTATION_DESCRIPTIONS[name]) for name in ANNOTATION_NAMES],
        title="Figure 3 (annotations)",
    )
    text = events + "\n\n" + annotations
    return ExperimentResult(
        "fig03",
        text,
        data={"events": list(EVENT_TYPES), "annotations": list(ANNOTATION_NAMES)},
    )
