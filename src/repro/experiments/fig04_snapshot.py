"""Figure 4: a snapshot of a NePSim-style simulation trace.

Runs a short `ipfwdr` simulation with per-chunk pipeline events enabled
and prints the first trace lines in the paper's column format.
"""

from __future__ import annotations

from repro.config import RunConfig, TrafficConfig
from repro.experiments.registry import ExperimentResult, register
from repro.runner import run_simulation
from repro.trace.buffer import TraceBuffer
from repro.trace.writer import format_trace_snapshot


@register("fig04", "Simulation trace snapshot", "Figure 4")
def run(profile: str) -> ExperimentResult:
    """Generate a short trace and render the snapshot."""
    buffer = TraceBuffer(max_events=4000)
    config = RunConfig(
        benchmark="ipfwdr",
        duration_cycles=30_000,
        seed=2005,
        traffic=TrafficConfig(offered_load_mbps=1200.0, process="cbr"),
        pipeline_events="chunk",
    )
    run_simulation(config, sinks=[buffer])
    events = buffer.events
    # Show a window that includes forward events, like the paper's.
    first_forward = next(
        (k for k, event in enumerate(events) if event.name == "forward"), 0
    )
    start = max(0, first_forward - 3)
    window = events[start : start + 14]
    text = (
        "Figure 4: snapshot of a simulation trace\n"
        + format_trace_snapshot(window)
    )
    return ExperimentResult(
        "fig04",
        text,
        data={
            "total_events": len(events),
            "event_names": sorted({event.name for event in events}),
        },
    )
