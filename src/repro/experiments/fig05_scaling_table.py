"""Figure 5: the detailed VF scaling values.

The ladder of frequency/voltage pairs and the frequency-proportional
TDVS traffic thresholds for the 1000 Mbps top threshold — the paper's
exact table (1000, 916, 833, 750, 666 Mbps).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.config import NpuConfig
from repro.dvs.vf_table import VfTable
from repro.experiments.registry import ExperimentResult, register


@register("fig05", "VF ladder and traffic thresholds", "Figure 5")
def run(profile: str) -> ExperimentResult:
    """Render the scaling table (static; profile ignored)."""
    table = VfTable.from_config(NpuConfig())
    rows = table.scaling_table(top_threshold_mbps=1000.0)
    text = format_table(
        ("Frequency (MHz)", "Voltage (V)", "Traffic Threshold (Mbps)"),
        [(f"{f:.0f}", f"{v:.2f}", f"{t:.0f}") for f, v, t in rows],
        title="Figure 5: detailed scaling values (top threshold 1000 Mbps)",
    )
    return ExperimentResult("fig05", text, data={"rows": rows})
