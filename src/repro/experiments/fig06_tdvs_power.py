"""Figure 6: power distributions under TDVS design points.

For each top threshold (800/1000/1200/1400 Mbps) the paper plots the
CDF-style power distribution (LOC formula (2), ``below`` operator) for
window sizes 20k-80k cycles plus the no-DVS baseline.  The qualitative
expectations recorded in DESIGN.md:

* every TDVS point saves power vs. noDVS;
* smaller windows give lower power (more aggressive scaling);
* the 1000 Mbps threshold keeps the highest power of the sweep.
"""

from __future__ import annotations

from repro.analysis.report import format_curve_family
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    tdvs_design_space,
)
from repro.experiments.registry import ExperimentResult, register


@register("fig06", "TDVS power distributions", "Figure 6")
def run(profile: str) -> ExperimentResult:
    """Render one power CDF family per threshold."""
    grid = tdvs_design_space(profile)
    baseline = grid[(None, None)]
    sections = []
    data = {"mean_power_w": {}}
    for threshold in TDVS_THRESHOLDS_MBPS:
        curves = []
        for window in TDVS_WINDOWS_CYCLES:
            run_data = grid[(threshold, window)]
            curves.append((f"{window // 1000}K", run_data.power.curve()))
            data["mean_power_w"][(threshold, window)] = run_data.result.mean_power_w
        curves.append(("noDVS", baseline.power.curve()))
        sections.append(
            format_curve_family(
                curves,
                x_label="Power (W)",
                title=f"Figure 6: power CDF -- threshold {threshold:.0f} Mbps",
            )
        )
    data["mean_power_w"][(None, None)] = baseline.result.mean_power_w
    return ExperimentResult("fig06", "\n\n".join(sections), data=data)
