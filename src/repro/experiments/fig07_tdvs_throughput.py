"""Figure 7: throughput distributions under TDVS design points.

CCDF-style throughput distributions (LOC formula (3), ``above``
operator) for the same design grid as Figure 6.  Expectations:

* 20k windows collapse throughput (transition penalties eat ~30 % of
  each window near threshold-straddling loads);
* 80k windows track the no-DVS throughput closely;
* smaller windows trade throughput for the power saved in Figure 6.
"""

from __future__ import annotations

from repro.analysis.report import format_curve_family
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    tdvs_design_space,
)
from repro.experiments.registry import ExperimentResult, register


@register("fig07", "TDVS throughput distributions", "Figure 7")
def run(profile: str) -> ExperimentResult:
    """Render one throughput CCDF family per threshold."""
    grid = tdvs_design_space(profile)
    baseline = grid[(None, None)]
    sections = []
    data = {"throughput_mbps": {}, "loss_fraction": {}}
    for threshold in TDVS_THRESHOLDS_MBPS:
        curves = []
        for window in TDVS_WINDOWS_CYCLES:
            run_data = grid[(threshold, window)]
            curves.append((f"{window // 1000}K", run_data.throughput.curve()))
            data["throughput_mbps"][(threshold, window)] = (
                run_data.result.throughput_mbps
            )
            data["loss_fraction"][(threshold, window)] = (
                run_data.result.totals.loss_fraction
            )
        curves.append(("noDVS", baseline.throughput.curve()))
        sections.append(
            format_curve_family(
                curves,
                x_label="Throughput (Mbps)",
                title=f"Figure 7: throughput CCDF -- threshold {threshold:.0f} Mbps",
            )
        )
    data["throughput_mbps"][(None, None)] = baseline.result.throughput_mbps
    data["loss_fraction"][(None, None)] = baseline.result.totals.loss_fraction
    return ExperimentResult("fig07", "\n\n".join(sections), data=data)
