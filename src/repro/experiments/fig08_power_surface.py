"""Figure 8: 3-D surface — 80th-percentile power over the design space.

A vertex is the power value below which 80 % of formula (2) instances
fall for a (threshold, window) pair.  The paper reads off: the 1000 Mbps
threshold keeps the highest power; the power-first pick is the 1400 Mbps
threshold with a 40k window.
"""

from __future__ import annotations

from repro.analysis.report import format_surface
from repro.analysis.surface import PercentileSurface
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    tdvs_design_space,
)
from repro.experiments.registry import ExperimentResult, register

#: The curve level the paper's surfaces read off.
SURFACE_LEVEL = 0.8


def build_power_surface(profile: str) -> PercentileSurface:
    """The Figure 8 surface from the shared design-space grid."""
    grid = tdvs_design_space(profile)
    surface = PercentileSurface(
        TDVS_THRESHOLDS_MBPS,
        TDVS_WINDOWS_CYCLES,
        level=SURFACE_LEVEL,
        row_label="threshold (Mbps)",
        col_label="window (cycles)",
        value_label="power (W)",
    )
    for threshold in TDVS_THRESHOLDS_MBPS:
        for window in TDVS_WINDOWS_CYCLES:
            surface.add(threshold, window, grid[(threshold, window)].power)
    return surface


@register("fig08", "80th-percentile power surface", "Figure 8")
def run(profile: str) -> ExperimentResult:
    """Render the power surface and its optima."""
    surface = build_power_surface(profile)
    text = format_surface(
        surface.row_values,
        surface.col_values,
        surface.grid(),
        row_label="thr Mbps",
        col_label="window",
        title="Figure 8: power (W) at the 80% CDF level",
    )
    low_thr, low_win, low_val = surface.argmin()
    text += (
        f"\n\nlowest-power design point: threshold {low_thr:.0f} Mbps, "
        f"window {low_win} cycles ({low_val:.3f} W)"
    )
    return ExperimentResult(
        "fig08",
        text,
        data={
            "grid": surface.grid(),
            "argmin": (low_thr, low_win, low_val),
            "argmax": surface.argmax(),
        },
    )
