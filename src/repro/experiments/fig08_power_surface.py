"""Figure 8: 3-D surface — 80th-percentile power over the design space.

A vertex is the power value below which 80 % of formula (2) instances
fall for a (threshold, window) pair.  The paper reads off: the 1000 Mbps
threshold keeps the highest power; the power-first pick is the 1400 Mbps
threshold with a 40k window.
"""

from __future__ import annotations

from repro.analysis.report import format_surface
from repro.analysis.surface import PercentileSurface
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    tdvs_design_space,
)
from repro.experiments.registry import ExperimentResult, register
from repro.studies.objective import select_design_point

#: The curve level the paper's surfaces read off.
SURFACE_LEVEL = 0.8


def surface_optimum(surface: PercentileSurface, direction: str):
    """Read a surface optimum off through the study reduction.

    Row-major cell order with first-wins ties — the same deterministic
    :func:`~repro.studies.objective.select_design_point` rule the study
    engine applies to per-scenario winners, so figure read-offs and
    policy-map winners can never disagree on tie-breaking.  Like
    ``PercentileSurface.argmin``/``argmax``, it tolerates a partially
    filled surface by reading only the populated cells.
    """
    cells = [
        ((row, col), surface.value_at(row, col))
        for row in surface.row_values
        for col in surface.col_values
        if surface.has_result(row, col)
    ]
    (row, col), value = select_design_point(cells, direction)
    return row, col, value


def build_power_surface(profile: str) -> PercentileSurface:
    """The Figure 8 surface from the shared design-space grid."""
    grid = tdvs_design_space(profile)
    surface = PercentileSurface(
        TDVS_THRESHOLDS_MBPS,
        TDVS_WINDOWS_CYCLES,
        level=SURFACE_LEVEL,
        row_label="threshold (Mbps)",
        col_label="window (cycles)",
        value_label="power (W)",
    )
    for threshold in TDVS_THRESHOLDS_MBPS:
        for window in TDVS_WINDOWS_CYCLES:
            surface.add(threshold, window, grid[(threshold, window)].power)
    return surface


@register("fig08", "80th-percentile power surface", "Figure 8")
def run(profile: str) -> ExperimentResult:
    """Render the power surface and its optima."""
    surface = build_power_surface(profile)
    text = format_surface(
        surface.row_values,
        surface.col_values,
        surface.grid(),
        row_label="thr Mbps",
        col_label="window",
        title="Figure 8: power (W) at the 80% CDF level",
    )
    low_thr, low_win, low_val = surface_optimum(surface, "min")
    text += (
        f"\n\nlowest-power design point: threshold {low_thr:.0f} Mbps, "
        f"window {low_win} cycles ({low_val:.3f} W)"
    )
    return ExperimentResult(
        "fig08",
        text,
        data={
            "grid": surface.grid(),
            "argmin": (low_thr, low_win, low_val),
            "argmax": surface_optimum(surface, "max"),
        },
    )
