"""Figure 9: 3-D surface — 80th-percentile throughput over the design space.

A vertex is the throughput value above which 80 % of formula (3)
instances fall for a (threshold, window) pair.  The paper reads off: at
small windows all thresholds perform alike; at large windows the
1000 Mbps threshold pulls ahead — the performance-first pick is
1000 Mbps with an 80k window.
"""

from __future__ import annotations

from repro.analysis.report import format_surface
from repro.analysis.surface import PercentileSurface
from repro.experiments.common import (
    TDVS_THRESHOLDS_MBPS,
    TDVS_WINDOWS_CYCLES,
    tdvs_design_space,
)
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.fig08_power_surface import SURFACE_LEVEL, surface_optimum


def build_throughput_surface(profile: str) -> PercentileSurface:
    """The Figure 9 surface from the shared design-space grid."""
    grid = tdvs_design_space(profile)
    surface = PercentileSurface(
        TDVS_THRESHOLDS_MBPS,
        TDVS_WINDOWS_CYCLES,
        level=SURFACE_LEVEL,
        row_label="threshold (Mbps)",
        col_label="window (cycles)",
        value_label="throughput (Mbps)",
    )
    for threshold in TDVS_THRESHOLDS_MBPS:
        for window in TDVS_WINDOWS_CYCLES:
            surface.add(threshold, window, grid[(threshold, window)].throughput)
    return surface


@register("fig09", "80th-percentile throughput surface", "Figure 9")
def run(profile: str) -> ExperimentResult:
    """Render the throughput surface and its optima."""
    surface = build_throughput_surface(profile)
    text = format_surface(
        surface.row_values,
        surface.col_values,
        surface.grid(),
        row_label="thr Mbps",
        col_label="window",
        title="Figure 9: throughput (Mbps) at the 80% CCDF level",
    )
    hi_thr, hi_win, hi_val = surface_optimum(surface, "max")
    text += (
        f"\n\nbest-throughput design point: threshold {hi_thr:.0f} Mbps, "
        f"window {hi_win} cycles ({hi_val:.0f} Mbps)"
    )
    return ExperimentResult(
        "fig09",
        text,
        data={
            "grid": surface.grid(),
            "argmax": (hi_thr, hi_win, hi_val),
            "argmin": surface_optimum(surface, "min"),
        },
    )
