"""Figure 10: EDVS power and throughput distributions.

`ipfwdr` at the high traffic sample, idle threshold 10 %, window sizes
20k-80k ME cycles, plus the no-DVS baseline.  The paper observes roughly
23 % power reduction (~1.5 W -> ~1.15 W) with nearly no throughput loss,
and that transmit MEs never scale down.
"""

from __future__ import annotations

from repro.analysis.report import format_curve_family
from repro.config import DvsConfig
from repro.experiments.common import (
    EDVS_IDLE_THRESHOLD,
    EDVS_WINDOWS_CYCLES,
    as_instrumented,
    instrumented_job,
)
from repro.experiments.registry import ExperimentResult, register
from repro.api import default_session


@register("fig10", "EDVS power and throughput distributions", "Figure 10")
def run(profile: str) -> ExperimentResult:
    """Run the EDVS window sweep (via the sweep engine) and render both
    distribution families."""
    jobs = [instrumented_job(profile, level="high")]
    for window in EDVS_WINDOWS_CYCLES:
        dvs = DvsConfig(
            policy="edvs",
            window_cycles=window,
            idle_threshold=EDVS_IDLE_THRESHOLD,
        )
        jobs.append(instrumented_job(profile, level="high", dvs=dvs))
    outcomes = default_session().sweep(jobs)
    baseline = as_instrumented(outcomes[0])
    runs = {
        window: as_instrumented(outcome)
        for window, outcome in zip(EDVS_WINDOWS_CYCLES, outcomes[1:])
    }

    power_curves = [
        (f"{w // 1000}K", runs[w].power.curve()) for w in EDVS_WINDOWS_CYCLES
    ]
    power_curves.append(("noDVS", baseline.power.curve()))
    throughput_curves = [
        (f"{w // 1000}K", runs[w].throughput.curve()) for w in EDVS_WINDOWS_CYCLES
    ]
    throughput_curves.append(("noDVS", baseline.throughput.curve()))

    text = (
        format_curve_family(
            throughput_curves,
            x_label="Throughput (Mbps)",
            title="Figure 10 (left): throughput CCDF under EDVS",
        )
        + "\n\n"
        + format_curve_family(
            power_curves,
            x_label="Power (W)",
            title="Figure 10 (right): power CDF under EDVS",
        )
    )

    data = {
        "baseline_power_w": baseline.result.mean_power_w,
        "baseline_throughput_mbps": baseline.result.throughput_mbps,
        "edvs_power_w": {w: runs[w].result.mean_power_w for w in runs},
        "edvs_throughput_mbps": {
            w: runs[w].result.throughput_mbps for w in runs
        },
        "savings": {
            w: 1.0 - runs[w].result.mean_power_w / baseline.result.mean_power_w
            for w in runs
        },
        # Transmit MEs must never scale down: their clocks stay at max.
        "tx_me_freq_changes": {
            w: [
                me.freq_changes
                for me in runs[w].result.totals.me_summaries
                if me.role == "tx"
            ]
            for w in runs
        },
    }
    summary_lines = [
        f"window {w // 1000}K: power {runs[w].result.mean_power_w:.3f} W "
        f"(saving {data['savings'][w] * 100:.1f}%), throughput "
        f"{runs[w].result.throughput_mbps:.0f} Mbps"
        for w in EDVS_WINDOWS_CYCLES
    ]
    summary_lines.append(
        f"noDVS: power {baseline.result.mean_power_w:.3f} W, throughput "
        f"{baseline.result.throughput_mbps:.0f} Mbps"
    )
    text += "\n\n" + "\n".join(summary_lines)
    return ExperimentResult("fig10", text, data=data)
