"""Figure 11: noDVS / EDVS / TDVS power comparison.

All four benchmarks at the low/medium/high traffic samples, each policy
at its optimal configuration from the Section 4.1/4.2 analyses (TDVS:
1400 Mbps top threshold, 40k window — the power-first pick; EDVS: 10 %
idle threshold, 40k window).  Expected qualitative outcomes:

* TDVS saves more power than EDVS overall;
* TDVS savings shrink as traffic volume rises, EDVS stays steady;
* `nat` sees ~no EDVS savings (no memory accesses to idle on);
* memory-intensive benchmarks benefit most from EDVS;
* EDVS throughput loss ~none, TDVS within a few percent.
"""

from __future__ import annotations

from repro.analysis.compare import PolicyComparison, PolicyOutcome
from repro.config import DvsConfig
from repro.experiments.common import as_instrumented, instrumented_job
from repro.experiments.registry import ExperimentResult, register
from repro.api import default_session

BENCHMARKS = ("ipfwdr", "url", "nat", "md4")
LEVELS = ("low", "med", "high")

#: Optimal configurations carried over from the design-space analyses.
TDVS_OPTIMAL = DvsConfig(policy="tdvs", window_cycles=40_000, top_threshold_mbps=1400.0)
EDVS_OPTIMAL = DvsConfig(policy="edvs", window_cycles=40_000, idle_threshold=0.10)

#: The policy axis, in render order.
POLICY_POINTS = (
    ("none", None),
    ("edvs", EDVS_OPTIMAL),
    ("tdvs", TDVS_OPTIMAL),
)


def build_comparison(profile: str) -> PolicyComparison:
    """Run the full 4 x 3 x 3 grid through the sweep engine."""
    cells = [
        (benchmark, level, policy, dvs)
        for benchmark in BENCHMARKS
        for level in LEVELS
        for policy, dvs in POLICY_POINTS
    ]
    jobs = [
        instrumented_job(profile, benchmark=benchmark, level=level, dvs=dvs)
        for benchmark, level, _policy, dvs in cells
    ]
    outcomes = default_session().sweep(jobs)
    comparison = PolicyComparison(BENCHMARKS, LEVELS)
    for (benchmark, level, policy, _dvs), outcome in zip(cells, outcomes):
        run_data = as_instrumented(outcome)
        comparison.add(
            benchmark,
            level,
            PolicyOutcome(
                policy=policy,
                mean_power_w=run_data.result.mean_power_w,
                throughput_mbps=run_data.result.throughput_mbps,
                loss_fraction=run_data.result.totals.loss_fraction,
                power_distribution=run_data.power,
            ),
        )
    return comparison


@register("fig11", "Policy comparison across benchmarks/traffic", "Figure 11")
def run(profile: str) -> ExperimentResult:
    """Run the comparison grid and render the panel."""
    comparison = build_comparison(profile)
    text = comparison.render(
        title="Figure 11: power comparison, optimal configs (vs. noDVS)"
    )
    data = {
        "tdvs_savings": {
            b: comparison.tdvs_savings_by_level(b) for b in BENCHMARKS
        },
        "edvs_savings": {
            b: comparison.edvs_savings_by_level(b) for b in BENCHMARKS
        },
    }
    return ExperimentResult("fig11", text, data=data)
