"""Section 4.2 idle-time observation.

The paper justifies EDVS's 10 % idle threshold with a distribution
analysis: "for receiving MEs, in around 90% of the total simulation
time, idle time is either under 5%, or between 30% and 40%, indicating
two modes of operation.  For transmitting MEs, idle time is almost
always under 5%."

This experiment samples per-window idle fractions of every ME during a
no-DVS `ipfwdr` run at the high traffic sample and reports the fraction
of windows in the paper's three bands (<5 %, 5-30 %, >=30 %) per ME role.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.config import RunConfig, TrafficConfig
from repro.experiments.common import EXPERIMENT_SEED, LEVEL_LOADS_MBPS, cycles_for
from repro.experiments.registry import ExperimentResult, register
from repro.runner import SimulationRun

#: Idle observation window (cycles of each ME's clock).
WINDOW_CYCLES = 40_000

#: Band edges used in the report (fractions of a window).
BANDS = ((0.0, 0.05), (0.05, 0.30), (0.30, 1.01))
BAND_LABELS = ("<5%", "5-30%", ">=30%")


def collect_idle_windows(profile: str) -> Dict[str, List[float]]:
    """Per-role lists of per-window idle fractions from a no-DVS run."""
    config = RunConfig(
        benchmark="ipfwdr",
        duration_cycles=cycles_for(profile),
        seed=EXPERIMENT_SEED,
        traffic=TrafficConfig(offered_load_mbps=LEVEL_LOADS_MBPS["high"]),
    )
    sim_run = SimulationRun(config)
    samples: Dict[str, List[float]] = {"rx": [], "tx": []}

    def sample(me) -> None:
        samples[me.role].append(me.idle_fraction_window())
        me.reset_window()
        sim_run.sim.schedule(
            me.clock.delay_for_cycles(WINDOW_CYCLES), sample, me
        )

    for me in sim_run.chip.mes:
        sim_run.sim.schedule(me.clock.delay_for_cycles(WINDOW_CYCLES), sample, me)
    sim_run.run()
    return samples


@register("idle", "Per-window ME idle-time distribution", "Section 4.2")
def run(profile: str) -> ExperimentResult:
    """Measure and band the per-window idle fractions."""
    samples = collect_idle_windows(profile)
    rows = []
    data = {}
    for role in ("rx", "tx"):
        windows = samples[role]
        total = len(windows) or 1
        fractions = []
        for low, high in BANDS:
            count = sum(1 for value in windows if low <= value < high)
            fractions.append(count / total)
        rows.append(
            (role, len(windows))
            + tuple(f"{fraction * 100:.1f}%" for fraction in fractions)
        )
        data[role] = dict(zip(BAND_LABELS, fractions))
    text = format_table(
        ("ME role", "windows") + BAND_LABELS,
        rows,
        title=(
            "Idle-time distribution per observation window "
            f"({WINDOW_CYCLES} cycles, ipfwdr, high traffic, no DVS)"
        ),
    )
    return ExperimentResult("idle", text, data=data)
