"""Experiment registry: ids, titles, runners.

Experiments register themselves at import; :func:`get_experiment`
triggers the imports lazily so ``import repro`` stays cheap.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.errors import ExperimentError

#: Modules that register experiments when imported.
_EXPERIMENT_MODULES = (
    "repro.experiments.fig01_ixp_table",
    "repro.experiments.fig02_traffic",
    "repro.experiments.fig03_schema",
    "repro.experiments.fig04_snapshot",
    "repro.experiments.fig05_scaling_table",
    "repro.experiments.fig06_tdvs_power",
    "repro.experiments.fig07_tdvs_throughput",
    "repro.experiments.fig08_power_surface",
    "repro.experiments.fig09_throughput_surface",
    "repro.experiments.fig10_edvs",
    "repro.experiments.fig11_policy_comparison",
    "repro.experiments.idle_time",
    "repro.experiments.ablations",
    "repro.experiments.extensions",
)


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def json_data(self) -> Dict[str, Any]:
        """``data`` with JSON-safe keys/values.

        Sweep results are keyed by tuples like ``(threshold, window)``;
        JSON objects need string keys, so tuples join with ``/`` and the
        no-DVS baseline key ``(None, None)`` becomes ``"noDVS"``.
        """
        return _jsonify(self.data)

    def to_json(self, indent: int = 2) -> str:
        """Serialize id + data (not the rendered text) as JSON."""
        import json

        return json.dumps(
            {"experiment_id": self.experiment_id, "data": self.json_data()},
            indent=indent,
            sort_keys=True,
        )


def _jsonify(value: Any) -> Any:
    if isinstance(value, dict):
        return {_json_key(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def _json_key(key: Any) -> str:
    if isinstance(key, tuple):
        if all(part is None for part in key):
            return "noDVS"
        return "/".join(_json_key(part) for part in key)
    if isinstance(key, float) and key == int(key):
        return str(int(key))
    return str(key)


@dataclass
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_ref: str
    runner: Callable[[str], ExperimentResult]

    def run(self, profile: str = "quick", session=None) -> ExperimentResult:
        """Execute with the named profile (``quick`` or ``paper``).

        ``session`` (a :class:`repro.api.Session`) scopes the run to
        that session's execution policy — the grids inside the runner
        then fan out per the policy's backend/worker settings.
        """
        if session is not None:
            return session.experiment(self.experiment_id, profile=profile)
        return self.runner(profile)


_REGISTRY: Dict[str, Experiment] = {}
_LOADED = False


def register(experiment_id: str, title: str, paper_ref: str):
    """Decorator: register ``runner(profile) -> ExperimentResult``."""

    def wrap(runner: Callable[[str], ExperimentResult]) -> Callable:
        _REGISTRY[experiment_id] = Experiment(experiment_id, title, paper_ref, runner)
        return runner

    return wrap


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    for module_name in _EXPERIMENT_MODULES:
        importlib.import_module(module_name)
    _LOADED = True


def list_experiments() -> List[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment by id."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def run_experiment(
    experiment_id: str, profile: str = "quick", session=None
) -> ExperimentResult:
    """Run one experiment by id (optionally under a session's policy)."""
    return get_experiment(experiment_id).run(profile, session=session)
