"""Logic of Constraints (LOC) assertions over simulation traces.

This subpackage implements the paper's assertion-based analysis
methodology end to end:

* a lexer/parser for LOC formulas (:mod:`~repro.loc.parser`), covering
  both **checker** formulas (``cycle(deq[i]) - cycle(enq[i]) <= 50``)
  and **distribution** formulas with the paper's three extended
  operators, spelled ``in`` / ``below`` / ``above`` here::

      (energy(forward[i+100]) - energy(forward[i])) /
      (time(forward[i+100]) - time(forward[i]))  below <0.5, 2.25, 0.01>

  ``in``     bins values into ``(-inf, min], (min, min+step], ... (max, +inf)``;
  ``below``  reports, for each cutoff, the fraction of instances **<=** it
             (the CDF view used for the paper's power plots);
  ``above``  reports the fraction of instances **>=** each cutoff
             (the CCDF view used for the throughput plots).

* a streaming **checker** reporting assertion violations with bounded
  memory (:mod:`~repro.loc.checker`);
* a streaming **distribution analyzer** (:mod:`~repro.loc.analyzer`);
* a **code generator** that emits a standalone, dependency-free Python
  analyzer for a formula (:mod:`~repro.loc.codegen`) — the paper's
  "automatically generated, simulation-language-independent" tooling;
* the paper's formulas (1)-(3) as ready-made builders
  (:mod:`~repro.loc.builtin`).
"""

from repro.loc.analyzer import DistributionAnalyzer, DistributionResult
from repro.loc.ast_nodes import (
    AnnotationRef,
    BinaryOp,
    CheckerFormula,
    DistributionFormula,
    IndexExpr,
    Negate,
    Number,
)
from repro.loc.builtin import (
    forwarding_latency_formula,
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.checker import CheckResult, Violation, build_checker
from repro.loc.codegen import generate_analyzer_source
from repro.loc.evaluator import StreamingEvaluator
from repro.loc.lexer import Token, tokenize
from repro.loc.parser import parse_formula

__all__ = [
    "AnnotationRef",
    "BinaryOp",
    "CheckResult",
    "CheckerFormula",
    "DistributionAnalyzer",
    "DistributionFormula",
    "DistributionResult",
    "IndexExpr",
    "Negate",
    "Number",
    "StreamingEvaluator",
    "Token",
    "Violation",
    "build_checker",
    "forwarding_latency_formula",
    "generate_analyzer_source",
    "parse_formula",
    "power_distribution_formula",
    "throughput_distribution_formula",
    "tokenize",
]
