"""Logic of Constraints (LOC) assertions over simulation traces.

This subpackage implements the paper's assertion-based analysis
methodology end to end:

* a lexer/parser for LOC formulas (:mod:`~repro.loc.parser`), covering
  both **checker** formulas (``cycle(deq[i]) - cycle(enq[i]) <= 50``)
  and **distribution** formulas with the paper's three extended
  operators, spelled ``in`` / ``below`` / ``above`` here::

      (energy(forward[i+100]) - energy(forward[i])) /
      (time(forward[i+100]) - time(forward[i]))  below <0.5, 2.25, 0.01>

  ``in``     bins values into ``(-inf, min], (min, min+step], ... (max, +inf)``;
  ``below``  reports, for each cutoff, the fraction of instances **<=** it
             (the CDF view used for the paper's power plots);
  ``above``  reports the fraction of instances **>=** each cutoff
             (the CCDF view used for the throughput plots).

* a streaming **checker** reporting assertion violations with bounded
  memory (:mod:`~repro.loc.checker`);
* a streaming **distribution analyzer** (:mod:`~repro.loc.analyzer`);
* **online monitors** (:mod:`~repro.loc.monitor`): the default
  simulation-time checking path — formulas compiled to closure-based
  ring-buffer monitors (:func:`~repro.loc.monitor.build_monitor`) that
  subscribe directly to the run's :class:`~repro.trace.bus.TraceBus`,
  with the interpretive evaluator kept as a proven-equivalent fallback
  (``REPRO_LOC_MONITOR=interpreted``);
* a **code generator** that emits a standalone, dependency-free Python
  analyzer for a formula, and the online-monitor compiler behind the
  monitor API (:mod:`~repro.loc.codegen`) — the paper's
  "automatically generated, simulation-language-independent" tooling;
* the paper's formulas (1)-(3) as ready-made builders
  (:mod:`~repro.loc.builtin`).
"""

from repro.loc.analyzer import DistributionAnalyzer, DistributionResult
from repro.loc.ast_nodes import (
    AnnotationRef,
    BinaryOp,
    CheckerFormula,
    DistributionFormula,
    IndexExpr,
    Negate,
    Number,
)
from repro.loc.builtin import (
    forwarding_latency_formula,
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.checker import CheckResult, Violation, build_checker, check_trace
from repro.loc.codegen import (
    compile_monitor_feed,
    generate_analyzer_source,
    generate_monitor_source,
    monitor_event,
)
from repro.loc.evaluator import StreamingEvaluator
from repro.loc.lexer import Token, tokenize
from repro.loc.monitor import (
    MONITOR_MODE_ENV_VAR,
    CompiledMonitor,
    InterpretedMonitor,
    build_monitor,
    resolve_monitor_mode,
    run_monitor,
)
from repro.loc.parser import parse_formula

__all__ = [
    "AnnotationRef",
    "BinaryOp",
    "CheckResult",
    "CheckerFormula",
    "CompiledMonitor",
    "DistributionAnalyzer",
    "DistributionFormula",
    "DistributionResult",
    "IndexExpr",
    "InterpretedMonitor",
    "MONITOR_MODE_ENV_VAR",
    "Negate",
    "Number",
    "StreamingEvaluator",
    "Token",
    "Violation",
    "build_checker",
    "build_monitor",
    "check_trace",
    "compile_monitor_feed",
    "forwarding_latency_formula",
    "generate_analyzer_source",
    "generate_monitor_source",
    "monitor_event",
    "parse_formula",
    "power_distribution_formula",
    "resolve_monitor_mode",
    "run_monitor",
    "throughput_distribution_formula",
    "tokenize",
]
