"""Distribution analyzers: the paper's extended LOC operators.

A distribution formula ``expr MODE <min, max, step>`` generates an
analyzer that evaluates ``expr`` for every instance ``i`` and reports how
the values distribute over ranges derived from the triple:

``in``
    disjoint bins ``(-inf, min], (min, min+step], ..., (max-step, max],
    (max, +inf)`` — a histogram;
``below``
    nested ranges ``(-inf, min], (-inf, min+step], ..., (-inf, max]`` —
    for each cutoff, the fraction of instances at or below it (CDF view);
``above``
    nested ranges ``[min, +inf), [min+step, +inf), ..., [max, +inf)`` —
    for each cutoff, the fraction of instances at or above it (CCDF view).

The paper's Figures 6/7/10/11 plot exactly these ``below``/``above``
curves; Figures 8/9 take the 80 % level of them.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import AnalysisError, LocError
from repro.loc.ast_nodes import DistributionFormula
from repro.loc.evaluator import StreamingEvaluator
from repro.loc.parser import parse_formula
from repro.trace.events import TraceEvent


def build_edges(low: float, high: float, step: float) -> List[float]:
    """Cutoff values ``[low, low+step, ..., high]`` from a LOC triple.

    The number of steps is rounded so that triples like ``<0.5, 2.25,
    0.01>`` produce exactly 176 cutoffs despite float representation.
    """
    if step <= 0:
        raise AnalysisError(f"step must be positive, got {step:g}")
    if high < low:
        raise AnalysisError(f"max {high:g} below min {low:g}")
    count = int(round((high - low) / step))
    edges = [low + k * step for k in range(count)]
    edges.append(high)  # exact endpoint, immune to accumulation drift
    return edges


@dataclass
class DistributionResult:
    """Binned distribution of a formula's instance values.

    ``counts`` has ``len(edges) + 1`` entries; entry ``k`` is the number
    of values in bin ``k`` under the mode's bin semantics (see module
    docstring).  Raw-value summary statistics are kept so reports can
    show mean/min/max alongside the binned view.
    """

    formula_text: str
    mode: str
    edges: List[float]
    counts: List[int]
    total: int
    undefined: int
    value_min: float
    value_max: float
    value_sum: float

    # -- scalar summaries ----------------------------------------------
    @property
    def mean(self) -> float:
        """Arithmetic mean of all defined instance values."""
        if self.total == 0:
            raise AnalysisError("no instances were evaluated")
        return self.value_sum / self.total

    # -- curve views -----------------------------------------------------
    def fraction_at_or_below(self, cutoff_index: int) -> float:
        """Fraction of values ``<= edges[cutoff_index]``."""
        self._require_total()
        return sum(self.counts[: cutoff_index + 1]) / self.total

    def fraction_at_or_above(self, cutoff_index: int) -> float:
        """Fraction of values ``>= edges[cutoff_index]`` (``above`` mode)."""
        self._require_total()
        if self.mode != "above":
            raise AnalysisError(
                "fraction_at_or_above requires an 'above'-mode result "
                f"(bins are half-open the other way in {self.mode!r} mode)"
            )
        return sum(self.counts[cutoff_index + 1 :]) / self.total

    def curve(self) -> List[Tuple[float, float]]:
        """The ``(cutoff, fraction)`` series the paper plots.

        ``below``/``in`` modes return the CDF; ``above`` returns the CCDF.
        """
        self._require_total()
        if self.mode == "above":
            return [
                (edge, self.fraction_at_or_above(k))
                for k, edge in enumerate(self.edges)
            ]
        return [
            (edge, self.fraction_at_or_below(k)) for k, edge in enumerate(self.edges)
        ]

    def histogram(self) -> List[Tuple[str, float]]:
        """Per-bin fractions with interval labels (the ``in`` view)."""
        self._require_total()
        labels = self._bin_labels()
        return [(label, count / self.total) for label, count in zip(labels, self.counts)]

    # -- percentile extraction (Figures 8/9) -----------------------------
    def level_cutoff(self, level: float) -> float:
        """Smallest/largest cutoff where the curve reaches ``level``.

        For CDF-style results: the smallest cutoff ``c`` with
        ``frac(value <= c) >= level`` (Figure 8's "80 % of instances are
        lower than this power").  For CCDF-style results: the largest
        cutoff ``c`` with ``frac(value >= c) >= level`` (Figure 9).

        Raises if the level is never reached inside the analysis range.
        """
        if not 0.0 < level <= 1.0:
            raise AnalysisError(f"level must be in (0, 1], got {level:g}")
        self._require_total()
        if self.mode == "above":
            best: Optional[float] = None
            for k, edge in enumerate(self.edges):
                if self.fraction_at_or_above(k) >= level:
                    best = edge
                else:
                    break
            if best is None:
                raise AnalysisError(
                    f"CCDF never reaches level {level:g} within the range"
                )
            return best
        for k, edge in enumerate(self.edges):
            if self.fraction_at_or_below(k) >= level:
                return edge
        raise AnalysisError(f"CDF never reaches level {level:g} within the range")

    # -- reporting --------------------------------------------------------
    def report(self, max_rows: Optional[int] = 12) -> str:
        """Multi-line text report (the generated-analyzer output format)."""
        lines = [
            f"LOC distribution: {self.formula_text}",
            f"  mode      : {self.mode}",
            f"  instances : {self.total}"
            + (f" (+{self.undefined} undefined)" if self.undefined else ""),
        ]
        if self.total:
            lines.append(
                f"  value range [{self.value_min:g}, {self.value_max:g}], "
                f"mean {self.mean:g}"
            )
            rows: Sequence[Tuple[str, float]]
            if self.mode == "in":
                # Histograms are often concentrated: show the populated
                # bins first, padding with empty neighbours only if room
                # remains.
                rows = self.histogram()
                populated = [row for row in rows if row[1] > 0]
                if max_rows is not None and populated:
                    rows = populated
            else:
                rows = [(f"{cutoff:g}", frac) for cutoff, frac in self.curve()]
            shown = rows if max_rows is None else _thin(rows, max_rows)
            for label, fraction in shown:
                lines.append(f"    {label:>18} : {fraction * 100:6.2f}%")
        return "\n".join(lines)

    # -- internals -------------------------------------------------------
    def _bin_labels(self) -> List[str]:
        edges = self.edges
        if self.mode == "above":
            labels = [f"(-inf, {edges[0]:g})"]
            labels += [
                f"[{edges[k - 1]:g}, {edges[k]:g})" for k in range(1, len(edges))
            ]
            labels.append(f"[{edges[-1]:g}, +inf)")
        else:
            labels = [f"(-inf, {edges[0]:g}]"]
            labels += [
                f"({edges[k - 1]:g}, {edges[k]:g}]" for k in range(1, len(edges))
            ]
            labels.append(f"({edges[-1]:g}, +inf)")
        return labels

    def _require_total(self) -> None:
        if self.total == 0:
            raise AnalysisError(
                f"no instances were evaluated for {self.formula_text!r}"
            )


def _thin(rows: Sequence, max_rows: int) -> List:
    """Evenly subsample rows for display, always keeping the endpoints."""
    if len(rows) <= max_rows:
        return list(rows)
    stride = (len(rows) - 1) / (max_rows - 1)
    return [rows[round(k * stride)] for k in range(max_rows)]


class DistributionAnalyzer:
    """Streaming analyzer for one distribution formula.

    Usable directly as a trace sink (``emit``); call :meth:`finish` to
    obtain the :class:`DistributionResult`.
    """

    def __init__(self, formula: Union[str, DistributionFormula]):
        if isinstance(formula, str):
            parsed = parse_formula(formula)
        else:
            parsed = formula
        if not isinstance(parsed, DistributionFormula):
            raise LocError(
                "expected a distribution formula (in/below/above <...>); "
                "got a checker formula — use build_checker for those"
            )
        self.formula = parsed
        self.edges = build_edges(parsed.low, parsed.high, parsed.step)
        self._counts = [0] * (len(self.edges) + 1)
        self._total = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0
        self._evaluator = StreamingEvaluator(parsed)

    def emit(self, event: TraceEvent) -> None:
        """Trace-sink interface: consume one event."""
        for _instance, (value,) in self._evaluator.feed(event):
            self.observe(value)

    def observe(self, value: float) -> None:
        """Record one instance value directly (used by tests/codegen)."""
        if math.isnan(value):
            return  # counted via the evaluator's undefined counter
        if self.formula.mode == "above":
            bin_index = bisect_right(self.edges, value)
        else:
            bin_index = bisect_left(self.edges, value)
        self._counts[bin_index] += 1
        self._total += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def instances_so_far(self) -> int:
        """Number of defined instances observed so far."""
        return self._total

    def finish(self) -> DistributionResult:
        """Snapshot the accumulated distribution."""
        return DistributionResult(
            formula_text=self.formula.unparse(),
            mode=self.formula.mode,
            edges=list(self.edges),
            counts=list(self._counts),
            total=self._total,
            undefined=self._evaluator.undefined_instances,
            value_min=self._min if self._total else math.nan,
            value_max=self._max if self._total else math.nan,
            value_sum=self._sum,
        )


def analyze_trace(
    formula: Union[str, DistributionFormula],
    events: Iterable[TraceEvent],
    mode: Optional[str] = None,
) -> DistributionResult:
    """Run a distribution analysis over an event iterable.

    Routes through :func:`repro.loc.monitor.build_monitor`, so offline
    trace analysis gets the compiled fast path too; ``mode`` (or
    ``REPRO_LOC_MONITOR``) selects the interpretive fallback.
    """
    from repro.loc.monitor import build_monitor, run_monitor

    monitor = build_monitor(formula, mode=mode, expect="distribution")
    return run_monitor(monitor, events)
