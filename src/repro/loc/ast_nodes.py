"""AST node classes for parsed LOC formulas.

The AST is deliberately tiny and immutable-ish; evaluation strategies
(streaming interpreter, code generator) walk it without modifying it.

Node taxonomy::

    Formula
      CheckerFormula(lhs, op, rhs)            cycle(deq[i]) - cycle(enq[i]) <= 50
      DistributionFormula(expr, mode, triple) power_expr below <0.5, 2.25, 0.01>

    Expr
      Number(value)
      AnnotationRef(annotation, event, index)
      BinaryOp(op, left, right)               op in + - * /
      Negate(operand)

    IndexExpr(offset, absolute)               i+100, i, or a constant 3
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Tuple

#: Relational operators allowed in checker formulas.
CHECKER_OPS = ("<=", "<", ">=", ">", "==", "!=")

#: Distribution modes and their report semantics.
DIST_MODES = ("in", "below", "above")


class IndexExpr:
    """Index expression inside ``event[...]``: ``i``, ``i±k`` or constant.

    Attributes
    ----------
    offset:
        The constant ``k`` (0 for plain ``i``), or the absolute instance
        number when :attr:`absolute` is true.
    absolute:
        True when the index does not mention ``i`` at all.
    """

    __slots__ = ("offset", "absolute")

    def __init__(self, offset: int, absolute: bool = False):
        self.offset = int(offset)
        self.absolute = bool(absolute)

    def resolve(self, i: int) -> int:
        """Instance number referenced for formula instance ``i``."""
        return self.offset if self.absolute else i + self.offset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexExpr):
            return NotImplemented
        return (self.offset, self.absolute) == (other.offset, other.absolute)

    def __hash__(self) -> int:
        return hash((self.offset, self.absolute))

    def unparse(self) -> str:
        """Render back to formula syntax."""
        if self.absolute:
            return str(self.offset)
        if self.offset == 0:
            return "i"
        sign = "+" if self.offset > 0 else "-"
        return f"i{sign}{abs(self.offset)}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IndexExpr({self.unparse()!r})"


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    def refs(self) -> Iterator["AnnotationRef"]:
        """Yield every :class:`AnnotationRef` in the subtree."""
        raise NotImplementedError

    def unparse(self) -> str:
        """Render back to formula syntax."""
        raise NotImplementedError


class Number(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def refs(self) -> Iterator["AnnotationRef"]:
        return iter(())

    def unparse(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Number({self.value})"


class AnnotationRef(Expr):
    """``annotation(event[index])`` — e.g. ``energy(forward[i+100])``."""

    __slots__ = ("annotation", "event", "index")

    def __init__(self, annotation: str, event: str, index: IndexExpr):
        self.annotation = annotation
        self.event = event
        self.index = index

    def refs(self) -> Iterator["AnnotationRef"]:
        yield self

    def unparse(self) -> str:
        return f"{self.annotation}({self.event}[{self.index.unparse()}])"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AnnotationRef({self.unparse()!r})"


class BinaryOp(Expr):
    """Arithmetic node: ``left op right`` with ``op`` in ``+ - * /``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in ("+", "-", "*", "/"):
            raise ValueError(f"bad arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def refs(self) -> Iterator[AnnotationRef]:
        yield from self.left.refs()
        yield from self.right.refs()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BinaryOp({self.op!r}, {self.left!r}, {self.right!r})"


class Negate(Expr):
    """Unary minus."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def refs(self) -> Iterator[AnnotationRef]:
        yield from self.operand.refs()

    def unparse(self) -> str:
        return f"(-{self.operand.unparse()})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Negate({self.operand!r})"


class Formula:
    """Base class for complete formulas."""

    __slots__ = ()

    def exprs(self) -> List[Expr]:
        """Top-level expressions of the formula."""
        raise NotImplementedError

    def refs(self) -> List[AnnotationRef]:
        """All annotation references across the formula."""
        out: List[AnnotationRef] = []
        for expr in self.exprs():
            out.extend(expr.refs())
        return out

    def events(self) -> FrozenSet[str]:
        """Names of all events the formula references."""
        return frozenset(ref.event for ref in self.refs())

    def max_relative_offset(self) -> int:
        """Largest ``i+k`` offset; the streaming lookahead requirement."""
        offsets = [ref.index.offset for ref in self.refs() if not ref.index.absolute]
        return max(offsets, default=0)

    def min_relative_offset(self) -> int:
        """Smallest (possibly negative) ``i+k`` offset."""
        offsets = [ref.index.offset for ref in self.refs() if not ref.index.absolute]
        return min(offsets, default=0)

    def unparse(self) -> str:
        """Render back to formula syntax."""
        raise NotImplementedError


class CheckerFormula(Formula):
    """A boolean assertion to hold for all instances ``i``."""

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs: Expr, op: str, rhs: Expr):
        if op not in CHECKER_OPS:
            raise ValueError(f"bad checker operator {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs

    def exprs(self) -> List[Expr]:
        return [self.lhs, self.rhs]

    def unparse(self) -> str:
        return f"{self.lhs.unparse()} {self.op} {self.rhs.unparse()}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CheckerFormula({self.unparse()!r})"


class DistributionFormula(Formula):
    """A quantity to be binned over ``<min, max, step>`` ranges."""

    __slots__ = ("expr", "mode", "low", "high", "step")

    def __init__(self, expr: Expr, mode: str, low: float, high: float, step: float):
        if mode not in DIST_MODES:
            raise ValueError(f"bad distribution mode {mode!r}")
        self.expr = expr
        self.mode = mode
        self.low = float(low)
        self.high = float(high)
        self.step = float(step)

    def exprs(self) -> List[Expr]:
        return [self.expr]

    @property
    def triple(self) -> Tuple[float, float, float]:
        """The ``(min, max, step)`` analysis period."""
        return (self.low, self.high, self.step)

    def unparse(self) -> str:
        return (
            f"{self.expr.unparse()} {self.mode} "
            f"<{self.low:g}, {self.high:g}, {self.step:g}>"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DistributionFormula({self.unparse()!r})"
