"""The paper's LOC formulas, as ready-made builders.

Formula numbers refer to the paper:

(1) forwarding-latency distribution::

        time(forward[i+100]) - time(forward[i])  in <40, 80, 5>

(2) power distribution (average watts per 100 forwarded packets)::

        (energy(forward[i+100]) - energy(forward[i])) /
        (time(forward[i+100]) - time(forward[i]))  below <0.5, 2.25, 0.01>

    ``energy`` is cumulative microjoules and ``time`` cumulative
    microseconds, so the quotient is directly in watts.

(3) throughput distribution (average Mbps per 100 forwarded packets)::

        ((total_bit(forward[i+100]) - total_bit(forward[i])) / 1e6) /
        ((time(forward[i+100]) - time(forward[i])) / 1e6 / 1e6 ... )

    With ``time`` in microseconds, ``bits / time(us)`` equals Mbps
    exactly, so the formula reduces to the quotient below.

All three default to the paper's window of 100 packets and analysis
triples, and every parameter can be overridden for sweeps.
"""

from __future__ import annotations

from repro.loc.ast_nodes import DistributionFormula
from repro.loc.parser import parse_formula


def forwarding_latency_formula(
    span: int = 100,
    low: float = 40.0,
    high: float = 80.0,
    step: float = 5.0,
    mode: str = "in",
) -> DistributionFormula:
    """Formula (1): time between forward[i] and forward[i+span], in us."""
    text = (
        f"time(forward[i+{span}]) - time(forward[i]) "
        f"{mode} <{low:g}, {high:g}, {step:g}>"
    )
    formula = parse_formula(text)
    assert isinstance(formula, DistributionFormula)
    return formula


def power_distribution_formula(
    span: int = 100,
    low: float = 0.5,
    high: float = 2.25,
    step: float = 0.01,
    mode: str = "below",
) -> DistributionFormula:
    """Formula (2): average power (W) over each ``span`` forwarded packets.

    ``energy`` is in microjoules and ``time`` in microseconds, so
    ``delta_energy / delta_time`` is watts directly.
    """
    text = (
        f"(energy(forward[i+{span}]) - energy(forward[i])) / "
        f"(time(forward[i+{span}]) - time(forward[i])) "
        f"{mode} <{low:g}, {high:g}, {step:g}>"
    )
    formula = parse_formula(text)
    assert isinstance(formula, DistributionFormula)
    return formula


def throughput_distribution_formula(
    span: int = 100,
    low: float = 100.0,
    high: float = 3300.0,
    step: float = 10.0,
    mode: str = "above",
) -> DistributionFormula:
    """Formula (3): average forwarding rate (Mbps) per ``span`` packets.

    ``total_bit`` is bits and ``time`` microseconds; ``bits / us`` is
    Mbps, so no additional scale factor is needed.
    """
    text = (
        f"(total_bit(forward[i+{span}]) - total_bit(forward[i])) / "
        f"(time(forward[i+{span}]) - time(forward[i])) "
        f"{mode} <{low:g}, {high:g}, {step:g}>"
    )
    formula = parse_formula(text)
    assert isinstance(formula, DistributionFormula)
    return formula
