"""Assertion checkers: report every violating instance of a formula.

This mirrors the paper's original (pre-distribution) use of LOC: a
checker formula such as ``cycle(deq[i]) - cycle(enq[i]) <= 50`` is turned
into a streaming monitor that evaluates every instance and records the
ones where the relation fails.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Union

from repro.errors import LocError
from repro.loc.ast_nodes import CheckerFormula
from repro.loc.evaluator import StreamingEvaluator
from repro.loc.parser import parse_formula
from repro.trace.events import TraceEvent

_OPS: dict = {
    "<=": operator.le,
    "<": operator.lt,
    ">=": operator.ge,
    ">": operator.gt,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass
class Violation:
    """One failing formula instance."""

    instance: int
    lhs: float
    rhs: float

    def describe(self, op: str) -> str:
        """Human-readable one-liner for reports."""
        return f"instance {self.instance}: {self.lhs:g} {op} {self.rhs:g} is false"


@dataclass
class CheckResult:
    """Outcome of checking a formula over a trace.

    Beyond the pass/fail verdict, the checker accumulates summary
    statistics of the observed left-hand-side values (sum/min/max over
    all defined instances), so a latency-style assertion doubles as a
    measurement of the quantity it bounds — the study engine uses this
    to report observed span latency next to the bound it was gated on.
    """

    formula_text: str
    op: str
    instances_checked: int = 0
    violations: List[Violation] = field(default_factory=list)
    violations_total: int = 0
    undefined_instances: int = 0
    lhs_sum: float = 0.0
    lhs_min: float = math.inf
    lhs_max: float = -math.inf

    @property
    def passed(self) -> bool:
        """True when no instance violated the assertion."""
        return self.violations_total == 0

    @property
    def violation_fraction(self) -> float:
        """Violating instances over checked instances (0.0 when empty)."""
        if self.instances_checked == 0:
            return 0.0
        return self.violations_total / self.instances_checked

    @property
    def mean_lhs(self) -> float:
        """Mean observed left-hand-side value (NaN when nothing checked)."""
        if self.instances_checked == 0:
            return math.nan
        return self.lhs_sum / self.instances_checked

    # -- dict round-trip ------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict form (non-finite lhs bounds become ``None``)."""
        return {
            "formula_text": self.formula_text,
            "op": self.op,
            "instances_checked": self.instances_checked,
            "violations": [
                {"instance": v.instance, "lhs": v.lhs, "rhs": v.rhs}
                for v in self.violations
            ],
            "violations_total": self.violations_total,
            "undefined_instances": self.undefined_instances,
            "lhs_sum": self.lhs_sum,
            "lhs_min": self.lhs_min if math.isfinite(self.lhs_min) else None,
            "lhs_max": self.lhs_max if math.isfinite(self.lhs_max) else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        """Rebuild from :meth:`to_dict` output."""
        try:
            lhs_min = data.get("lhs_min")
            lhs_max = data.get("lhs_max")
            return cls(
                formula_text=data["formula_text"],
                op=data["op"],
                instances_checked=data["instances_checked"],
                violations=[Violation(**v) for v in data.get("violations", [])],
                violations_total=data["violations_total"],
                undefined_instances=data.get("undefined_instances", 0),
                lhs_sum=data.get("lhs_sum", 0.0),
                lhs_min=math.inf if lhs_min is None else lhs_min,
                lhs_max=-math.inf if lhs_max is None else lhs_max,
            )
        except (KeyError, TypeError) as exc:
            raise LocError(f"malformed check record: {exc!r}") from None

    def report(self) -> str:
        """Multi-line textual report, paper-checker style."""
        lines = [
            f"LOC check: {self.formula_text}",
            f"  instances checked : {self.instances_checked}",
            f"  violations        : {self.violations_total}",
        ]
        if self.undefined_instances:
            lines.append(f"  undefined (div/0) : {self.undefined_instances}")
        for violation in self.violations:
            lines.append("  " + violation.describe(self.op))
        if self.violations_total > len(self.violations):
            hidden = self.violations_total - len(self.violations)
            lines.append(f"  ... {hidden} further violations not shown")
        lines.append("  RESULT: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


class Checker:
    """Streaming checker; also usable directly as a trace sink."""

    def __init__(self, formula: CheckerFormula, max_recorded_violations: int = 100):
        self.formula = formula
        self.max_recorded_violations = max_recorded_violations
        self._compare: Callable[[float, float], bool] = _OPS[formula.op]
        self.result = CheckResult(formula_text=formula.unparse(), op=formula.op)
        self._evaluator = StreamingEvaluator(formula)

    def emit(self, event: TraceEvent) -> None:
        """Trace-sink interface."""
        for instance, (lhs, rhs) in self._evaluator.feed(event):
            self._judge(instance, lhs, rhs)

    def _judge(self, instance: int, lhs: float, rhs: float) -> None:
        if math.isnan(lhs) or math.isnan(rhs):
            self.result.undefined_instances += 1
            return
        self.result.instances_checked += 1
        self.result.lhs_sum += lhs
        if lhs < self.result.lhs_min:
            self.result.lhs_min = lhs
        if lhs > self.result.lhs_max:
            self.result.lhs_max = lhs
        if not self._compare(lhs, rhs):
            self.result.violations_total += 1
            if len(self.result.violations) < self.max_recorded_violations:
                self.result.violations.append(Violation(instance, lhs, rhs))

    def finish(self) -> CheckResult:
        """Return the accumulated result (the stream may keep going)."""
        return self.result


def build_checker(
    formula: Union[str, CheckerFormula], max_recorded_violations: int = 100
) -> Checker:
    """Build a streaming checker from formula text or a parsed AST."""
    if isinstance(formula, str):
        parsed = parse_formula(formula)
    else:
        parsed = formula
    if not isinstance(parsed, CheckerFormula):
        raise LocError(
            "expected a checker formula (relational operator); got a "
            "distribution formula — use DistributionAnalyzer for those"
        )
    return Checker(parsed, max_recorded_violations=max_recorded_violations)


def check_trace(
    formula: Union[str, CheckerFormula],
    events: Iterable[TraceEvent],
    max_recorded_violations: int = 100,
    mode: Optional[str] = None,
) -> CheckResult:
    """Check ``formula`` over an event iterable and return the result.

    Routes through :func:`repro.loc.monitor.build_monitor`, so offline
    trace analysis gets the compiled fast path too; ``mode`` (or
    ``REPRO_LOC_MONITOR``) selects the interpretive fallback.
    """
    from repro.loc.monitor import build_monitor, run_monitor

    monitor = build_monitor(
        formula,
        mode=mode,
        max_recorded_violations=max_recorded_violations,
        expect="checker",
    )
    return run_monitor(monitor, events)
