"""Streaming evaluation of LOC formula instances over a trace.

LOC semantics: a formula holds for every value of the index variable
``i`` = 0, 1, 2, ...; instance ``i`` of the formula mentions annotation
values of specific *instances* of each referenced event (the ``i+k``-th
occurrence of that event in the trace).  The evaluator consumes events one
at a time and yields ``(i, values)`` as soon as every reference of
instance ``i`` is available, holding only a sliding window of each event
series in memory.

Instances that reference negative event indices (possible when a formula
uses ``i-k``) are skipped, matching the convention that such instances are
vacuous.  Instances whose evaluation divides by zero are reported as
*undefined* and counted separately.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.errors import LocEvaluationError
from repro.loc.ast_nodes import (
    AnnotationRef,
    BinaryOp,
    Expr,
    Formula,
    Negate,
    Number,
)
from repro.trace.events import TraceEvent

#: Sentinel yielded for instances whose expression divides by zero.
UNDEFINED = float("nan")


class _EventSeries:
    """Sliding window of annotation tuples for one event name."""

    __slots__ = ("annotations", "base", "values", "count", "pinned")

    def __init__(self, annotations: Tuple[str, ...]):
        self.annotations = annotations
        self.base = 0  # instance number of values[0]
        self.values: Deque[Tuple[float, ...]] = deque()
        self.count = 0  # total instances seen
        self.pinned: Dict[int, Tuple[float, ...]] = {}  # absolute refs

    def append(self, event: TraceEvent, pin_indices: frozenset) -> None:
        row = tuple(event.annotation(name) for name in self.annotations)
        if self.count in pin_indices:
            self.pinned[self.count] = row
        self.values.append(row)
        self.count += 1

    def get(self, instance: int, slot: int) -> float:
        pinned = self.pinned.get(instance)
        if pinned is not None:
            return pinned[slot]
        offset = instance - self.base
        if offset < 0:
            raise LocEvaluationError(
                f"instance {instance} already evicted (window base {self.base})"
            )
        return self.values[offset][slot]

    def evict_below(self, instance: int) -> None:
        """Drop window entries for instances below ``instance``."""
        while self.base < instance and self.values:
            self.values.popleft()
            self.base += 1


class StreamingEvaluator:
    """Evaluates all instances of a formula as trace events stream in.

    Parameters
    ----------
    formula:
        A parsed LOC formula (checker or distribution).  Every top-level
        expression is evaluated per instance; checker formulas yield a
        tuple ``(lhs_value, rhs_value)``, distribution formulas a 1-tuple.

    Usage
    -----
    Call :meth:`feed` with each event (in trace order); it returns an
    iterator of newly completed ``(i, values)`` pairs.  This object is
    also a trace *sink* (``emit``) that hands completed instances to an
    optional callback, so it can be plugged directly into the chip's
    trace fan-out.
    """

    def __init__(self, formula: Formula, on_instance=None):
        self.formula = formula
        self.on_instance = on_instance
        self.exprs: List[Expr] = formula.exprs()
        self.next_instance = 0
        self.instances_evaluated = 0
        self.undefined_instances = 0

        refs = formula.refs()
        # One series per referenced event, tracking exactly the
        # annotations the formula needs (in first-seen order).
        self._series: Dict[str, _EventSeries] = {}
        needed: Dict[str, List[str]] = {}
        pins: Dict[str, set] = {}
        for ref in refs:
            annotation_list = needed.setdefault(ref.event, [])
            if ref.annotation not in annotation_list:
                annotation_list.append(ref.annotation)
            if ref.index.absolute:
                pins.setdefault(ref.event, set()).add(ref.index.offset)
        for event_name, annotation_list in needed.items():
            self._series[event_name] = _EventSeries(tuple(annotation_list))
        self._pins = {name: frozenset(pins.get(name, ())) for name in needed}

        # Per-event relative-offset envelope, for readiness + eviction.
        self._rel_offsets: Dict[str, List[int]] = {}
        for ref in refs:
            if not ref.index.absolute:
                self._rel_offsets.setdefault(ref.event, []).append(ref.index.offset)
        self._slot_of: Dict[Tuple[str, str], int] = {
            (name, annotation): series.annotations.index(annotation)
            for name, series in self._series.items()
            for annotation in series.annotations
        }

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> Iterator[Tuple[int, Tuple[float, ...]]]:
        """Consume one event; yield instances that became evaluable."""
        series = self._series.get(event.name)
        if series is None:
            return iter(())
        series.append(event, self._pins[event.name])
        return self._drain()

    def emit(self, event: TraceEvent) -> None:
        """Trace-sink interface: feed and forward to ``on_instance``."""
        for instance, values in self.feed(event):
            if self.on_instance is not None:
                self.on_instance(instance, values)

    def _drain(self) -> Iterator[Tuple[int, Tuple[float, ...]]]:
        while self._ready(self.next_instance):
            i = self.next_instance
            self.next_instance += 1
            if self._vacuous(i):
                continue
            values = self._evaluate(i)
            self.instances_evaluated += 1
            self._evict(i + 1)
            yield i, values

    def _ready(self, i: int) -> bool:
        for name, offsets in self._rel_offsets.items():
            series = self._series[name]
            needed_max = i + max(offsets)
            if needed_max >= series.count:
                return False
        for name, pins in self._pins.items():
            series = self._series[name]
            for pin in pins:
                if pin >= series.count:
                    return False
        return True

    def _vacuous(self, i: int) -> bool:
        for offsets in self._rel_offsets.values():
            if i + min(offsets) < 0:
                return True
        return False

    def _evict(self, next_i: int) -> None:
        for name, offsets in self._rel_offsets.items():
            self._series[name].evict_below(next_i + min(offsets))

    # ------------------------------------------------------------------
    # Expression interpretation
    # ------------------------------------------------------------------
    def _evaluate(self, i: int) -> Tuple[float, ...]:
        values = []
        for expr in self.exprs:
            try:
                values.append(self._eval_expr(expr, i))
            except ZeroDivisionError:
                self.undefined_instances += 1
                values.append(UNDEFINED)
        return tuple(values)

    def _eval_expr(self, expr: Expr, i: int) -> float:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, AnnotationRef):
            series = self._series[expr.event]
            slot = self._slot_of[(expr.event, expr.annotation)]
            return series.get(expr.index.resolve(i), slot)
        if isinstance(expr, BinaryOp):
            left = self._eval_expr(expr.left, i)
            right = self._eval_expr(expr.right, i)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right  # ZeroDivisionError handled by caller
        if isinstance(expr, Negate):
            return -self._eval_expr(expr.operand, i)
        raise LocEvaluationError(f"unknown expression node {type(expr).__name__}")


def evaluate_over(formula: Formula, events) -> List[Tuple[int, Tuple[float, ...]]]:
    """Evaluate all instances of ``formula`` over an event iterable.

    Convenience wrapper for tests and offline analysis; holds only the
    evaluator's sliding window in memory, but materializes the results.
    """
    evaluator = StreamingEvaluator(formula)
    out: List[Tuple[int, Tuple[float, ...]]] = []
    for event in events:
        out.extend(evaluator.feed(event))
    return out
