"""Tokenizer for LOC formula text.

The token set is small: numbers, identifiers, the index variable ``i``
(just an identifier until parsing), arithmetic operators, relational
operators, brackets, and the distribution keywords ``in`` / ``below`` /
``above``.  Unicode minus and the angle quotation marks that appear in the
paper's typeset formulas are normalized so formulas can be pasted almost
verbatim.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import LocSyntaxError

#: Token kinds produced by :func:`tokenize`.
KINDS = (
    "NUMBER",
    "IDENT",
    "PLUS",
    "MINUS",
    "STAR",
    "SLASH",
    "LPAREN",
    "RPAREN",
    "LBRACKET",
    "RBRACKET",
    "LANGLE",
    "RANGLE",
    "COMMA",
    "LE",
    "GE",
    "LT",
    "GT",
    "EQ",
    "NE",
    "KW_IN",
    "KW_BELOW",
    "KW_ABOVE",
    "EOF",
)

#: Distribution-operator keywords (case-insensitive).
KEYWORDS = {"in": "KW_IN", "below": "KW_BELOW", "above": "KW_ABOVE"}

#: Normalizations applied before scanning (typeset-paper conveniences).
_NORMALIZE = {
    "−": "-",  # unicode minus
    "≤": "<=",
    "≥": ">=",
    "≠": "!=",
    "〈": "<",  # left angle bracket
    "〉": ">",
    "⟨": "<",  # mathematical left angle bracket
    "⟩": ">",
}


class Token(NamedTuple):
    """One lexical token: ``kind``, source ``text`` and char ``position``."""

    kind: str
    text: str
    position: int


def _normalize(text: str) -> str:
    for needle, replacement in _NORMALIZE.items():
        if needle in text:
            text = text.replace(needle, replacement)
    return text


def _scan(text: str) -> Iterator[Token]:
    length = len(text)
    pos = 0
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char.isdigit() or (char == "." and pos + 1 < length and text[pos + 1].isdigit()):
            start = pos
            seen_dot = False
            seen_exp = False
            while pos < length:
                c = text[pos]
                if c.isdigit():
                    pos += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    pos += 1
                elif c in "eE" and not seen_exp and pos > start:
                    # Exponent must be followed by digits or a sign+digits.
                    nxt = pos + 1
                    if nxt < length and text[nxt] in "+-":
                        nxt += 1
                    if nxt < length and text[nxt].isdigit():
                        seen_exp = True
                        pos = nxt
                    else:
                        break
                else:
                    break
            yield Token("NUMBER", text[start:pos], start)
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            kind = KEYWORDS.get(word.lower(), "IDENT")
            yield Token(kind, word, start)
            continue
        two = text[pos : pos + 2]
        if two == "<=":
            yield Token("LE", two, pos)
            pos += 2
            continue
        if two == ">=":
            yield Token("GE", two, pos)
            pos += 2
            continue
        if two == "==":
            yield Token("EQ", two, pos)
            pos += 2
            continue
        if two == "!=":
            yield Token("NE", two, pos)
            pos += 2
            continue
        single = {
            "+": "PLUS",
            "-": "MINUS",
            "*": "STAR",
            "/": "SLASH",
            "(": "LPAREN",
            ")": "RPAREN",
            "[": "LBRACKET",
            "]": "RBRACKET",
            ",": "COMMA",
            "<": "LT",
            ">": "GT",
            "=": "EQ",  # tolerate single '=' as equality
        }.get(char)
        if single is None:
            raise LocSyntaxError(f"unexpected character {char!r}", position=pos)
        yield Token(single, char, pos)
        pos += 1
    yield Token("EOF", "", length)


def tokenize(text: str) -> List[Token]:
    """Tokenize LOC formula text into a list ending with an EOF token.

    >>> [t.kind for t in tokenize("cycle(deq[i]) <= 50")]
    ['IDENT', 'LPAREN', 'IDENT', 'LBRACKET', 'IDENT', 'RBRACKET', 'RPAREN', 'LE', 'NUMBER', 'EOF']
    """
    return list(_scan(_normalize(text)))
