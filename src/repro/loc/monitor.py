"""The online LOC monitor API: simulation-time checking on the trace bus.

The paper distinguishes *simulation-time* (online) checking from
offline trace-file analysis — checker overhead bounds how much design
space a study can explore.  This module is the online side's single
entry point: :func:`build_monitor` turns a LOC formula into a monitor
that subscribes straight to a run's
:class:`~repro.trace.bus.TraceBus` and accumulates exactly the result
objects the rest of the stack consumes
(:class:`~repro.loc.checker.CheckResult` /
:class:`~repro.loc.analyzer.DistributionResult`).

Two implementations stand behind the same interface:

* **compiled** (:class:`CompiledMonitor`) — the default.  The formula
  is compiled by :func:`repro.loc.codegen.compile_monitor_feed` into a
  closure that rides the bus's tuple-payload fast path: ring-buffered
  index-offset windows, straight-line arithmetic, no event objects.
  Available for single-event formulas with relative indices — which is
  every built-in formula and every study gate.
* **interpreted** (:class:`InterpretedMonitor`) — the proven fallback.
  Wraps the legacy streaming sinks (:class:`~repro.loc.checker.Checker`
  / :class:`~repro.loc.analyzer.DistributionAnalyzer`, both driven by
  the interpretive :class:`~repro.loc.evaluator.StreamingEvaluator`)
  as a wildcard structured sink.  Formulas outside the compiled
  specialization land here automatically; ``REPRO_LOC_MONITOR=interpreted``
  forces it everywhere (the escape hatch, and the differential-test
  baseline).

The two are proven result-identical by the differential wall in
``tests/test_monitors.py``.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Optional, Union

from repro.errors import ExperimentError, LocError
from repro.loc.analyzer import DistributionAnalyzer, DistributionResult, build_edges
from repro.loc.ast_nodes import CheckerFormula, DistributionFormula, Formula
from repro.loc.checker import Checker, CheckResult, Violation
from repro.loc.codegen import compile_monitor_feed, monitor_event
from repro.loc.parser import parse_formula
from repro.trace.events import TraceEvent

#: Environment override for the default monitor mode (``compiled`` /
#: ``interpreted``).  Worker processes inherit it, so a whole
#: distributed sweep can be flipped to the interpretive baseline
#: without touching call sites.
MONITOR_MODE_ENV_VAR = "REPRO_LOC_MONITOR"

_MODES = ("compiled", "interpreted")


def resolve_monitor_mode(mode: Optional[str] = None) -> str:
    """The effective monitor mode: explicit > environment > compiled."""
    value = mode if mode is not None else os.environ.get(MONITOR_MODE_ENV_VAR, "")
    value = value.strip().lower() or "compiled"
    if value not in _MODES:
        raise ExperimentError(
            f"monitor mode must be one of {_MODES}, got {value!r} "
            f"(check {MONITOR_MODE_ENV_VAR})"
        )
    return value


class CompiledMonitor:
    """A formula compiled to a bus-native feed closure.

    Attributes
    ----------
    formula / event:
        The parsed formula and the single event name it watches.
    compiled:
        Always ``True`` (the interpreted twin reports ``False``).
    """

    compiled = True

    def __init__(self, formula: Formula, max_recorded_violations: int = 100):
        event = monitor_event(formula)
        if event is None:
            raise LocError(
                f"formula {formula.unparse()!r} cannot be compiled to an "
                "online monitor"
            )
        self.formula = formula
        self.event = event
        self.max_recorded_violations = max_recorded_violations
        self._feed, self._collect = compile_monitor_feed(
            formula, max_recorded_violations=max_recorded_violations
        )

    # -- wiring ----------------------------------------------------------
    def attach(self, bus) -> None:
        """Subscribe the compiled feed to the formula's event name."""
        bus.subscribe(self.event, self._feed)

    def feed_event(self, event: TraceEvent) -> None:
        """Offline driving: consume one structured trace event."""
        if event.name == self.event:
            self._feed(event.as_tuple()[1:])

    # -- results ---------------------------------------------------------
    def finish(self) -> Union[CheckResult, DistributionResult]:
        """Snapshot the accumulated result (the stream may keep going)."""
        if isinstance(self.formula, CheckerFormula):
            (checked, violations_total, undefined,
             lhs_sum, lhs_min, lhs_max, violations) = self._collect()
            return CheckResult(
                formula_text=self.formula.unparse(),
                op=self.formula.op,
                instances_checked=checked,
                violations=[Violation(*v) for v in violations],
                violations_total=violations_total,
                undefined_instances=undefined,
                lhs_sum=lhs_sum,
                lhs_min=lhs_min,
                lhs_max=lhs_max,
            )
        total, undefined, value_sum, value_min, value_max, counts = (
            self._collect()
        )
        return DistributionResult(
            formula_text=self.formula.unparse(),
            mode=self.formula.mode,
            edges=build_edges(
                self.formula.low, self.formula.high, self.formula.step
            ),
            counts=counts,
            total=total,
            undefined=undefined,
            value_min=value_min if total else math.nan,
            value_max=value_max if total else math.nan,
            value_sum=value_sum,
        )

    def poll(self) -> Union[CheckResult, DistributionResult]:
        """Mid-run snapshot for streaming consumers (anomaly gates).

        Identical to :meth:`finish` — the name marks call sites that
        deliberately read a *partial* verdict while the stream is live.
        """
        return self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CompiledMonitor {self.formula.unparse()!r} on {self.event!r}>"


class InterpretedMonitor:
    """The interpretive fallback, behind the same monitor interface.

    Wraps a legacy streaming sink and attaches it as a wildcard
    structured sink — i.e. exactly the pre-bus checking path, kept as
    the equivalence baseline.
    """

    compiled = False

    def __init__(self, formula: Formula, max_recorded_violations: int = 100):
        self.formula = formula
        self.max_recorded_violations = max_recorded_violations
        if isinstance(formula, CheckerFormula):
            self._sink = Checker(
                formula, max_recorded_violations=max_recorded_violations
            )
        else:
            self._sink = DistributionAnalyzer(formula)

    def attach(self, bus) -> None:
        """Attach the interpretive sink as a wildcard subscriber."""
        bus.attach_sink(self._sink)

    def feed_event(self, event: TraceEvent) -> None:
        """Offline driving: consume one structured trace event."""
        self._sink.emit(event)

    def finish(self) -> Union[CheckResult, DistributionResult]:
        """Snapshot the accumulated result (the stream may keep going)."""
        return self._sink.finish()

    def poll(self) -> Union[CheckResult, DistributionResult]:
        """Mid-run snapshot for streaming consumers (see the compiled twin)."""
        return self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InterpretedMonitor {self.formula.unparse()!r}>"


Monitor = Union[CompiledMonitor, InterpretedMonitor]


def build_monitor(
    formula: Union[str, Formula],
    mode: Optional[str] = None,
    max_recorded_violations: int = 100,
    expect: Optional[str] = None,
) -> Monitor:
    """Build an online monitor for ``formula``.

    ``mode`` is ``"compiled"`` / ``"interpreted"`` / ``None`` (defer to
    ``REPRO_LOC_MONITOR``, default compiled).  Compiled mode silently
    falls back to the interpretive monitor for formulas outside the
    compiler's specialization, so the choice never changes results —
    only speed.

    ``expect`` (``"checker"`` / ``"distribution"``) asserts the formula
    kind, mirroring :func:`repro.loc.checker.build_checker`'s guard.
    """
    parsed = parse_formula(formula) if isinstance(formula, str) else formula
    if expect == "checker" and not isinstance(parsed, CheckerFormula):
        raise LocError(
            "expected a checker formula (relational operator); got a "
            "distribution formula — use DistributionAnalyzer for those"
        )
    if expect == "distribution" and not isinstance(parsed, DistributionFormula):
        raise LocError(
            "expected a distribution formula (in/below/above <...>); "
            "got a checker formula — use build_checker for those"
        )
    if resolve_monitor_mode(mode) == "compiled" and monitor_event(parsed):
        return CompiledMonitor(
            parsed, max_recorded_violations=max_recorded_violations
        )
    return InterpretedMonitor(
        parsed, max_recorded_violations=max_recorded_violations
    )


def run_monitor(
    monitor: Monitor, events: Iterable[TraceEvent]
) -> Union[CheckResult, DistributionResult]:
    """Drive a monitor over an event iterable (offline analysis)."""
    feed = monitor.feed_event
    for event in events:
        feed(event)
    return monitor.finish()
