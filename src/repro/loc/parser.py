"""Recursive-descent parser for LOC formulas.

Grammar (EOF-terminated)::

    formula   := expr tail
    tail      := dist_kw triple            # distribution formula
               | rel_op expr              # checker formula
    dist_kw   := 'in' | 'below' | 'above'
    triple    := '<' number ',' number ',' number '>'
    rel_op    := '<=' | '<' | '>=' | '>' | '==' | '!='
    expr      := term (('+'|'-') term)*
    term      := unary (('*'|'/') unary)*
    unary     := ('-'|'+') unary | primary
    primary   := number | ref | '(' expr ')'
    ref       := IDENT '(' event '[' index ']' ')'
    event     := IDENT
    index     := 'i' (('+'|'-') integer)? | integer

Annotation and event names are validated in :mod:`repro.loc.semantics`
(the parser is purely syntactic so it can parse formulas about traces it
has never seen).
"""

from __future__ import annotations

from typing import List, Union

from repro.errors import LocSyntaxError
from repro.loc.ast_nodes import (
    AnnotationRef,
    BinaryOp,
    CheckerFormula,
    DistributionFormula,
    Expr,
    IndexExpr,
    Negate,
    Number,
)
from repro.loc.lexer import Token, tokenize

#: Relational token kinds and their operator spellings.
_REL_TOKENS = {"LE": "<=", "GE": ">=", "EQ": "==", "NE": "!=", "LT": "<", "GT": ">"}

#: Distribution keyword token kinds and their modes.
_DIST_TOKENS = {"KW_IN": "in", "KW_BELOW": "below", "KW_ABOVE": "above"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise LocSyntaxError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                position=token.position,
            )
        return self.advance()

    # -- grammar -------------------------------------------------------
    def parse_formula(self) -> Union[CheckerFormula, DistributionFormula]:
        lhs = self.parse_expr()
        token = self.peek()
        if token.kind in _DIST_TOKENS:
            self.advance()
            low, high, step = self.parse_triple()
            formula: Union[CheckerFormula, DistributionFormula]
            formula = DistributionFormula(lhs, _DIST_TOKENS[token.kind], low, high, step)
        elif token.kind in _REL_TOKENS:
            self.advance()
            rhs = self.parse_expr()
            formula = CheckerFormula(lhs, _REL_TOKENS[token.kind], rhs)
        else:
            raise LocSyntaxError(
                "expected a relational operator or 'in'/'below'/'above' "
                f"after the expression, found {token.text!r}",
                position=token.position,
            )
        self.expect("EOF")
        return formula

    def parse_triple(self):
        self.expect("LT")
        low = self.parse_signed_number()
        self.expect("COMMA")
        high = self.parse_signed_number()
        self.expect("COMMA")
        step = self.parse_signed_number()
        self.expect("GT")
        if step <= 0:
            raise LocSyntaxError(f"triple step must be positive, got {step:g}")
        if high < low:
            raise LocSyntaxError(f"triple max {high:g} is below min {low:g}")
        return low, high, step

    def parse_signed_number(self) -> float:
        sign = 1.0
        while self.peek().kind in ("MINUS", "PLUS"):
            if self.advance().kind == "MINUS":
                sign = -sign
        token = self.expect("NUMBER")
        return sign * float(token.text)

    def parse_expr(self) -> Expr:
        node = self.parse_term()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = "+" if self.advance().kind == "PLUS" else "-"
            node = BinaryOp(op, node, self.parse_term())
        return node

    def parse_term(self) -> Expr:
        node = self.parse_unary()
        while self.peek().kind in ("STAR", "SLASH"):
            op = "*" if self.advance().kind == "STAR" else "/"
            node = BinaryOp(op, node, self.parse_unary())
        return node

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "MINUS":
            self.advance()
            return Negate(self.parse_unary())
        if token.kind == "PLUS":
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return Number(float(token.text))
        if token.kind == "LPAREN":
            self.advance()
            node = self.parse_expr()
            self.expect("RPAREN")
            return node
        if token.kind == "IDENT":
            return self.parse_ref()
        raise LocSyntaxError(
            f"expected a number, reference or '(', found {token.text!r}",
            position=token.position,
        )

    def parse_ref(self) -> AnnotationRef:
        annotation = self.expect("IDENT").text
        self.expect("LPAREN")
        event = self.expect("IDENT").text
        self.expect("LBRACKET")
        index = self.parse_index()
        self.expect("RBRACKET")
        self.expect("RPAREN")
        return AnnotationRef(annotation, event, index)

    def parse_index(self) -> IndexExpr:
        token = self.peek()
        if token.kind == "IDENT":
            if token.text != "i":
                raise LocSyntaxError(
                    f"only 'i' may be used as the index variable, found {token.text!r}",
                    position=token.position,
                )
            self.advance()
            nxt = self.peek()
            if nxt.kind in ("PLUS", "MINUS"):
                sign = 1 if self.advance().kind == "PLUS" else -1
                number = self.expect("NUMBER")
                offset = self._integer(number)
                return IndexExpr(sign * offset)
            return IndexExpr(0)
        if token.kind == "NUMBER":
            self.advance()
            return IndexExpr(self._integer(token), absolute=True)
        raise LocSyntaxError(
            f"expected an index expression, found {token.text!r}",
            position=token.position,
        )

    @staticmethod
    def _integer(token: Token) -> int:
        value = float(token.text)
        if value != int(value):
            raise LocSyntaxError(
                f"index offsets must be integers, got {token.text!r}",
                position=token.position,
            )
        return int(value)


def parse_formula(text: str) -> Union[CheckerFormula, DistributionFormula]:
    """Parse LOC formula text into an AST.

    >>> formula = parse_formula("cycle(deq[i]) - cycle(enq[i]) <= 50")
    >>> formula.op
    '<='
    >>> sorted(formula.events())
    ['deq', 'enq']
    """
    return _Parser(tokenize(text)).parse_formula()
