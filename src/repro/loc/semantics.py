"""Semantic validation of parsed LOC formulas.

The parser accepts any identifiers; this module checks a formula against
the trace schema actually being analyzed:

* annotation names must be known (by default the paper's five);
* event names must be well-formed (base type, optional ``m<k>`` prefix) —
  unless the caller passes an explicit event universe, in which case names
  only need to be in it (LOC itself allows arbitrary event alphabets, e.g.
  the ``enq``/``deq`` example of the paper).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import LocSemanticError, TraceError
from repro.loc.ast_nodes import Formula
from repro.trace.annotations import ANNOTATION_NAMES
from repro.trace.events import parse_event_name


def validate_formula(
    formula: Formula,
    annotations: Iterable[str] = ANNOTATION_NAMES,
    events: Optional[Iterable[str]] = None,
) -> None:
    """Raise :class:`LocSemanticError` if the formula cannot be evaluated.

    Parameters
    ----------
    formula:
        A parsed checker or distribution formula.
    annotations:
        Annotation names the trace provides.
    events:
        If given, the exact set of event names allowed; otherwise names
        must follow the NPU trace convention (``forward``, ``fifo``,
        ``pipeline`` with optional ``m<k>_`` prefix).
    """
    known_annotations = frozenset(annotations)
    event_universe = frozenset(events) if events is not None else None
    refs = formula.refs()
    if not refs:
        raise LocSemanticError("formula references no trace events")
    for ref in refs:
        if ref.annotation not in known_annotations:
            raise LocSemanticError(
                f"unknown annotation {ref.annotation!r}; "
                f"known: {sorted(known_annotations)}"
            )
        if event_universe is not None:
            if ref.event not in event_universe:
                raise LocSemanticError(
                    f"unknown event {ref.event!r}; known: {sorted(event_universe)}"
                )
        else:
            try:
                parse_event_name(ref.event)
            except TraceError as exc:
                raise LocSemanticError(str(exc)) from exc
