"""The NPU architecture model (NePSim/IXP1200 substitute).

The chip (:mod:`~repro.npu.chip`) assembles:

* six multithreaded **microengines** (:mod:`~repro.npu.microengine`) split
  into receive and transmit groups; threads busy-poll for work and block
  on memory references, which is exactly the behaviour the paper's EDVS
  policy keys on;
* **SRAM / SDRAM / scratchpad** controllers and the **IX bus**
  (:mod:`~repro.npu.memqueue`) — queued resources with per-access latency
  and occupancy, giving the long memory stalls that idle the MEs;
* sixteen **device ports** (:mod:`~repro.npu.ports`) with bounded receive
  queues (the packet-loss mechanism) and wire-rate transmit serialization
  (the source of ``forward`` trace events);
* an SDRAM **packet-buffer allocator** (:mod:`~repro.npu.packetbuf`);
* a miniature **microengine ISA** with assembler and interpreter
  (:mod:`~repro.npu.isa` and friends) used by the detailed execution mode.

Applications plug in as step-stream generators (see
:mod:`repro.apps.base`); the DVS governors plug in through per-ME clock
domains and the stall interface.
"""

from repro.npu.chip import NpuChip, RunTotals, build_chip
from repro.npu.microengine import Microengine
from repro.npu.steps import (
    Compute,
    Drop,
    MemRead,
    MemWrite,
    PutTx,
)

__all__ = [
    "Compute",
    "Drop",
    "MemRead",
    "MemWrite",
    "Microengine",
    "NpuChip",
    "PutTx",
    "RunTotals",
    "build_chip",
]
