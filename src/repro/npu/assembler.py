"""Two-pass assembler for the mini microengine ISA.

Source dialect::

    ; comments run to end of line (# also accepted)
    .name rx_forward          ; program name (optional)
    .equ TABLE_BASE, 0x1000   ; named constant

    start:
        li      r1, TABLE_BASE
        alui    add r2, r1, 4
        mem_rd  sram r3, r2, 4       ; r3 <- sram[r2], 4 bytes
        bcond   eq r3, zero, miss
        set_out_port r3
        puttx
        done
    miss:
        drop    1

Mnemonic conveniences: ``add/sub/and/or/xor/shl/shr/mul/min/max`` expand
to ``alu``/``alui`` (immediate last operand selects ``alui``);
``beq/bne/blt/bge/bgt/ble`` expand to ``bcond``; ``sram_rd``/``sdram_wr``
etc. expand to ``mem_rd``/``mem_wr``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import AssemblerError
from repro.npu.isa import (
    ALU_OPS,
    BRANCH_CONDS,
    MEMORY_TARGETS,
    OPCODES,
    REGISTER_INDEX,
    Instruction,
    Program,
)

_BRANCH_ALIASES = {f"b{cond}": cond for cond in BRANCH_CONDS}
_MEM_ALIASES = {}
for _target in MEMORY_TARGETS:
    _MEM_ALIASES[f"{_target}_rd"] = ("mem_rd", _target)
    _MEM_ALIASES[f"{_target}_wr"] = ("mem_wr", _target)
    _MEM_ALIASES[f"{_target}_post"] = ("mem_post", _target)


def _parse_number(token: str, equ: Dict[str, int], line: int) -> int:
    if token in equ:
        return equ[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"expected a number or constant, got {token!r}", line)


def _strip_comment(text: str) -> str:
    for marker in (";", "#"):
        index = text.find(marker)
        if index >= 0:
            text = text[:index]
    return text.strip()


def _tokenize_operands(rest: str) -> List[str]:
    rest = rest.replace(",", " ")
    return [token for token in rest.split() if token]


class Assembler:
    """Two-pass assembler: pass 1 collects labels, pass 2 encodes."""

    def __init__(self):
        self.equ: Dict[str, int] = {}

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` text into a validated :class:`Program`."""
        statements, labels, program_name = self._pass_one(source, name)
        instructions = [
            self._encode(mnemonic, operands, labels, line)
            for mnemonic, operands, line in statements
        ]
        try:
            return Program(program_name, instructions, labels)
        except Exception as exc:
            raise AssemblerError(str(exc)) from exc

    # -- pass 1 ----------------------------------------------------------
    def _pass_one(
        self, source: str, default_name: str
    ) -> Tuple[List[Tuple[str, List[str], int]], Dict[str, int], str]:
        statements: List[Tuple[str, List[str], int]] = []
        labels: Dict[str, int] = {}
        name = default_name
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = _strip_comment(raw)
            if not text:
                continue
            # Directives.
            if text.startswith(".name"):
                parts = text.split(None, 1)
                if len(parts) != 2:
                    raise AssemblerError(".name needs an argument", lineno)
                name = parts[1].strip()
                continue
            if text.startswith(".equ"):
                parts = _tokenize_operands(text[len(".equ"):])
                if len(parts) != 2:
                    raise AssemblerError(".equ needs NAME, VALUE", lineno)
                self.equ[parts[0]] = _parse_number(parts[1], self.equ, lineno)
                continue
            if text.startswith("."):
                raise AssemblerError(f"unknown directive {text.split()[0]!r}", lineno)
            # Labels (possibly followed by an instruction on the line).
            while ":" in text:
                label, _, rest = text.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblerError(f"bad label {label!r}", lineno)
                if label in labels:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                labels[label] = len(statements)
                text = rest.strip()
            if not text:
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _tokenize_operands(parts[1]) if len(parts) > 1 else []
            statements.append((mnemonic, operands, lineno))
        if not statements:
            raise AssemblerError("no instructions in source")
        return statements, labels, name

    # -- pass 2 ----------------------------------------------------------
    def _encode(
        self,
        mnemonic: str,
        operands: List[str],
        labels: Dict[str, int],
        line: int,
    ) -> Instruction:
        # Mnemonic expansion.
        if mnemonic in ALU_OPS:
            if len(operands) != 3:
                raise AssemblerError(f"{mnemonic} needs rd, ra, rb|imm", line)
            if operands[2] in REGISTER_INDEX:
                mnemonic, operands = "alu", [mnemonic, *operands]
            else:
                mnemonic, operands = "alui", [mnemonic, *operands]
        elif mnemonic in _BRANCH_ALIASES:
            operands = [_BRANCH_ALIASES[mnemonic], *operands]
            mnemonic = "bcond"
        elif mnemonic in _MEM_ALIASES:
            base, target = _MEM_ALIASES[mnemonic]
            operands = [target, *operands]
            mnemonic = base

        shape = OPCODES.get(mnemonic)
        if shape is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line)
        if len(operands) != len(shape):
            raise AssemblerError(
                f"{mnemonic}: expected {len(shape)} operands, got {len(operands)}",
                line,
            )
        encoded = []
        for kind, token in zip(shape, operands):
            if kind == "R":
                index = REGISTER_INDEX.get(token)
                if index is None:
                    raise AssemblerError(f"unknown register {token!r}", line)
                encoded.append(index)
            elif kind == "I":
                encoded.append(_parse_number(token, self.equ, line))
            elif kind == "L":
                if token in labels:
                    encoded.append(labels[token])
                else:
                    encoded.append(_parse_number(token, self.equ, line))
            else:  # "O"
                encoded.append(token)
        instruction = Instruction(mnemonic, tuple(encoded), line)
        return instruction


def assemble(source: str, name: str = "program") -> Program:
    """Assemble source text in one call."""
    return Assembler().assemble(source, name=name)
