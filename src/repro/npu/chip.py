"""Top-level NPU chip: wiring every component together.

:class:`NpuChip` builds, from a :class:`~repro.config.RunConfig`:

* the fixed reference clock (trace ``cycle`` annotation) and one
  scalable clock domain per microengine (the DVS actuation points);
* the memory controllers, IX bus and packet-buffer pool;
* the 16 device ports with their arrival/enqueue/forward hooks;
* the receive and transmit microengines bound to the selected benchmark
  application's step streams;
* the power accountant, the trace annotation provider, and the
  :class:`~repro.trace.bus.TraceBus` every observation rides.

Trace events flow through the bus: subscribers (compiled LOC monitors,
legacy ``emit(TraceEvent)`` sinks) register before :meth:`NpuChip.start`,
and starting the chip binds one emitter per event name — the shared
no-op for names nobody listens to, so an unobserved run never
materializes a record.  The run loop itself lives in :mod:`repro.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.base import AppResources, build_app
from repro.config import RunConfig
from repro.errors import NpuError
from repro.npu.fifo import TxRing
from repro.npu.memqueue import build_memories
from repro.npu.microengine import BUSY, IDLE, STALLED, Microengine, RxPortMux
from repro.npu.packetbuf import PacketBufferPool
from repro.npu.ports import PortArray
from repro.power.model import MePowerModel, PowerAccountant
from repro.sim.clock import ClockDomain, FixedClock
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import RateWindow
from repro.trace.annotations import AnnotationProvider
from repro.trace.bus import NOOP_EMITTER, TraceBus
from repro.trace.events import prefixed_event_name
from repro.traffic.packet import Packet


@dataclass
class MeSummary:
    """End-of-run summary for one microengine."""

    index: int
    role: str
    freq_mhz: float
    busy_fraction: float
    idle_fraction: float
    stalled_fraction: float
    instructions: int
    packets: int
    freq_changes: int


@dataclass
class RunTotals:
    """End-of-run chip-level totals."""

    duration_s: float
    offered_packets: int
    offered_bits: int
    forwarded_packets: int
    forwarded_bits: int
    rx_dropped: int
    drops_by_reason: Dict[str, int]
    mean_power_w: float
    power_breakdown_w: Dict[str, float]
    me_summaries: List[MeSummary] = field(default_factory=list)

    @property
    def offered_mbps(self) -> float:
        """Offered load over the run, in Mbps."""
        if self.duration_s <= 0:
            return 0.0
        return self.offered_bits / self.duration_s / 1e6

    @property
    def throughput_mbps(self) -> float:
        """Forwarded throughput over the run, in Mbps."""
        if self.duration_s <= 0:
            return 0.0
        return self.forwarded_bits / self.duration_s / 1e6

    @property
    def loss_fraction(self) -> float:
        """Packets lost (any reason) over packets offered."""
        if self.offered_packets == 0:
            return 0.0
        lost = self.offered_packets - self.forwarded_packets
        return max(0, lost) / self.offered_packets


class NpuChip:
    """The assembled NPU model (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        config: RunConfig,
        rng_streams: Optional[RngStreams] = None,
        fuse: Optional[bool] = None,
    ):
        config.validate()
        self.sim = sim
        self.config = config
        npu = config.npu
        streams = rng_streams or RngStreams(config.seed)

        # -- clocks -----------------------------------------------------
        self.reference_clock = FixedClock(sim, npu.reference_freq_hz, "ref")
        self.me_clocks: List[ClockDomain] = [
            ClockDomain(sim, npu.me_freq_max_hz, f"me{k}")
            for k in range(npu.num_microengines)
        ]

        # -- power ------------------------------------------------------
        self.me_power_model = MePowerModel(
            config.power, npu.me_freq_max_hz, npu.me_vdd_max
        )
        self.accountant = PowerAccountant(sim, config.power, self.me_power_model)

        # -- memories and bus --------------------------------------------
        self.sram, self.sdram, self.scratch, self.ixbus = build_memories(
            sim, npu.memory, self.accountant.on_memory_energy
        )
        self.memories = {
            "sram": self.sram,
            "sdram": self.sdram,
            "scratch": self.scratch,
        }
        self.buffer_pool = PacketBufferPool(npu.memory.sdram_bytes // 2)
        self._buffer_handles: Dict[int, int] = {}

        # -- counters and monitor ------------------------------------------
        self.traffic_monitor = RateWindow(sim, "port-arrivals")
        self.offered_packets = 0
        self.offered_bits = 0
        self.forwarded_packets = 0
        self.forwarded_bits = 0
        self.drops_by_reason: Dict[str, int] = {}
        #: Extra per-arrival callbacks (DVS overhead meter plugs in here).
        self.arrival_hooks: List = []

        # -- trace ---------------------------------------------------------
        self.annotations = AnnotationProvider(
            self.reference_clock,
            energy_uj=self.accountant.total_energy_uj,
            total_pkt=self._total_forwarded_packets,
            total_bit=self._total_forwarded_bits,
        )
        self.bus = TraceBus(self.annotations)
        self._emit_forward = NOOP_EMITTER
        self._emit_arrival = None

        # -- ports ---------------------------------------------------------
        self.ports = PortArray(
            sim,
            npu.num_ports,
            npu.port_rate_bps,
            npu.rx_queue_packets,
            self.ixbus,
            on_arrival=self._on_arrival,
            on_forward=self._on_forward,
        )

        # -- application ------------------------------------------------------
        self.app_resources = AppResources(
            num_ports=npu.num_ports, rng_streams=streams.spawn("apps")
        )
        self.app = build_app(config.benchmark, self.app_resources)

        # -- transmit rings (one per transmit ME) ------------------------------
        self.tx_rings: List[TxRing] = [
            TxRing(f"txring{k}") for k in range(len(npu.tx_me_indices))
        ]
        self._ports_per_tx_ring = npu.num_ports // len(npu.tx_me_indices)
        #: ``out_port % num_ports`` indexes straight to the owning ring's
        #: bound ``put`` — the ring arithmetic is paid once at build time
        #: instead of per transmitted packet.
        self._num_ports = npu.num_ports
        self._ring_put_for_port = [
            self.tx_rings[p // self._ports_per_tx_ring].put
            for p in range(npu.num_ports)
        ]

        # -- microengines -------------------------------------------------------
        self.mes: List[Microengine] = []
        ports_per_rx = npu.ports_per_rx_me
        rx_position = {index: pos for pos, index in enumerate(npu.rx_me_indices)}
        tx_position = {index: pos for pos, index in enumerate(npu.tx_me_indices)}
        for me_index in range(npu.num_microengines):
            if me_index in rx_position:
                pos = rx_position[me_index]
                source = RxPortMux(
                    self.ports.ports[pos * ports_per_rx : (pos + 1) * ports_per_rx]
                )
                me = Microengine(
                    sim,
                    self.me_clocks[me_index],
                    me_index,
                    "rx",
                    source,
                    self._make_rx_steps,
                    self.memories,
                    num_threads=npu.threads_per_me,
                    poll_instructions=npu.poll_instructions,
                    poll_counts_as_idle=npu.poll_counts_as_idle,
                    ctx_switch_cycles=npu.ctx_switch_cycles,
                    on_put_tx=self._on_put_tx,
                    on_drop=self._on_drop,
                    materialize=self.app.materialize_rx,
                    fuse=fuse,
                )
            else:
                pos = tx_position[me_index]
                me = Microengine(
                    sim,
                    self.me_clocks[me_index],
                    me_index,
                    "tx",
                    self.tx_rings[pos],
                    (
                        self.app.tx_steps_list
                        if self.app.materialize_tx
                        else self.app.tx_steps
                    ),
                    self.memories,
                    num_threads=npu.threads_per_me,
                    poll_instructions=npu.poll_instructions,
                    poll_counts_as_idle=npu.poll_counts_as_idle,
                    ctx_switch_cycles=npu.ctx_switch_cycles,
                    on_packet_done=self._on_tx_done,
                    on_drop=self._on_drop,
                    materialize=self.app.materialize_tx,
                    fuse=fuse,
                )
            self.accountant.attach_me(me)
            self.mes.append(me)

        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind trace emitters against the bus, then start every ME.

        Binding happens here — after every subscriber registered — so
        that event names nobody observes resolve to the bus's shared
        no-op emitter and cost nothing during the run.
        """
        if self._started:
            raise NpuError("chip already started")
        self._started = True
        self._emit_forward = self.bus.emitter("forward")
        # Named-only arrival channel: one event per offered packet, for
        # loss-rate instrumentation (repro.obs.gates).  Named-only keeps
        # trace files unchanged; unobserved it costs nothing at all.
        emit_arrival = self.bus.emitter("arrival", to_sinks=False)
        self._emit_arrival = (
            None if emit_arrival is NOOP_EMITTER else emit_arrival
        )
        self.ports.bind_trace(self.bus)
        for name, resource in self.memories.items():
            resource.bind_trace(self.bus, f"mem_{name}")
        self.ixbus.bind_trace(self.bus, "mem_ixbus")
        if self.config.pipeline_events is not None:
            for me in self.mes:
                emit = self.bus.emitter(prefixed_event_name("pipeline", me.index))
                me.pipeline_emitter = None if emit is NOOP_EMITTER else emit
        for me in self.mes:
            me.start()

    def add_sink(self, sink) -> None:
        """Attach a structured trace sink (LOC analyzer, writer, buffer ...).

        Sinks are wildcard subscribers on the chip's
        :class:`~repro.trace.bus.TraceBus`; attach them before
        :meth:`start`.
        """
        self.bus.attach_sink(sink)

    def deliver(self, port_index: int, packet: Packet) -> None:
        """Traffic-source entry point."""
        self.ports.deliver(port_index, packet)

    # ------------------------------------------------------------------
    # Receive-side hooks
    # ------------------------------------------------------------------
    def _total_forwarded_packets(self) -> int:
        """Annotation provider callback (named so profiles attribute it)."""
        return self.forwarded_packets

    def _total_forwarded_bits(self) -> int:
        """Annotation provider callback (named so profiles attribute it)."""
        return self.forwarded_bits

    def _on_arrival(self, packet: Packet) -> None:
        self.offered_packets += 1
        self.offered_bits += packet.size_bits
        self.traffic_monitor.add(packet.size_bits)
        if self._emit_arrival is not None:
            self._emit_arrival()
        hooks = self.arrival_hooks
        if hooks:
            for hook in hooks:
                hook()

    def _make_rx_steps(self, packet: Packet):
        handle = self.buffer_pool.allocate()
        if handle is None:
            return self._drop_steps(packet)
        self._buffer_handles[packet.seq] = handle
        if self.app.materialize_rx:
            # Materializing engines take the (possibly shared, memoized)
            # list directly — no per-packet generator walk.
            return self.app.rx_steps_list(packet)
        return self.app.rx_steps(packet)

    def _drop_steps(self, packet: Packet):
        from repro.npu.steps import Compute, Drop

        yield Compute(8)  # the failed-allocation path still burns cycles
        yield Drop("no-buffer")

    # ------------------------------------------------------------------
    # Transmit-side hooks
    # ------------------------------------------------------------------
    def _on_put_tx(self, packet: Packet) -> None:
        out_port = packet.output_port
        if out_port is None:
            out_port = packet.input_port
        self._ring_put_for_port[out_port % self._num_ports](packet)

    def _on_tx_done(self, packet: Packet) -> None:
        self.ports.transmit(packet)

    def _on_forward(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bits += packet.size_bits
        self._release_buffer(packet)
        self._emit_forward()

    def _on_drop(self, packet: Packet, reason: str) -> None:
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        self._release_buffer(packet)

    def _release_buffer(self, packet: Packet) -> None:
        handle = self._buffer_handles.pop(packet.seq, None)
        if handle is not None:
            self.buffer_pool.release(handle)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def totals(self) -> RunTotals:
        """Snapshot chip-level totals at the current simulation time."""
        duration_s = self.sim.now_ps / 1e12
        summaries = []
        for me in self.mes:
            fractions = me.states.totals_ps()
            total = sum(fractions.values()) or 1
            summaries.append(
                MeSummary(
                    index=me.index,
                    role=me.role,
                    freq_mhz=me.clock.freq_hz / 1e6,
                    busy_fraction=fractions.get(BUSY, 0) / total,
                    idle_fraction=fractions.get(IDLE, 0) / total,
                    stalled_fraction=fractions.get(STALLED, 0) / total,
                    instructions=me.instructions_executed,
                    packets=me.packets_processed,
                    freq_changes=me.clock.freq_changes,
                )
            )
        return RunTotals(
            duration_s=duration_s,
            offered_packets=self.offered_packets,
            offered_bits=self.offered_bits,
            forwarded_packets=self.forwarded_packets,
            forwarded_bits=self.forwarded_bits,
            rx_dropped=self.ports.rx_dropped,
            drops_by_reason=dict(self.drops_by_reason),
            mean_power_w=self.accountant.mean_power_w(),
            power_breakdown_w=self.accountant.breakdown_w(),
            me_summaries=summaries,
        )


def build_chip(
    config: RunConfig,
    sim: Optional[Simulator] = None,
    fuse: Optional[bool] = None,
) -> NpuChip:
    """Convenience constructor: fresh simulator + chip from a config.

    ``fuse`` forces compute fusion on (``True``) or off (``False``) for
    every microengine; ``None`` defers to the ``REPRO_FUSE`` environment
    default (on).  Fused and unfused runs are byte-identical — the knob
    exists for A/B benchmarking and the equivalence test walls.
    """
    return NpuChip(sim or Simulator(), config, fuse=fuse)
