"""Bounded packet queues: receive queues and transmit rings.

:class:`PacketQueue` is a plain bounded FIFO with drop counting — the
receive queues are where packets are lost when the microengines fall
behind (e.g. while stalled through a DVS transition penalty).
:class:`TxRing` is the unbounded descriptor ring between receive and
transmit microengines (scratchpad rings in the real chip; the apps pay
the scratch-write cost explicitly in their step streams).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import NpuError
from repro.traffic.packet import Packet


class PacketQueue:
    """Bounded FIFO of packets with drop accounting."""

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise NpuError(f"queue {name!r}: capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.max_depth = 0

    def offer(self, packet: Packet) -> bool:
        """Enqueue if space remains; returns False (and counts) on drop."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(packet)
        self.enqueued += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        return True

    def poll(self) -> Optional[Packet]:
        """Dequeue the oldest packet, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        """True when no packets are queued."""
        return not self._items

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PacketQueue {self.name} depth={len(self._items)}/"
            f"{self.capacity} dropped={self.dropped}>"
        )


class TxRing:
    """Unbounded descriptor ring between receive and transmit MEs."""

    def __init__(self, name: str = "txring"):
        self.name = name
        self._items: Deque[Packet] = deque()
        self.enqueued = 0
        self.max_depth = 0

    def put(self, packet: Packet) -> None:
        """Append a descriptor."""
        self._items.append(packet)
        self.enqueued += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def poll(self) -> Optional[Packet]:
        """Dequeue the oldest descriptor, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TxRing {self.name} depth={len(self._items)}>"
