"""Microcode interpreter: programs become microengine step streams.

The interpreter executes a :class:`~repro.npu.isa.Program` one packet at
a time, yielding exactly the step vocabulary the fast models use — one
:class:`~repro.npu.steps.Compute` per retired instruction and a blocking
:class:`~repro.npu.steps.MemRead`/``MemWrite`` per memory reference — so
detailed and fast mode share the microengine runtime and the memory
timing model entirely.

Data flows through the real :class:`~repro.npu.memstore.MemStore`
contents: a ``mem_rd`` returns the word actually stored at the address,
so table walks, entry compares and payload scans branch on real data.
(The data value materializes at issue; the *timing* of the blocking wait
is enforced by the microengine runtime that consumes the yielded step.)
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import zlib

from repro.errors import IsaError
from repro.npu.isa import (
    NUM_REGISTERS,
    REGISTER_INDEX,
    ZERO_REG,
    Instruction,
    Program,
)
from repro.npu.memstore import MemStore
from repro.npu.steps import Compute, Drop, MemPost, MemRead, MemWrite, PutTx, Step
from repro.traffic.packet import Packet

_MASK = 0xFFFFFFFF

#: Default cap on instructions retired per packet (runaway-loop guard).
MAX_INSTRUCTIONS_PER_PACKET = 200_000


def _hash32(a: int, b: int) -> int:
    """The hash unit: a cheap, stable 32-bit combiner."""
    data = ((a & _MASK) << 32 | (b & _MASK)).to_bytes(8, "big")
    return zlib.crc32(data) & _MASK


class Interpreter:
    """Executes a program against per-packet register state.

    Parameters
    ----------
    program:
        The microcode to run per packet.
    stores:
        Mapping of memory-target name to :class:`MemStore` contents.
    max_instructions:
        Per-packet retirement cap.
    """

    def __init__(
        self,
        program: Program,
        stores: Dict[str, MemStore],
        max_instructions: int = MAX_INSTRUCTIONS_PER_PACKET,
    ):
        self.program = program
        self.stores = stores
        self.max_instructions = max_instructions
        self.packets_run = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    def steps_for_packet(self, packet: Packet) -> Iterator[Step]:
        """Generate the step stream for one packet."""
        regs = [0] * NUM_REGISTERS
        regs[REGISTER_INDEX["pkt_size"]] = packet.size_bytes
        regs[REGISTER_INDEX["pkt_port"]] = packet.input_port
        regs[REGISTER_INDEX["pkt_flow"]] = packet.flow_id
        regs[REGISTER_INDEX["pkt_dst"]] = packet.dst_ip & _MASK
        regs[REGISTER_INDEX["pkt_src"]] = packet.src_ip & _MASK
        regs[REGISTER_INDEX["pkt_sport"]] = packet.src_port
        regs[REGISTER_INDEX["pkt_dport"]] = packet.dst_port
        regs[REGISTER_INDEX["pkt_proto"]] = packet.protocol
        regs[REGISTER_INDEX["pkt_paylen"]] = packet.payload_bytes_len

        self.packets_run += 1
        pc = 0
        retired = 0
        program = self.program.instructions
        while True:
            if pc >= len(program):
                raise IsaError(
                    f"{self.program.name}: fell off the end (pc={pc}); "
                    "programs must finish with done/drop"
                )
            if retired >= self.max_instructions:
                raise IsaError(
                    f"{self.program.name}: exceeded {self.max_instructions} "
                    "instructions for one packet (runaway loop?)"
                )
            instr = program[pc]
            retired += 1
            self.instructions_retired += 1
            # Every retired instruction occupies one pipeline slot.
            yield Compute(1)
            pc_next = pc + 1
            opcode = instr.opcode

            if opcode == "nop":
                pass
            elif opcode == "li":
                self._set(regs, instr.operands[0], instr.operands[1])
            elif opcode == "mov":
                self._set(regs, instr.operands[0], regs[instr.operands[1]])
            elif opcode == "alu":
                op, rd, ra, rb = instr.operands
                self._set(regs, rd, self._alu(op, regs[ra], regs[rb], instr))
            elif opcode == "alui":
                op, rd, ra, imm = instr.operands
                self._set(regs, rd, self._alu(op, regs[ra], imm, instr))
            elif opcode == "hash":
                rd, ra, rb = instr.operands
                self._set(regs, rd, _hash32(regs[ra], regs[rb]))
            elif opcode == "br":
                pc_next = instr.operands[0]
            elif opcode == "bcond":
                cond, ra, rb, target = instr.operands
                if self._branch(cond, regs[ra], regs[rb]):
                    pc_next = target
            elif opcode == "mem_rd":
                target, rd, ra, nbytes = instr.operands
                yield MemRead(target, nbytes)
                self._set(regs, rd, self._load(target, regs[ra], instr))
            elif opcode == "mem_wr":
                target, ra, rb, nbytes = instr.operands
                yield MemWrite(target, nbytes)
                self._store_word(target, regs[ra], regs[rb], instr)
            elif opcode == "mem_post":
                target, ra, nbytes = instr.operands
                yield MemPost(target, nbytes)
            elif opcode == "set_out_port":
                packet.output_port = regs[instr.operands[0]] & 0xFF
            elif opcode == "puttx":
                yield PutTx()
            elif opcode == "drop":
                yield Drop(f"uc-{instr.operands[0]}")
                return
            elif opcode == "done":
                return
            else:  # pragma: no cover - Program validation rejects these
                raise IsaError(f"unknown opcode {opcode!r}")
            pc = pc_next

    # ------------------------------------------------------------------
    @staticmethod
    def _set(regs, rd: int, value: int) -> None:
        if rd != ZERO_REG:
            regs[rd] = value & _MASK

    @staticmethod
    def _alu(op: str, a: int, b: int, instr: Instruction) -> int:
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return a << (b & 31)
        if op == "shr":
            return (a & _MASK) >> (b & 31)
        if op == "mul":
            return a * b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        raise IsaError(f"unknown ALU op {op!r} (line {instr.line})")

    @staticmethod
    def _branch(cond: str, a: int, b: int) -> bool:
        if cond == "eq":
            return a == b
        if cond == "ne":
            return a != b
        if cond == "lt":
            return a < b
        if cond == "ge":
            return a >= b
        if cond == "gt":
            return a > b
        return a <= b  # "le"

    def _load(self, target: str, addr: int, instr: Instruction) -> int:
        store = self.stores.get(target)
        if store is None:
            raise IsaError(f"no {target!r} store attached (line {instr.line})")
        return store.read_word(addr & ~0x3)

    def _store_word(self, target: str, addr: int, value: int, instr: Instruction) -> None:
        store = self.stores.get(target)
        if store is None:
            raise IsaError(f"no {target!r} store attached (line {instr.line})")
        store.write_word(addr & ~0x3, value)
