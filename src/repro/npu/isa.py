"""The miniature microengine instruction set.

A deliberately small RISC-flavoured ISA sufficient to express the
reference applications' packet paths: ALU ops over 32 general registers,
immediates, branches, blocking memory references (SRAM/SDRAM/scratch),
a hash unit, and the packet-path primitives (``puttx``/``drop``/``done``).

Per-thread register file layout:

========  =====================================================
``r0-r31``  general purpose
``zero``    always 0 (writes ignored)
``pkt_size`` packet length in bytes (read-only)
``pkt_port`` input port (read-only)
``pkt_flow`` flow id (read-only)
``pkt_dst``  destination IP (read-only)
``pkt_src``  source IP (read-only)
``pkt_sport`` / ``pkt_dport`` / ``pkt_proto``  5-tuple pieces
``pkt_paylen`` payload length in bytes (read-only)
========  =====================================================

Every instruction costs one pipeline cycle in the interpreter; memory
instructions additionally block the thread for the controller's latency,
exactly like the fast-path :class:`~repro.npu.steps.MemRead`/``MemWrite``.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import IsaError

#: ALU operations accepted by ``alu``/``alui``.
ALU_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr", "mul", "min", "max")

#: Branch conditions accepted by ``b<cond>``.
BRANCH_CONDS = ("eq", "ne", "lt", "ge", "gt", "le")

#: Memory targets (match the step vocabulary / controllers).
MEMORY_TARGETS = ("sram", "sdram", "scratch")

#: Opcode -> operand-shape table.  Shapes: R register, I immediate,
#: L label (resolved to instruction index), O alu/branch sub-op.
OPCODES: Dict[str, Tuple[str, ...]] = {
    "nop": (),
    "li": ("R", "I"),
    "mov": ("R", "R"),
    "alu": ("O", "R", "R", "R"),
    "alui": ("O", "R", "R", "I"),
    "hash": ("R", "R", "R"),
    "br": ("L",),
    "bcond": ("O", "R", "R", "L"),
    "mem_rd": ("O", "R", "R", "I"),   # target, data-reg, addr-reg, nbytes
    "mem_wr": ("O", "R", "R", "I"),   # target, addr-reg, data-reg, nbytes
    "mem_post": ("O", "R", "I"),      # target, addr-reg, nbytes
    "set_out_port": ("R",),
    "puttx": (),
    "drop": ("I",),
    "done": (),
}

#: Names of the special (read-only except zero-writes-ignored) registers.
SPECIAL_REGISTERS = (
    "zero",
    "pkt_size",
    "pkt_port",
    "pkt_flow",
    "pkt_dst",
    "pkt_src",
    "pkt_sport",
    "pkt_dport",
    "pkt_proto",
    "pkt_paylen",
)

NUM_GP_REGISTERS = 32
NUM_REGISTERS = NUM_GP_REGISTERS + len(SPECIAL_REGISTERS)

#: Register-name -> index mapping (``r0``..``r31`` then specials).
REGISTER_INDEX: Dict[str, int] = {f"r{k}": k for k in range(NUM_GP_REGISTERS)}
for _offset, _name in enumerate(SPECIAL_REGISTERS):
    REGISTER_INDEX[_name] = NUM_GP_REGISTERS + _offset

ZERO_REG = REGISTER_INDEX["zero"]


class Instruction(NamedTuple):
    """One decoded instruction."""

    opcode: str
    operands: Tuple
    #: Source line for diagnostics (0 when synthesized).
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.opcode} {', '.join(map(str, self.operands))}"


def validate_instruction(instr: Instruction) -> None:
    """Raise :class:`IsaError` if an instruction is malformed."""
    shape = OPCODES.get(instr.opcode)
    if shape is None:
        raise IsaError(f"unknown opcode {instr.opcode!r}")
    if len(instr.operands) != len(shape):
        raise IsaError(
            f"{instr.opcode}: expected {len(shape)} operands, "
            f"got {len(instr.operands)}"
        )
    for kind, operand in zip(shape, instr.operands):
        if kind == "R":
            if not isinstance(operand, int) or not 0 <= operand < NUM_REGISTERS:
                raise IsaError(f"{instr.opcode}: bad register operand {operand!r}")
        elif kind in ("I", "L"):
            if not isinstance(operand, int):
                raise IsaError(f"{instr.opcode}: bad numeric operand {operand!r}")
        elif kind == "O":
            if not isinstance(operand, str):
                raise IsaError(f"{instr.opcode}: bad sub-op {operand!r}")
    # Sub-op domains.
    if instr.opcode in ("alu", "alui") and instr.operands[0] not in ALU_OPS:
        raise IsaError(f"unknown ALU op {instr.operands[0]!r}")
    if instr.opcode == "bcond" and instr.operands[0] not in BRANCH_CONDS:
        raise IsaError(f"unknown branch condition {instr.operands[0]!r}")
    if instr.opcode in ("mem_rd", "mem_wr", "mem_post"):
        if instr.operands[0] not in MEMORY_TARGETS:
            raise IsaError(f"unknown memory target {instr.operands[0]!r}")
        nbytes = instr.operands[-1]
        if not isinstance(nbytes, int) or nbytes <= 0:
            raise IsaError(f"{instr.opcode}: transfer size must be positive")


class Program:
    """A validated instruction sequence with label metadata."""

    def __init__(
        self,
        name: str,
        instructions: List[Instruction],
        labels: Optional[Dict[str, int]] = None,
    ):
        if not instructions:
            raise IsaError(f"program {name!r} is empty")
        for instr in instructions:
            validate_instruction(instr)
        for instr in instructions:
            if instr.opcode in ("br", "bcond"):
                target = instr.operands[-1]
                if not 0 <= target < len(instructions):
                    raise IsaError(
                        f"{name}: branch target {target} outside program "
                        f"(line {instr.line})"
                    )
        self.name = name
        self.instructions = instructions
        self.labels = dict(labels or {})

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def disassemble(self) -> str:
        """Human-readable listing with label annotations."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for index, instr in enumerate(self.instructions):
            for label in sorted(by_index.get(index, ())):
                lines.append(f"{label}:")
            lines.append(f"  {index:4d}  {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Program {self.name!r} {len(self.instructions)} instrs>"
