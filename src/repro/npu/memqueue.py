"""Queued resources: memory controllers and the IX bus.

Each controller is a single-server FIFO queue.  A request occupies the
server for ``occupancy_ns + nbytes * byte_ns`` and the requester observes
``queue_wait + access_ns + nbytes * byte_ns`` before its completion
callback fires — ``access_ns`` exceeding the occupancy models controller
pipelining (a new access can start before the previous data phase fully
drains).

SDRAM latency under load is what idles microengines: with ~60 ns access
latency plus queueing, a reference can take the "as much as 100 clock
cycles" the paper cites, and when all four threads of an ME are waiting
the engine goes idle — the signal EDVS thresholds on.

Controllers can publish per-request trace events (``mem_sram``,
``mem_sdram``, ``mem_scratch``, ``mem_ixbus``) onto the run's
:class:`~repro.trace.bus.TraceBus` via :meth:`QueuedResource.bind_trace`.
These are *named-only* channels: they reach explicit tuple subscribers
but never wildcard sinks, so enabling a trace file does not change its
contents — and with no subscriber the request path pays one ``None``
check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import MemoryModelError
from repro.sim.kernel import Simulator
from repro.units import ns_to_ps


class QueuedResource:
    """Single-server FIFO resource with per-byte transfer time.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Diagnostic label (``"sram"``, ``"sdram"``, ``"ixbus"`` ...).
    access_ns:
        Latency from service start to response.
    occupancy_ns:
        Server hold time per request, before the per-byte term.
    byte_ns:
        Additional server hold and latency per byte transferred.
    on_energy:
        Optional callback ``(name, nbytes)`` the power model uses to
        charge per-access energy.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        access_ns: float,
        occupancy_ns: float,
        byte_ns: float,
        on_energy: Optional[Callable[[str, int], None]] = None,
    ):
        if access_ns <= 0 or occupancy_ns <= 0:
            raise MemoryModelError(f"{name}: access/occupancy must be positive")
        if byte_ns < 0:
            raise MemoryModelError(f"{name}: byte_ns must be non-negative")
        self.sim = sim
        self.name = name
        self._access_ps = ns_to_ps(access_ns)
        self._occupancy_ps = ns_to_ps(occupancy_ns)
        self._byte_ps = byte_ns * 1000.0  # ps per byte, kept fractional
        self.on_energy = on_energy

        self._free_at_ps = 0
        self.requests = 0
        self.bytes_moved = 0
        self.busy_ps = 0
        self.total_wait_ps = 0
        self.max_wait_ps = 0
        self._trace_emit: Optional[Callable[[], None]] = None
        #: ``nbytes -> (hold_ps, latency_ps)``.  The per-byte term is the
        #: only size-dependent arithmetic and request sizes cluster on a
        #: handful of packet lengths, so the service-time computation is
        #: memoized the way ``ClockDomain.delay_for_cycles`` is.  Pure
        #: derivation from constructor constants — never invalidated.
        self._service_cache: Dict[int, Tuple[int, int]] = {}
        self._post_at = sim.post_at

    def bind_trace(self, bus, event_name: Optional[str] = None) -> None:
        """Bind this controller's per-request trace emitter.

        ``event_name`` defaults to ``mem_<name>``.  The channel is
        named-only (``to_sinks=False``): wildcard sinks never see it.
        """
        from repro.trace.bus import NOOP_EMITTER

        emit = bus.emitter(event_name or f"mem_{self.name}", to_sinks=False)
        self._trace_emit = None if emit is NOOP_EMITTER else emit

    def request(
        self, nbytes: int, callback: Callable[..., None], *args: Any
    ) -> int:
        """Issue a request; ``callback(*args)`` fires at completion.

        Returns the absolute completion time in picoseconds.
        """
        service = self._service_cache.get(nbytes)
        if service is None:
            if nbytes <= 0:
                raise MemoryModelError(
                    f"{self.name}: request size must be positive"
                )
            transfer_ps = round(nbytes * self._byte_ps)
            service = (
                self._occupancy_ps + transfer_ps,
                self._access_ps + transfer_ps,
            )
            self._service_cache[nbytes] = service
        hold, latency = service
        now = self.sim.now_ps
        start = now if now > self._free_at_ps else self._free_at_ps
        wait = start - now
        self._free_at_ps = start + hold
        done = start + latency

        self.requests += 1
        self.bytes_moved += nbytes
        self.busy_ps += hold
        self.total_wait_ps += wait
        if wait > self.max_wait_ps:
            self.max_wait_ps = wait
        if self.on_energy is not None:
            self.on_energy(self.name, nbytes)
        if self._trace_emit is not None:
            self._trace_emit()

        self._post_at(done, callback, *args)
        return done

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mean_wait_ns(self) -> float:
        """Average queueing wait per request, in nanoseconds."""
        if self.requests == 0:
            return 0.0
        return self.total_wait_ps / self.requests / 1000.0

    def utilization(self, elapsed_ps: int) -> float:
        """Server busy fraction over ``elapsed_ps`` of simulated time."""
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.busy_ps / elapsed_ps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QueuedResource {self.name} requests={self.requests} "
            f"mean_wait={self.mean_wait_ns:.1f}ns>"
        )


def build_memories(sim: Simulator, memory_config, on_energy=None):
    """Build the (sram, sdram, scratch, ixbus) resources from config."""
    sram = QueuedResource(
        sim,
        "sram",
        memory_config.sram_access_ns,
        memory_config.sram_occupancy_ns,
        memory_config.sram_byte_ns,
        on_energy,
    )
    sdram = QueuedResource(
        sim,
        "sdram",
        memory_config.sdram_access_ns,
        memory_config.sdram_occupancy_ns,
        memory_config.sdram_byte_ns,
        on_energy,
    )
    scratch = QueuedResource(
        sim,
        "scratch",
        memory_config.scratch_access_ns,
        memory_config.scratch_occupancy_ns,
        memory_config.scratch_byte_ns,
        on_energy,
    )
    ixbus = QueuedResource(
        sim,
        "ixbus",
        memory_config.bus_access_ns,
        memory_config.bus_access_ns,
        memory_config.bus_byte_ns,
        on_energy,
    )
    return sram, sdram, scratch, ixbus
