"""Word-addressed memory contents (the *data* half of the memory model).

Timing lives in :mod:`repro.npu.memqueue`; this module stores what the
memories actually contain, so detailed-mode microcode can make real
data-dependent decisions (trie walks over table words, NAT entry
compares, payload scans).  The store is sparse — a dict of 32-bit words —
since simulated SRAM/SDRAM are large but sparsely touched.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import MemoryModelError

WORD_BYTES = 4
WORD_MASK = 0xFFFFFFFF


class MemStore:
    """Sparse 32-bit-word memory with byte-level helpers.

    Addresses are byte addresses; word accesses must be word-aligned.
    Unwritten locations read as zero, as initialized hardware would.
    """

    def __init__(self, name: str, size_bytes: int):
        if size_bytes <= 0:
            raise MemoryModelError(f"{name}: size must be positive")
        self.name = name
        self.size_bytes = size_bytes
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    # -- word access -----------------------------------------------------
    def _check_word_addr(self, addr: int) -> None:
        if addr % WORD_BYTES != 0:
            raise MemoryModelError(f"{self.name}: unaligned word address {addr:#x}")
        if not 0 <= addr < self.size_bytes:
            raise MemoryModelError(
                f"{self.name}: address {addr:#x} outside 0..{self.size_bytes:#x}"
            )

    def read_word(self, addr: int) -> int:
        """Read the 32-bit word at byte address ``addr``."""
        self._check_word_addr(addr)
        self.reads += 1
        return self._words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Write a 32-bit word at byte address ``addr``."""
        self._check_word_addr(addr)
        self.writes += 1
        self._words[addr] = value & WORD_MASK

    # -- byte access -------------------------------------------------------
    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write arbitrary bytes starting at ``addr`` (any alignment)."""
        if not 0 <= addr <= self.size_bytes - len(data):
            raise MemoryModelError(
                f"{self.name}: byte range {addr:#x}+{len(data)} out of bounds"
            )
        for offset, byte in enumerate(data):
            byte_addr = addr + offset
            word_addr = byte_addr & ~0x3
            shift = (byte_addr & 0x3) * 8
            word = self._words.get(word_addr, 0)
            word = (word & ~(0xFF << shift)) | (byte << shift)
            self._words[word_addr] = word
        self.writes += (len(data) + WORD_BYTES - 1) // WORD_BYTES

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``addr``."""
        if not 0 <= addr <= self.size_bytes - length:
            raise MemoryModelError(
                f"{self.name}: byte range {addr:#x}+{length} out of bounds"
            )
        out = bytearray()
        for offset in range(length):
            byte_addr = addr + offset
            word = self._words.get(byte_addr & ~0x3, 0)
            out.append((word >> ((byte_addr & 0x3) * 8)) & 0xFF)
        self.reads += (length + WORD_BYTES - 1) // WORD_BYTES
        return bytes(out)

    @property
    def words_in_use(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemStore {self.name} {self.words_in_use} words in use>"
