"""Multithreaded microengine runtime.

A microengine (ME) is a single-issue core with a small number of hardware
threads (4 on the IXP1200).  Exactly one thread executes at a time; a
thread that issues a memory reference blocks and the context arbiter
swaps in the next ready thread.  Two behaviours matter for the paper's
DVS study and are modelled faithfully:

* **polling is busy work** — a thread that finds no packet waiting spends
  ``poll_instructions`` cycles checking queues and status registers, so an
  ME with no traffic still burns active power ("even if an ME does not
  process packets during low workload, it will actively execute
  instructions to poll the buffers");
* **idle means all threads blocked on memory** — only then does the
  engine sit idle, which is the quantity EDVS windows and thresholds.

The runtime executes application *step streams* (:mod:`repro.npu.steps`);
both the fast per-packet models and the detailed microcode interpreter
produce the same vocabulary, so they share this engine.
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from repro.errors import NpuError, SimulationError
from repro.npu.steps import (
    OP_COMPUTE,
    OP_DROP,
    OP_FUSED_COMPUTE,
    OP_MEM_BLOCKING,
    OP_MEM_POST,
    OP_PUT_TX,
    Compute,
    FusedCompute,
    Step,
    materialize_steps,
)
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Event, Simulator
from repro.sim.stats import IntervalAccumulator
from repro.traffic.packet import Packet

#: Engine states charged by the interval accumulator.
BUSY, IDLE, STALLED = "busy", "idle", "stalled"

#: Consecutive zero-time operations after which the runtime assumes an
#: application bug (a step stream that never advances simulated time).
_ZERO_TIME_LIMIT = 10_000


def _ignore_completion() -> None:
    """Completion callback for posted (fire-and-forget) transfers."""


class _HwThread:
    """One hardware thread's context."""

    __slots__ = ("index", "waiting", "packet", "step_iter")

    def __init__(self, index: int):
        self.index = index
        self.waiting = False  # blocked on a memory reference
        self.packet: Optional[Packet] = None
        self.step_iter: Optional[Iterator[Step]] = None


class RxPortMux:
    """Round-robin packet source over a group of device ports."""

    def __init__(self, ports: List):
        if not ports:
            raise NpuError("RxPortMux needs at least one port")
        self.ports = ports
        self._next = 0

    def poll(self) -> Optional[Packet]:
        """Return a packet from the next non-empty port queue, if any."""
        count = len(self.ports)
        for offset in range(count):
            port = self.ports[(self._next + offset) % count]
            packet = port.rx_queue.poll()
            if packet is not None:
                self._next = (self._next + offset + 1) % count
                return packet
        return None


class Microengine:
    """One microengine: threads, arbiter, timing and state accounting.

    Parameters
    ----------
    sim / clock:
        Kernel and this ME's (scalable) clock domain.
    index:
        ME number (used in trace-event prefixes).
    role:
        ``"rx"`` or ``"tx"``.
    work_source:
        Object with ``poll() -> Optional[Packet]`` supplying work.
    make_steps:
        ``callable(packet) -> Iterator[Step]`` — the application's step
        stream for one packet in this ME's role.
    memories:
        Mapping of target name (``sram``/``sdram``/``scratch``) to
        :class:`~repro.npu.memqueue.QueuedResource`.
    num_threads / poll_instructions / ctx_switch_cycles:
        Architecture parameters (see :class:`repro.config.NpuConfig`).
    on_put_tx:
        Chip hook for :class:`~repro.npu.steps.PutTx` steps.
    on_packet_done:
        Chip hook called when a packet's step stream completes
        (transmit-side MEs hand the packet to the wire here).
    on_drop:
        Chip hook for :class:`~repro.npu.steps.Drop` steps.
    materialize:
        List out each packet's step stream at bind time instead of
        resuming the app generator per step.  Valid only for pure
        streams (``AppModel.materialize_rx`` / ``materialize_tx``);
        execution is bit-identical to lazy iteration.
    fuse:
        With ``materialize``, additionally collapse adjacent computes
        into single completion events.  Per-ME observables stay exact,
        but equal-picosecond event ties against other components may
        resolve differently than unfused execution, so full-system
        byte-reproducibility is only guaranteed with ``fuse=False``
        (the default; see ``_fuse`` below).
    """

    def __init__(
        self,
        sim: Simulator,
        clock: ClockDomain,
        index: int,
        role: str,
        work_source,
        make_steps: Callable[[Packet], Iterator[Step]],
        memories: dict,
        num_threads: int = 4,
        poll_instructions: int = 24,
        poll_counts_as_idle: bool = False,
        ctx_switch_cycles: int = 1,
        on_put_tx: Optional[Callable[[Packet], None]] = None,
        on_packet_done: Optional[Callable[[Packet], None]] = None,
        on_drop: Optional[Callable[[Packet, str], None]] = None,
        materialize: bool = False,
        fuse: bool = False,
    ):
        if role not in ("rx", "tx"):
            raise NpuError(f"role must be 'rx' or 'tx', got {role!r}")
        if num_threads <= 0:
            raise NpuError(f"num_threads must be positive, got {num_threads}")
        self.sim = sim
        self.clock = clock
        self.index = index
        self.role = role
        self.work_source = work_source
        self.make_steps = make_steps
        self.memories = memories
        self.poll_instructions = poll_instructions
        self.poll_counts_as_idle = poll_counts_as_idle
        self.ctx_switch_cycles = ctx_switch_cycles
        self.on_put_tx = on_put_tx
        self.on_packet_done = on_packet_done
        self.on_drop = on_drop

        self.threads = [_HwThread(k) for k in range(num_threads)]
        self._ready: Deque[_HwThread] = deque()
        self._current: Optional[_HwThread] = None
        self._stalled = False
        self._stall_until_ps = 0
        self.states = IntervalAccumulator(sim, BUSY, name=f"me{index}.states")

        #: Supply voltage paired with the clock frequency (set by DVS).
        self.vdd = 1.3
        #: Listener invoked on every state or VF change (power model).
        self.power_listener: Optional[Callable[["Microengine"], None]] = None
        #: Listener invoked per executed instruction batch (trace events).
        self.on_instructions: Optional[Callable[[int, int], None]] = None
        #: Bound ``m<k>_pipeline`` bus emitter, one call per instruction
        #: block.  The chip binds it at start only when pipeline events
        #: are both configured and subscribed; ``None`` costs nothing.
        self.pipeline_emitter: Optional[Callable[[], None]] = None

        self.instructions_executed = 0
        self.packets_processed = 0
        self.mem_accesses = 0
        self.polls = 0
        self._zero_time_ops = 0
        self._started = False

        #: Materialize step streams at packet bind.  Only set for
        #: applications whose streams are pure (``materialize_rx`` /
        #: ``materialize_tx`` on the app model).
        self._materialize = materialize
        #: Additionally fuse adjacent computes into single completion
        #: events.  Opt-in only: per-ME timing and counters are exact
        #: (see tests/test_fastpath.py), but a fused block's completion
        #: event draws its kernel sequence number at block start, so
        #: equal-picosecond ties against *other* components can resolve
        #: in a different order than unfused execution — full-system
        #: runs are deterministic but not bit-identical to unfused ones.
        self._fuse = fuse and materialize
        #: In-flight fused-compute plan: ``(handle, boundaries, parts,
        #: thread)`` where ``boundaries`` are the absolute per-part
        #: completion times.  At most one exists (a single thread
        #: computes at a time); stalls, frequency changes and run end
        #: re-plan it back into per-part form so every observable matches
        #: the unfused execution exactly.
        self._fused_plan: Optional[
            Tuple[Event, List[int], tuple, _HwThread]
        ] = None
        if self._fuse:
            clock.on_change.append(self._replan_fused)
            sim.on_run_end.append(self._settle_fused)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Enable all threads and begin executing."""
        if self._started:
            raise NpuError(f"ME{self.index} already started")
        self._started = True
        for thread in self.threads:
            self._ready.append(thread)
        self._set_state(BUSY)
        self._dispatch()

    # ------------------------------------------------------------------
    # DVS interface
    # ------------------------------------------------------------------
    def set_vf(self, freq_hz: float, vdd: float) -> None:
        """Apply a new voltage/frequency point (takes effect now)."""
        self.clock.set_frequency(freq_hz)
        self.vdd = vdd
        self._notify_power()

    def stall_for(self, duration_ps: int) -> None:
        """Freeze execution for a VF-transition penalty.

        In-flight compute finishes but its thread is parked; memory
        responses arriving during the stall mark threads ready without
        dispatching them.  Overlapping stalls extend to the latest end.
        """
        if duration_ps <= 0:
            return
        end = self.sim.now_ps + duration_ps
        self._stalled = True
        if end > self._stall_until_ps:
            self._stall_until_ps = end
            self.sim.post_at(end, self._maybe_unstall, end)
        if self._fused_plan is not None:
            # A fused compute block is in flight: fall back to per-part
            # completions so the thread parks at the same instant (and
            # with the same instruction count) as unfused execution.
            self._replan_fused()
        if self._current is None:
            # Nothing mid-compute: the engine freezes as of now; an
            # in-flight compute instead parks its thread on completion.
            self._set_state(STALLED)

    def _maybe_unstall(self, scheduled_end: int) -> None:
        if not self._stalled or scheduled_end < self._stall_until_ps:
            return  # superseded by a longer stall
        self._stalled = False
        self._dispatch()

    @property
    def is_stalled(self) -> bool:
        """True while a VF-transition penalty is in effect."""
        return self._stalled

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._stalled:
            self._set_state(STALLED)
            return
        if self._current is not None:
            return
        if not self._ready:
            self._set_state(IDLE)
            return
        thread = self._ready.popleft()
        self._current = thread
        self._set_state(BUSY)
        self._continue(thread)

    def _continue(self, thread: _HwThread) -> None:
        """Run ``thread`` until it schedules a timed action or blocks."""
        while True:
            step_iter = thread.step_iter
            if step_iter is None:
                if self._acquire(thread):
                    continue  # packet bound; execute its steps
                return  # polling: a timed wait was scheduled
            step = next(step_iter, None)
            if step is None:
                self._finish_packet(thread)
                continue
            op = step.op
            if op == OP_COMPUTE:
                self._run_compute(thread, step.instructions)
                return
            if op == OP_MEM_BLOCKING:
                self._issue_memory(thread, step)
                return
            if op == OP_MEM_POST:
                self._count_zero_time()
                self._post_memory(step)
                continue
            if op == OP_FUSED_COMPUTE:
                self._run_fused(thread, step)
                return
            if op == OP_PUT_TX:
                self._count_zero_time()
                if self.on_put_tx is not None and thread.packet is not None:
                    self.on_put_tx(thread.packet)
                continue
            if op == OP_DROP:
                self._count_zero_time()
                if self.on_drop is not None and thread.packet is not None:
                    self.on_drop(thread.packet, step.reason)
                thread.packet = None
                thread.step_iter = None
                continue
            raise NpuError(f"ME{self.index}: unknown step {step!r}")

    def _acquire(self, thread: _HwThread) -> bool:
        packet = self.work_source.poll()
        if packet is not None:
            self._zero_time_ops = 0
            thread.packet = packet
            steps = self.make_steps(packet)
            if self._materialize:
                # Pure stream: list it out (C-speed iteration) and fuse
                # adjacent computes — unless a per-block observer needs
                # the original block boundaries.
                steps = iter(
                    materialize_steps(
                        steps,
                        fuse=(
                            self._fuse
                            and self.pipeline_emitter is None
                            and self.on_instructions is None
                        ),
                    )
                )
            thread.step_iter = steps
            return True
        # Busy-poll: burn cycles checking queues, then let the next
        # ready thread have the engine (round-robin).
        self.polls += 1
        delay = self.clock.delay_for_cycles(self.poll_instructions)
        self.instructions_executed += self.poll_instructions
        if self.pipeline_emitter is not None:
            self.pipeline_emitter()
        if self.on_instructions is not None:
            self.on_instructions(self.index, self.poll_instructions)
        if self.poll_counts_as_idle:
            # Ablation accounting: treat the poll loop as idle time.
            self._set_state(IDLE)
        self.sim.post(delay, self._poll_done, thread)
        return False

    def _run_compute(self, thread: _HwThread, instructions: int) -> None:
        self._zero_time_ops = 0
        self.instructions_executed += instructions
        if self.pipeline_emitter is not None:
            self.pipeline_emitter()
        if self.on_instructions is not None:
            self.on_instructions(self.index, instructions)
        delay = self.clock.delay_for_cycles(instructions)
        self.sim.post(delay, self._compute_done, thread)

    def _run_fused(self, thread: _HwThread, step: FusedCompute) -> None:
        """Execute a fused compute block with one completion event.

        Instructions are charged up front (each part would be charged at
        its start anyway, and the block is uninterruptible except by the
        re-plan paths, which refund un-started parts).  The delay is the
        sum of per-part delays so rounding matches unfused execution.
        """
        self._zero_time_ops = 0
        self.instructions_executed += step.instructions
        if self.pipeline_emitter is not None:
            self.pipeline_emitter()
        if self.on_instructions is not None:
            self.on_instructions(self.index, step.instructions)
        delay_for_cycles = self.clock.delay_for_cycles
        t = self.sim.now_ps
        bounds: List[int] = []
        for part in step.parts:
            t += delay_for_cycles(part)
            bounds.append(t)
        handle = self.sim.schedule_at(t, self._fused_done, thread)
        self._fused_plan = (handle, bounds, step.parts, thread)

    def _post_memory(self, step) -> None:
        try:
            resource = self.memories[step.target]
        except KeyError:
            raise NpuError(
                f"ME{self.index}: no {step.target!r} controller attached"
            ) from None
        self.mem_accesses += 1
        resource.request(step.nbytes, _ignore_completion)

    def _issue_memory(self, thread: _HwThread, step) -> None:
        self._zero_time_ops = 0
        try:
            resource = self.memories[step.target]
        except KeyError:
            raise NpuError(
                f"ME{self.index}: no {step.target!r} controller attached"
            ) from None
        self.mem_accesses += 1
        thread.waiting = True
        resource.request(step.nbytes, self._mem_done, thread)
        self._current = None
        # A context switch burns engine cycles only when there is a
        # ready thread to switch to; with every other thread blocked the
        # engine goes idle (or stalled) as of the issue itself.
        if self.ctx_switch_cycles > 0 and self._ready:
            delay = self.clock.delay_for_cycles(self.ctx_switch_cycles)
            self.sim.post(delay, self._dispatch)
        else:
            self._dispatch()

    # -- timed-action completions ------------------------------------------
    def _poll_done(self, thread: _HwThread) -> None:
        self._current = None
        self._ready.append(thread)
        self._dispatch()

    def _compute_done(self, thread: _HwThread) -> None:
        if self._stalled:
            # The penalty began mid-compute: park the thread at the front
            # so it resumes first after the stall.
            self._current = None
            self._ready.appendleft(thread)
            self._set_state(STALLED)
            return
        self._continue(thread)

    def _fused_done(self, thread: _HwThread) -> None:
        self._fused_plan = None
        self._compute_done(thread)

    def _replan_fused(self) -> None:
        """Split an in-flight fused block back into per-part execution.

        Called when a stall or frequency change interrupts the block.
        The part in flight *now* keeps its already-scheduled timing (an
        unfused compute's delay is likewise fixed at issue); un-started
        parts are refunded and re-queued as ordinary steps, so they are
        re-charged and re-timed exactly as unfused execution would.  The
        boundary search is non-strict (``bounds[j] >= now``) because a
        part completing at this very picosecond has not fired yet.
        """
        plan = self._fused_plan
        if plan is None:
            return
        self._fused_plan = None
        handle, bounds, parts, thread = plan
        handle.cancel()
        now = self.sim.now_ps
        j = 0
        while bounds[j] < now:
            j += 1
        rest = parts[j + 1 :]
        if rest:
            self.instructions_executed -= sum(rest)
            follow: Step = (
                FusedCompute(rest) if len(rest) >= 2 else Compute(rest[0])
            )
            thread.step_iter = chain((follow,), thread.step_iter)
        self.sim.post_at(bounds[j], self._compute_done, thread)

    def _settle_fused(self) -> None:
        """Reconcile counters when a run ends mid-fused-block.

        Unfused execution charges each part at its *start*, so at run end
        a part that has not started yet is uncharged.  The search here is
        strict (``bounds[j] > now``): events at exactly ``until_ps`` have
        already fired, so a part completing now is finished and its
        successor (starting now) is charged.  The re-queued remainder
        keeps a resumed run bit-identical to unfused execution.
        """
        plan = self._fused_plan
        if plan is None:
            return
        handle, bounds, parts, thread = plan
        self._fused_plan = None
        now = self.sim.now_ps
        if bounds[-1] <= now:
            # Aborted (``stop()``) at or past the block's end: every part
            # started, all charges stand, and the queued completion event
            # finishes the block if the run resumes.
            return
        handle.cancel()
        j = 0
        while bounds[j] <= now:
            j += 1
        rest = parts[j + 1 :]
        if rest:
            self.instructions_executed -= sum(rest)
            follow: Step = (
                FusedCompute(rest) if len(rest) >= 2 else Compute(rest[0])
            )
            thread.step_iter = chain((follow,), thread.step_iter)
        self.sim.post_at(bounds[j], self._compute_done, thread)

    def _mem_done(self, thread: _HwThread) -> None:
        thread.waiting = False
        self._ready.append(thread)
        if self._current is None and not self._stalled:
            self._dispatch()
        elif self._stalled and self._current is None:
            # Mark the freeze only when nothing is executing: a compute
            # in flight keeps the engine BUSY until it completes (the
            # thread parks in _compute_done).
            self._set_state(STALLED)

    def _finish_packet(self, thread: _HwThread) -> None:
        self._count_zero_time()
        packet = thread.packet
        thread.packet = None
        thread.step_iter = None
        if packet is not None:
            self.packets_processed += 1
            if self.on_packet_done is not None:
                self.on_packet_done(packet)

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _set_state(self, state: str) -> None:
        if self.states.state != state:
            self.states.set_state(state)
            self._notify_power()

    def _notify_power(self) -> None:
        if self.power_listener is not None:
            self.power_listener(self)

    def _count_zero_time(self) -> None:
        self._zero_time_ops += 1
        if self._zero_time_ops > _ZERO_TIME_LIMIT:
            raise SimulationError(
                f"ME{self.index}: {_ZERO_TIME_LIMIT} consecutive zero-time "
                "operations — the application step stream never advances time"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def idle_fraction_window(self) -> float:
        """Idle share of the current observation window (EDVS input)."""
        return self.states.window_fractions().get(IDLE, 0.0)

    def reset_window(self) -> None:
        """Start a new EDVS observation window."""
        self.states.reset_window()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ME{self.index} {self.role} {self.clock.freq_hz/1e6:.0f}MHz "
            f"state={self.states.state}>"
        )
