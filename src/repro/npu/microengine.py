"""Multithreaded microengine runtime.

A microengine (ME) is a single-issue core with a small number of hardware
threads (4 on the IXP1200).  Exactly one thread executes at a time; a
thread that issues a memory reference blocks and the context arbiter
swaps in the next ready thread.  Two behaviours matter for the paper's
DVS study and are modelled faithfully:

* **polling is busy work** — a thread that finds no packet waiting spends
  ``poll_instructions`` cycles checking queues and status registers, so an
  ME with no traffic still burns active power ("even if an ME does not
  process packets during low workload, it will actively execute
  instructions to poll the buffers");
* **idle means all threads blocked on memory** — only then does the
  engine sit idle, which is the quantity EDVS windows and thresholds.

The runtime executes application *step streams* (:mod:`repro.npu.steps`);
both the fast per-packet models and the detailed microcode interpreter
produce the same vocabulary, so they share this engine.
"""

from __future__ import annotations

import os
from collections import deque
from itertools import chain
from typing import Callable, Deque, Iterator, List, Optional

from repro.errors import NpuError, SimulationError
from repro.npu.steps import (
    OP_COMPUTE,
    OP_DROP,
    OP_FUSED_COMPUTE,
    OP_MEM_BLOCKING,
    OP_MEM_POST,
    OP_PUT_TX,
    Compute,
    FusedCompute,
    Step,
)
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.stats import IntervalAccumulator
from repro.traffic.packet import Packet

#: Engine states charged by the interval accumulator.
BUSY, IDLE, STALLED = "busy", "idle", "stalled"

#: Consecutive zero-time operations after which the runtime assumes an
#: application bug (a step stream that never advances simulated time).
_ZERO_TIME_LIMIT = 10_000

#: Environment switch for compute fusion (``"off"``/``"0"``/``"false"``/
#: ``"no"`` disables it).  Default on: the seq-relay execution scheme
#: (see :meth:`Microengine._fused_advance`) is bit-identical to unfused
#: execution, so fusion is a pure fast path.  Deliberately an environment
#: variable and not a :class:`~repro.config.RunConfig` field — config
#: hashes (and therefore sweep-cache job identity) must not depend on a
#: knob that cannot change results.
FUSE_ENV_VAR = "REPRO_FUSE"


def fusion_enabled() -> bool:
    """Whether compute fusion is on (the ``REPRO_FUSE`` switch)."""
    value = os.environ.get(FUSE_ENV_VAR, "").strip().lower()
    return value not in ("off", "0", "false", "no")


def _ignore_completion() -> None:
    """Completion callback for posted (fire-and-forget) transfers."""


class _HwThread:
    """One hardware thread's context."""

    __slots__ = ("index", "waiting", "packet", "step_iter", "pushback")

    def __init__(self, index: int):
        self.index = index
        self.waiting = False  # blocked on a memory reference
        self.packet: Optional[Packet] = None
        self.step_iter: Optional[Iterator[Step]] = None
        #: One step read ahead of execution.  The fused-compute
        #: lookahead consumes steps until the compute run ends and parks
        #: the run-ending step here; the arbiter drains it before
        #: touching ``step_iter`` again.
        self.pushback: Optional[Step] = None


class RxPortMux:
    """Round-robin packet source over a group of device ports."""

    def __init__(self, ports: List):
        if not ports:
            raise NpuError("RxPortMux needs at least one port")
        self.ports = ports
        self._next = 0
        # Precomputed probe tables, one rotation per starting port: each
        # entry pairs a pre-bound queue-poll method with the successor
        # index to store on a hit.  The hot poll loop walks bound methods
        # instead of recomputing modular indices and attribute chains.
        count = len(ports)
        self._probe_tables = [
            tuple(
                (ports[(start + off) % count].rx_queue.poll,
                 (start + off + 1) % count)
                for off in range(count)
            )
            for start in range(count)
        ]
        # The queues' backing deques, for the empty-poll fast path: a
        # truthiness test per deque is several times cheaper than a
        # bound ``poll()`` call per port, and a missed poll (every port
        # empty) is the engine's steady state under light load.  Safe to
        # alias: a PacketQueue's deque identity is fixed for its life.
        self._queue_items = tuple(port.rx_queue._items for port in ports)

    def poll(self) -> Optional[Packet]:
        """Return a packet from the next non-empty port queue, if any."""
        for items in self._queue_items:
            if items:
                break
        else:
            return None
        for queue_poll, successor in self._probe_tables[self._next]:
            packet = queue_poll()
            if packet is not None:
                self._next = successor
                return packet
        return None  # pragma: no cover - unreachable (a queue was non-empty)


class Microengine:
    """One microengine: threads, arbiter, timing and state accounting.

    Parameters
    ----------
    sim / clock:
        Kernel and this ME's (scalable) clock domain.
    index:
        ME number (used in trace-event prefixes).
    role:
        ``"rx"`` or ``"tx"``.
    work_source:
        Object with ``poll() -> Optional[Packet]`` supplying work.
    make_steps:
        ``callable(packet) -> Iterator[Step]`` — the application's step
        stream for one packet in this ME's role.
    memories:
        Mapping of target name (``sram``/``sdram``/``scratch``) to
        :class:`~repro.npu.memqueue.QueuedResource`.
    num_threads / poll_instructions / ctx_switch_cycles:
        Architecture parameters (see :class:`repro.config.NpuConfig`).
    on_put_tx:
        Chip hook for :class:`~repro.npu.steps.PutTx` steps.
    on_packet_done:
        Chip hook called when a packet's step stream completes
        (transmit-side MEs hand the packet to the wire here).
    on_drop:
        Chip hook for :class:`~repro.npu.steps.Drop` steps.
    materialize:
        List out each packet's step stream at bind time instead of
        resuming the app generator per step.  Valid only for pure
        streams (``AppModel.materialize_rx`` / ``materialize_tx``);
        execution is bit-identical to lazy iteration.
    fuse:
        With ``materialize``, additionally execute adjacent computes as
        one :class:`~repro.npu.steps.FusedCompute` block via the
        seq-relay (see :meth:`_fused_advance`).  The relay charges and
        times each part at exactly the instants unfused execution
        would, so full-system runs — including equal-picosecond event
        ties against other components — are bit-identical to unfused
        execution.  ``None`` (the default) resolves the ``REPRO_FUSE``
        environment switch, which defaults to on.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: ClockDomain,
        index: int,
        role: str,
        work_source,
        make_steps: Callable[[Packet], Iterator[Step]],
        memories: dict,
        num_threads: int = 4,
        poll_instructions: int = 24,
        poll_counts_as_idle: bool = False,
        ctx_switch_cycles: int = 1,
        on_put_tx: Optional[Callable[[Packet], None]] = None,
        on_packet_done: Optional[Callable[[Packet], None]] = None,
        on_drop: Optional[Callable[[Packet, str], None]] = None,
        materialize: bool = False,
        fuse: Optional[bool] = None,
    ):
        if role not in ("rx", "tx"):
            raise NpuError(f"role must be 'rx' or 'tx', got {role!r}")
        if num_threads <= 0:
            raise NpuError(f"num_threads must be positive, got {num_threads}")
        self.sim = sim
        self.clock = clock
        self.index = index
        self.role = role
        self.work_source = work_source
        self.make_steps = make_steps
        self.memories = memories
        # Hot-path bindings: the arbiter loop runs tens of thousands of
        # times per simulated millisecond, so the per-call attribute
        # chains are pre-resolved once.  ``work_source``, the kernel and
        # the clock are construction-time-final (nothing rebinds them).
        self._ws_poll = work_source.poll
        self._post = sim.post
        self._delay_for_cycles = clock.delay_for_cycles
        self.poll_instructions = poll_instructions
        self.poll_counts_as_idle = poll_counts_as_idle
        self.ctx_switch_cycles = ctx_switch_cycles
        # Fixed-cycle delays the arbiter pays tens of thousands of times
        # per run, resolved to picoseconds once per frequency instead of
        # once per event.  ``set_frequency`` fires ``on_change`` after
        # clearing the clock's own memo, so the refresh below re-derives
        # both from the new rate — values stay bit-identical to calling
        # ``delay_for_cycles`` at every poll.
        self._poll_delay_ps = self._delay_for_cycles(poll_instructions)
        self._ctx_delay_ps = self._delay_for_cycles(ctx_switch_cycles)
        clock.on_change.append(self._refresh_fixed_delays)
        self.on_put_tx = on_put_tx
        self.on_packet_done = on_packet_done
        self.on_drop = on_drop

        self.threads = [_HwThread(k) for k in range(num_threads)]
        self._ready: Deque[_HwThread] = deque()
        self._current: Optional[_HwThread] = None
        self._stalled = False
        self._stall_until_ps = 0
        self.states = IntervalAccumulator(sim, BUSY, name=f"me{index}.states")

        #: Supply voltage paired with the clock frequency (set by DVS).
        self.vdd = 1.3
        #: Listener invoked on every state or VF change (power model).
        self.power_listener: Optional[Callable[["Microengine"], None]] = None
        #: Listener invoked per executed instruction batch (trace events).
        self.on_instructions: Optional[Callable[[int, int], None]] = None
        #: Bound ``m<k>_pipeline`` bus emitter, one call per instruction
        #: block.  The chip binds it at start only when pipeline events
        #: are both configured and subscribed; ``None`` costs nothing.
        self.pipeline_emitter: Optional[Callable[[], None]] = None

        self.instructions_executed = 0
        self.packets_processed = 0
        self.mem_accesses = 0
        self.polls = 0
        self._zero_time_ops = 0
        self._started = False

        #: Materialize step streams at packet bind.  Only set for
        #: applications whose streams are pure (``materialize_rx`` /
        #: ``materialize_tx`` on the app model).
        self._materialize = materialize
        #: Execute runs of adjacent computes via the seq-relay (default
        #: on, ``REPRO_FUSE`` to override).  Bit-identical to unfused
        #: execution by construction: each part is charged, timed and
        #: seq-numbered at exactly the unfused instants, so no replan or
        #: run-end settling is needed — stalls, frequency changes and
        #: runs ending mid-block all observe unfused state.  Fusion
        #: happens at execution, not at materialization: when the
        #: arbiter decodes a compute it reads ahead until the run ends
        #: (pure list iteration — lookahead is only enabled for
        #: materialized streams) and relays the whole run, so packets
        #: whose streams have no adjacent computes pay nothing.
        self._fuse = (fusion_enabled() if fuse is None else bool(fuse)) and (
            materialize
        )
        #: Live per-bind gate: fusion is suspended while a per-block
        #: observer (pipeline emitter / instruction listener) needs the
        #: original block boundaries.  Refreshed at every packet bind.
        self._fuse_exec = False
        #: In-flight fused-compute relay cursor.  At most one fused block
        #: is in flight per engine (a single thread computes at a time),
        #: so the cursor lives on the engine itself: no per-block plan
        #: object, no per-part bound-method allocation — the relay posts
        #: the prebound callback with no arguments.
        self._fused_parts: tuple = ()
        self._fused_n = 0
        self._fused_index = 0
        self._fused_thread: Optional[_HwThread] = None
        self._fused_relay = self._fused_advance

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Enable all threads and begin executing."""
        if self._started:
            raise NpuError(f"ME{self.index} already started")
        self._started = True
        for thread in self.threads:
            self._ready.append(thread)
        self._set_state(BUSY)
        self._dispatch()

    # ------------------------------------------------------------------
    # DVS interface
    # ------------------------------------------------------------------
    def set_vf(self, freq_hz: float, vdd: float) -> None:
        """Apply a new voltage/frequency point (takes effect now)."""
        self.clock.set_frequency(freq_hz)
        self.vdd = vdd
        self._notify_power()

    def _refresh_fixed_delays(self) -> None:
        """Clock ``on_change`` listener: re-derive cached fixed delays."""
        self._poll_delay_ps = self._delay_for_cycles(self.poll_instructions)
        self._ctx_delay_ps = self._delay_for_cycles(self.ctx_switch_cycles)

    def stall_for(self, duration_ps: int) -> None:
        """Freeze execution for a VF-transition penalty.

        In-flight compute finishes but its thread is parked; memory
        responses arriving during the stall mark threads ready without
        dispatching them.  Overlapping stalls extend to the latest end.
        """
        if duration_ps <= 0:
            return
        end = self.sim.now_ps + duration_ps
        self._stalled = True
        if end > self._stall_until_ps:
            self._stall_until_ps = end
            self.sim.post_at(end, self._maybe_unstall, end)
        # An in-flight fused block needs no intervention: its relay event
        # observes ``_stalled`` at the next part boundary and parks the
        # thread there — the same instant (and instruction count) as
        # unfused execution (see _fused_advance).
        if self._current is None:
            # Nothing mid-compute: the engine freezes as of now; an
            # in-flight compute instead parks its thread on completion.
            self._set_state(STALLED)

    def _maybe_unstall(self, scheduled_end: int) -> None:
        if not self._stalled or scheduled_end < self._stall_until_ps:
            return  # superseded by a longer stall
        self._stalled = False
        self._dispatch()

    @property
    def is_stalled(self) -> bool:
        """True while a VF-transition penalty is in effect."""
        return self._stalled

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._stalled:
            self._set_state(STALLED)
            return
        if self._current is not None:
            return
        if not self._ready:
            self._set_state(IDLE)
            return
        thread = self._ready.popleft()
        self._current = thread
        if self.states.state != BUSY:
            self._set_state(BUSY)
        self._continue(thread)

    def _continue(self, thread: _HwThread) -> None:
        """Run ``thread`` until it schedules a timed action or blocks."""
        while True:
            step_iter = thread.step_iter
            if step_iter is None:
                if self._acquire(thread):
                    continue  # packet bound; execute its steps
                return  # polling: a timed wait was scheduled
            step = thread.pushback
            if step is None:
                step = next(step_iter, None)
            else:
                thread.pushback = None
            if step is None:
                self._finish_packet(thread)
                continue
            op = step.op
            if op == OP_COMPUTE:
                if self._fuse_exec:
                    self._run_compute_fused(thread, step, step_iter)
                else:
                    self._run_compute(thread, step.instructions)
                return
            if op == OP_FUSED_COMPUTE:
                self._run_fused(thread, step)
                return
            if op == OP_MEM_BLOCKING:
                self._issue_memory(thread, step)
                return
            if op == OP_MEM_POST:
                self._count_zero_time()
                self._post_memory(step)
                continue
            if op == OP_PUT_TX:
                self._count_zero_time()
                if self.on_put_tx is not None and thread.packet is not None:
                    self.on_put_tx(thread.packet)
                continue
            if op == OP_DROP:
                self._count_zero_time()
                if self.on_drop is not None and thread.packet is not None:
                    self.on_drop(thread.packet, step.reason)
                thread.packet = None
                thread.step_iter = None
                continue
            raise NpuError(f"ME{self.index}: unknown step {step!r}")

    def _acquire(self, thread: _HwThread) -> bool:
        packet = self._ws_poll()
        if packet is not None:
            self._bind_packet(thread, packet)
            return True
        self._charge_poll(thread)
        return False

    def _bind_packet(self, thread: _HwThread, packet: Packet) -> None:
        self._zero_time_ops = 0
        thread.packet = packet
        steps = self.make_steps(packet)
        if self._materialize:
            # Pure stream: execute off a list (C-speed iteration).  The
            # app usually hands one over already — possibly shared and
            # memoized, which is safe because iteration never mutates
            # the list and steps are immutable.  Compute runs are fused
            # at execution time (see _continue), not here — a per-packet
            # fusion scan costs more than the relay saves on streams
            # with few adjacent computes.
            if steps.__class__ is not list:
                steps = list(steps)
            steps = iter(steps)
            self._fuse_exec = (
                self._fuse
                and self.pipeline_emitter is None
                and self.on_instructions is None
            )
        thread.pushback = None
        thread.step_iter = steps

    def _charge_poll(self, thread: _HwThread) -> None:
        # Busy-poll: burn cycles checking queues, then let the next
        # ready thread have the engine (round-robin).
        self.polls += 1
        instructions = self.poll_instructions
        self.instructions_executed += instructions
        if self.pipeline_emitter is not None:
            self.pipeline_emitter()
        if self.on_instructions is not None:
            self.on_instructions(self.index, instructions)
        if self.poll_counts_as_idle:
            # Ablation accounting: treat the poll loop as idle time.
            self._set_state(IDLE)
        self._post(self._poll_delay_ps, self._poll_done, thread)

    def _run_compute(self, thread: _HwThread, instructions: int) -> None:
        self._zero_time_ops = 0
        self.instructions_executed += instructions
        if self.pipeline_emitter is not None:
            self.pipeline_emitter()
        if self.on_instructions is not None:
            self.on_instructions(self.index, instructions)
        self._post(
            self._delay_for_cycles(instructions), self._compute_done, thread
        )

    def _run_compute_fused(self, thread: _HwThread, step, step_iter) -> None:
        """Decode a compute with run lookahead: fuse adjacent computes.

        Reads ahead until the compute run ends — on a materialized
        stream that is pure list iteration, so every step is still
        ``next()``-ed exactly once — and parks the run-ending step in
        ``thread.pushback``.  A lone compute follows the plain path; a
        run of two or more arms the seq relay (:meth:`_fused_advance`).
        Only the first part is charged and timed here — exactly what
        unfused execution does at this instant.
        """
        self._zero_time_ops = 0
        first = step.instructions
        self.instructions_executed += first
        nxt = next(step_iter, None)
        if nxt is None or nxt.__class__ is not Compute:
            thread.pushback = nxt
            self._post(self._delay_for_cycles(first), self._compute_done, thread)
            return
        parts = [first, nxt.instructions]
        append = parts.append
        while True:
            nxt = next(step_iter, None)
            if nxt is None or nxt.__class__ is not Compute:
                break
            append(nxt.instructions)
        thread.pushback = nxt
        self._fused_parts = parts
        self._fused_n = len(parts)
        self._fused_index = 1
        self._fused_thread = thread
        self._post(self._delay_for_cycles(first), self._fused_relay)

    def _run_fused(self, thread: _HwThread, step: FusedCompute) -> None:
        """Begin a fused compute block: issue part 1, arm the seq relay.

        Handles explicit :class:`FusedCompute` steps — a stall-requeued
        run tail, or streams pre-fused with ``materialize_steps``.  Only
        the first part is charged and timed here — exactly what unfused
        execution does at this instant.  Subsequent parts are issued by
        :meth:`_fused_advance` at their unfused start times.
        """
        self._zero_time_ops = 0
        parts = step.parts
        first = parts[0]
        self.instructions_executed += first
        self._fused_parts = parts
        self._fused_n = len(parts)
        self._fused_index = 1
        self._fused_thread = thread
        self._post(self._delay_for_cycles(first), self._fused_relay)

    def _post_memory(self, step) -> None:
        try:
            resource = self.memories[step.target]
        except KeyError:
            raise NpuError(
                f"ME{self.index}: no {step.target!r} controller attached"
            ) from None
        self.mem_accesses += 1
        resource.request(step.nbytes, _ignore_completion)

    def _issue_memory(self, thread: _HwThread, step) -> None:
        self._zero_time_ops = 0
        try:
            resource = self.memories[step.target]
        except KeyError:
            raise NpuError(
                f"ME{self.index}: no {step.target!r} controller attached"
            ) from None
        self.mem_accesses += 1
        thread.waiting = True
        resource.request(step.nbytes, self._mem_done, thread)
        self._current = None
        # A context switch burns engine cycles only when there is a
        # ready thread to switch to; with every other thread blocked the
        # engine goes idle (or stalled) as of the issue itself.
        if self.ctx_switch_cycles > 0 and self._ready:
            self._post(self._ctx_delay_ps, self._dispatch)
        else:
            self._dispatch()

    # -- timed-action completions ------------------------------------------
    def _poll_done(self, thread: _HwThread) -> None:
        """Poll delay elapsed: rotate to the next ready thread.

        This is the engine's steady state under light load, so the whole
        round-robin cycle — park the poller, dispatch the next thread,
        re-poll, charge, re-post — runs inline here.  Behaviour is
        exactly ``_dispatch`` + ``_continue`` + ``_acquire``; only the
        intermediate frames are elided.
        """
        ready = self._ready
        ready.append(thread)
        if self._stalled:
            self._current = None
            self._set_state(STALLED)
            return
        nxt = ready.popleft()
        self._current = nxt
        if self.states.state != BUSY:
            self._set_state(BUSY)
        if nxt.step_iter is None:
            packet = self._ws_poll()
            if packet is None:
                # Missed poll: charge it inline (the _charge_poll body,
                # minus the call frame — this is the most-executed
                # branch in the whole simulator).
                self.polls += 1
                instructions = self.poll_instructions
                self.instructions_executed += instructions
                if self.pipeline_emitter is not None:
                    self.pipeline_emitter()
                if self.on_instructions is not None:
                    self.on_instructions(self.index, instructions)
                if self.poll_counts_as_idle:
                    self._set_state(IDLE)
                self._post(self._poll_delay_ps, self._poll_done, nxt)
                return
            self._bind_packet(nxt, packet)
        self._continue(nxt)

    def _compute_done(self, thread: _HwThread) -> None:
        if self._stalled:
            # The penalty began mid-compute: park the thread at the front
            # so it resumes first after the stall.
            self._current = None
            self._ready.appendleft(thread)
            self._set_state(STALLED)
            return
        self._continue(thread)

    def _fused_advance(self) -> None:
        """Seq-relay boundary: one part of a fused block just completed.

        Fires at exactly the (time, seq) of the unfused part's completion
        event — the relay draws each kernel sequence number at the
        instant unfused execution would, so the shared seq counter, and
        therefore every equal-picosecond tie against other components'
        events, is bit-identical to unfused execution.  The common case
        issues the next part: charge it and re-post the relay (what
        ``_compute_done`` + ``_continue`` + ``_run_compute`` would do,
        minus the step-iterator walk, the per-part bound-method build
        and the callback-argument tuple).  A stall boundary or the final
        part falls back to ``_compute_done``; un-started parts were
        never charged, so there is nothing to refund — a stall re-queues
        them and they re-issue at the unfused instants (a frequency
        change needs no handling at all: parts issued after it pick up
        the new rate here, and the in-flight part keeps its delay, just
        like unfused computes).
        """
        i = self._fused_index
        if i < self._fused_n and not self._stalled:
            self._fused_index = i + 1
            part = self._fused_parts[i]
            self.instructions_executed += part
            self._post(self._delay_for_cycles(part), self._fused_relay)
            return
        thread = self._fused_thread
        if i < self._fused_n:
            # Parked mid-block: re-queue the un-started tail so it
            # re-issues (and is charged) at the unfused instants — ahead
            # of the run-ending step the lookahead may have parked.
            rest = self._fused_parts[i:]
            follow: Step = (
                FusedCompute(rest) if len(rest) >= 2 else Compute(rest[0])
            )
            if thread.pushback is None:
                thread.pushback = follow
            else:
                thread.step_iter = chain(
                    (follow, thread.pushback), thread.step_iter
                )
                thread.pushback = None
        self._fused_parts = ()
        self._fused_n = 0
        self._fused_thread = None
        self._compute_done(thread)

    def _mem_done(self, thread: _HwThread) -> None:
        thread.waiting = False
        self._ready.append(thread)
        if self._current is None and not self._stalled:
            self._dispatch()
        elif self._stalled and self._current is None:
            # Mark the freeze only when nothing is executing: a compute
            # in flight keeps the engine BUSY until it completes (the
            # thread parks in _compute_done).
            self._set_state(STALLED)

    def _finish_packet(self, thread: _HwThread) -> None:
        self._count_zero_time()
        packet = thread.packet
        thread.packet = None
        thread.step_iter = None
        if packet is not None:
            self.packets_processed += 1
            if self.on_packet_done is not None:
                self.on_packet_done(packet)

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _set_state(self, state: str) -> None:
        if self.states.state != state:
            self.states.set_state(state)
            self._notify_power()

    def _notify_power(self) -> None:
        if self.power_listener is not None:
            self.power_listener(self)

    def _count_zero_time(self) -> None:
        self._zero_time_ops += 1
        if self._zero_time_ops > _ZERO_TIME_LIMIT:
            raise SimulationError(
                f"ME{self.index}: {_ZERO_TIME_LIMIT} consecutive zero-time "
                "operations — the application step stream never advances time"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def idle_fraction_window(self) -> float:
        """Idle share of the current observation window (EDVS input)."""
        return self.states.window_fractions().get(IDLE, 0.0)

    def reset_window(self) -> None:
        """Start a new EDVS observation window."""
        self.states.reset_window()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ME{self.index} {self.role} {self.clock.freq_hz/1e6:.0f}MHz "
            f"state={self.states.state}>"
        )
