"""SDRAM packet-buffer allocator.

IP packets live in SDRAM between reception and transmission.  The
allocator hands out fixed-size buffers from a freelist, mirroring the
IXP1200's buffer pools; exhaustion is a (rare, but real) loss mechanism
that the receive path checks before copying packet data into SDRAM.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MemoryModelError


class PacketBufferPool:
    """Fixed-size buffer allocator over the SDRAM packet area.

    Parameters
    ----------
    total_bytes:
        SDRAM bytes dedicated to packet buffers.
    buffer_bytes:
        Size of one buffer (must hold an MTU packet).
    """

    def __init__(self, total_bytes: int, buffer_bytes: int = 2048):
        if buffer_bytes <= 0:
            raise MemoryModelError(f"buffer_bytes must be positive, got {buffer_bytes}")
        if total_bytes < buffer_bytes:
            raise MemoryModelError(
                f"total_bytes {total_bytes} smaller than one buffer {buffer_bytes}"
            )
        self.buffer_bytes = buffer_bytes
        self.num_buffers = total_bytes // buffer_bytes
        self._free: List[int] = list(range(self.num_buffers - 1, -1, -1))
        # Free-membership mask mirroring ``_free``: the double-free check
        # must not scan the freelist (it held tens of thousands of
        # handles and dominated the release hot path).
        self._free_mask = bytearray(b"\x01") * self.num_buffers
        self.allocations = 0
        self.failures = 0
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        """Buffers currently allocated."""
        return self.num_buffers - len(self._free)

    @property
    def free_buffers(self) -> int:
        """Buffers currently free."""
        return len(self._free)

    def allocate(self) -> Optional[int]:
        """Return a buffer handle, or ``None`` when exhausted."""
        if not self._free:
            self.failures += 1
            return None
        handle = self._free.pop()
        self._free_mask[handle] = 0
        self.allocations += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
        return handle

    def release(self, handle: int) -> None:
        """Return a buffer to the pool.

        Raises on double-free or out-of-range handles — those are model
        bugs worth failing loudly for.
        """
        if not 0 <= handle < self.num_buffers:
            raise MemoryModelError(f"bad buffer handle {handle}")
        if self._free_mask[handle]:
            raise MemoryModelError(f"double free of buffer {handle}")
        self._free_mask[handle] = 1
        self._free.append(handle)

    def address_of(self, handle: int) -> int:
        """Byte address of a buffer within the packet area."""
        if not 0 <= handle < self.num_buffers:
            raise MemoryModelError(f"bad buffer handle {handle}")
        return handle * self.buffer_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PacketBufferPool {self.in_use}/{self.num_buffers} in use, "
            f"failures={self.failures}>"
        )
