"""Device ports: arrival intake, receive queues, wire-rate transmit.

The port array is where the chip meets the outside world:

* **receive** — the traffic source delivers a packet to a port; the port
  notifies the traffic monitor (TDVS's 32-bit adder counts every arrival,
  dropped or not), crosses the IX bus, and lands in the port's bounded
  receive queue — or is dropped if the queue is full.  Landing in the
  queue publishes the paper's ``fifo`` trace event straight onto the
  run's :class:`~repro.trace.bus.TraceBus`;
* **transmit** — a transmit ME hands a processed packet to its output
  port; the port serializes it at wire rate and fires the chip's forward
  hook when the last bit leaves, which is what emits ``forward`` trace
  events and advances the throughput counters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import NpuError
from repro.npu.fifo import PacketQueue
from repro.npu.memqueue import QueuedResource
from repro.sim.kernel import Simulator
from repro.traffic.packet import Packet
from repro.units import transmit_time_ps


class DevicePort:
    """One full-duplex device port."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        rate_bps: float,
        rx_queue_packets: int,
    ):
        self.sim = sim
        self.index = index
        self.rate_bps = rate_bps
        self.rx_queue = PacketQueue(rx_queue_packets, name=f"port{index}.rx")
        #: Slots committed to packets still crossing the IX bus, so
        #: admission control sees the true future queue depth.
        self.rx_queue_reserved = 0
        self._tx_free_at_ps = 0
        self.tx_packets = 0
        self.tx_bits = 0
        #: ``size_bytes -> serialization_ps``.  Wire time depends only on
        #: size and the port's fixed rate, and traffic models draw from a
        #: small set of packet lengths, so the float division in
        #: :func:`transmit_time_ps` is paid once per distinct size.
        self._tx_time_cache: Dict[int, int] = {}
        self._post_at = sim.post_at

    # -- transmit side ---------------------------------------------------
    def transmit(self, packet: Packet, on_done: Callable[[Packet], None]) -> int:
        """Serialize ``packet`` onto the wire; ``on_done`` fires at the end.

        Returns the completion time (ps).  Back-to-back packets queue
        behind the port's serializer.
        """
        size = packet.size_bytes
        wire_ps = self._tx_time_cache.get(size)
        if wire_ps is None:
            wire_ps = transmit_time_ps(size, self.rate_bps)
            self._tx_time_cache[size] = wire_ps
        now = self.sim.now_ps
        start = now if now > self._tx_free_at_ps else self._tx_free_at_ps
        done = start + wire_ps
        self._tx_free_at_ps = done
        self.tx_packets += 1
        self.tx_bits += packet.size_bits
        self._post_at(done, on_done, packet)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DevicePort {self.index} rxq={len(self.rx_queue)}>"


class PortArray:
    """The NPU's 16 device ports plus the shared arrival path.

    Parameters
    ----------
    sim:
        Owning simulator.
    num_ports / rate_bps / rx_queue_packets:
        Port count and per-port parameters.
    ixbus:
        The shared bus resource each arriving packet crosses.
    on_arrival:
        Called with every arriving packet *before* queueing (the TDVS
        traffic monitor and the chip's offered counters).
    on_enqueued:
        Optional extra callback when a packet lands in a receive queue
        (the ``fifo`` trace event itself is published on the bus bound
        via :meth:`bind_trace`).
    on_forward:
        Called when a transmit completes (emits ``forward`` events).
    """

    def __init__(
        self,
        sim: Simulator,
        num_ports: int,
        rate_bps: float,
        rx_queue_packets: int,
        ixbus: QueuedResource,
        on_arrival: Optional[Callable[[Packet], None]] = None,
        on_enqueued: Optional[Callable[[Packet], None]] = None,
        on_forward: Optional[Callable[[Packet], None]] = None,
    ):
        if num_ports <= 0:
            raise NpuError(f"num_ports must be positive, got {num_ports}")
        self.sim = sim
        self.ports: List[DevicePort] = [
            DevicePort(sim, k, rate_bps, rx_queue_packets) for k in range(num_ports)
        ]
        self.ixbus = ixbus
        self.on_arrival = on_arrival
        self.on_enqueued = on_enqueued
        self.on_forward = on_forward
        self.rx_dropped = 0
        self._emit_fifo: Optional[Callable[[], None]] = None
        #: Dispatch table for the transmit path: ``out % nports`` indexes
        #: straight to the port's bound ``transmit`` method, skipping the
        #: per-packet attribute chain.
        self._nports = num_ports
        self._transmit_table = [port.transmit for port in self.ports]
        self._ixbus_request = ixbus.request

    def bind_trace(self, bus) -> None:
        """Bind the ``fifo`` emitter on the run's trace bus.

        A no-op emitter (nothing subscribed) is dropped entirely so the
        enqueue hot path pays a single ``None`` check.
        """
        from repro.trace.bus import NOOP_EMITTER

        emit = bus.emitter("fifo")
        self._emit_fifo = None if emit is NOOP_EMITTER else emit

    def __len__(self) -> int:
        return len(self.ports)

    def __getitem__(self, index: int) -> DevicePort:
        return self.ports[index]

    # -- receive path ----------------------------------------------------
    def deliver(self, port_index: int, packet: Packet) -> None:
        """Entry point for the traffic source: packet hits ``port_index``."""
        if self.on_arrival is not None:
            self.on_arrival(packet)
        port = self.ports[port_index]
        # Admission happens at the MAC: a full receive queue drops the
        # packet immediately; otherwise the packet crosses the IX bus and
        # is enqueued when the transfer completes.
        if len(port.rx_queue) + port.rx_queue_reserved >= port.rx_queue.capacity:
            port.rx_queue.dropped += 1
            self.rx_dropped += 1
            return
        port.rx_queue_reserved += 1
        self._ixbus_request(packet.size_bytes, self._bus_done, port, packet)

    def _bus_done(self, port: DevicePort, packet: Packet) -> None:
        port.rx_queue_reserved -= 1
        if port.rx_queue.offer(packet):
            if self._emit_fifo is not None:
                self._emit_fifo()
            if self.on_enqueued is not None:
                self.on_enqueued(packet)
        else:  # pragma: no cover - reservation prevents this
            self.rx_dropped += 1

    # -- transmit path -----------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        """Transmit ``packet`` on its ``output_port`` (default: input port)."""
        out_index = packet.output_port
        if out_index is None:
            out_index = packet.input_port
        self._transmit_table[out_index % self._nports](packet, self._tx_done)

    def _tx_done(self, packet: Packet) -> None:
        if self.on_forward is not None:
            self.on_forward(packet)

    # -- statistics --------------------------------------------------------
    @property
    def total_rx_dropped(self) -> int:
        """Packets dropped at receive queues (including admission drops)."""
        return self.rx_dropped

    @property
    def total_tx_packets(self) -> int:
        """Packets fully serialized out of the chip."""
        return sum(port.tx_packets for port in self.ports)

    @property
    def total_tx_bits(self) -> int:
        """Bits fully serialized out of the chip."""
        return sum(port.tx_bits for port in self.ports)
