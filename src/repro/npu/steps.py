"""Processing steps: the contract between applications and microengines.

An application describes per-packet work as a generator of *steps*; the
microengine runtime executes them with real timing:

* :class:`Compute` — ``n`` single-cycle instructions on the engine;
* :class:`MemRead` / :class:`MemWrite` — a reference to ``sram``,
  ``sdram`` or ``scratch``; the issuing thread blocks until the
  controller responds (other threads run meanwhile);
* :class:`PutTx` — hand the packet descriptor to the transmit side;
* :class:`Drop` — abandon the packet (counted by reason).

The detailed execution mode produces exactly the same step vocabulary
from interpreted microcode, one :class:`Compute` per instruction, so both
modes share the microengine runtime.
"""

from __future__ import annotations

from repro.errors import NpuError

#: Memory targets a step may reference.
MEMORY_TARGETS = ("sram", "sdram", "scratch")


class Step:
    """Base class for processing steps (never instantiated directly)."""

    __slots__ = ()


class Compute(Step):
    """Run ``instructions`` back-to-back single-cycle instructions."""

    __slots__ = ("instructions",)

    def __init__(self, instructions: int):
        if instructions <= 0:
            raise NpuError(f"Compute needs a positive count, got {instructions}")
        self.instructions = instructions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.instructions})"


class _MemStep(Step):
    __slots__ = ("target", "nbytes")

    def __init__(self, target: str, nbytes: int):
        if target not in MEMORY_TARGETS:
            raise NpuError(f"unknown memory target {target!r}")
        if nbytes <= 0:
            raise NpuError(f"memory step needs positive size, got {nbytes}")
        self.target = target
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.target!r}, {self.nbytes})"


class MemRead(_MemStep):
    """Blocking read of ``nbytes`` from a memory target."""

    __slots__ = ()


class MemWrite(_MemStep):
    """Blocking write of ``nbytes`` to a memory target."""

    __slots__ = ()


class MemPost(_MemStep):
    """Posted (non-blocking) transfer of ``nbytes``.

    Charges the controller's bandwidth and energy but does not block the
    issuing thread — the DMA-style moves transmit microengines overlap
    with their TFIFO polling loops.  The thread continues immediately;
    the chip-level effect is pure resource contention.
    """

    __slots__ = ()


class PutTx(Step):
    """Enqueue the in-flight packet's descriptor for transmission."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "PutTx()"


class Drop(Step):
    """Abandon the in-flight packet; ``reason`` keys the loss counters."""

    __slots__ = ("reason",)

    def __init__(self, reason: str = "app"):
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Drop({self.reason!r})"
