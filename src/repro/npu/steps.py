"""Processing steps: the contract between applications and microengines.

An application describes per-packet work as a generator of *steps*; the
microengine runtime executes them with real timing:

* :class:`Compute` — ``n`` single-cycle instructions on the engine;
* :class:`MemRead` / :class:`MemWrite` — a reference to ``sram``,
  ``sdram`` or ``scratch``; the issuing thread blocks until the
  controller responds (other threads run meanwhile);
* :class:`PutTx` — hand the packet descriptor to the transmit side;
* :class:`Drop` — abandon the packet (counted by reason).

The detailed execution mode produces exactly the same step vocabulary
from interpreted microcode, one :class:`Compute` per instruction, so both
modes share the microengine runtime.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import NpuError

#: Memory targets a step may reference.
MEMORY_TARGETS = ("sram", "sdram", "scratch")

#: Step dispatch codes: the microengine arbiter branches on ``step.op``
#: (one attribute load + int compare) instead of an isinstance chain.
OP_COMPUTE = 0
OP_FUSED_COMPUTE = 1
OP_MEM_BLOCKING = 2
OP_MEM_POST = 3
OP_PUT_TX = 4
OP_DROP = 5


class Step:
    """Base class for processing steps (never instantiated directly)."""

    __slots__ = ()

    #: Dispatch code (see ``OP_*``); subclasses override.
    op = -1


class Compute(Step):
    """Run ``instructions`` back-to-back single-cycle instructions."""

    __slots__ = ("instructions",)

    op = OP_COMPUTE

    def __init__(self, instructions: int):
        if instructions <= 0:
            raise NpuError(f"Compute needs a positive count, got {instructions}")
        self.instructions = instructions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.instructions})"


class FusedCompute(Step):
    """A run of consecutive :class:`Compute` steps executed as one block.

    Produced by :func:`materialize_steps` or by the microengine itself
    (a stall re-queues a run's uncharged tail this way); applications
    never yield it directly.  In normal operation the microengine fuses
    compute runs *at execution time* — the arbiter's lookahead, see
    ``Microengine._run_compute_fused`` — rather than carrying fused
    steps in the stream.  Either way the run executes as a *seq relay*:
    the engine charges one part at a time and posts the boundary event
    at exactly the instant the unfused step's completion would land
    (see ``Microengine._fused_advance``), so timing, kernel sequence
    layout, and equal-picosecond tie ordering are all bit-identical to
    executing the parts back to back.  What fusion saves is the
    per-part trip through the ready queue, the thread dispatcher, and
    the step decoder — not the events themselves.  A stall interrupting
    the block re-queues the uncharged tail as a fresh step; a frequency
    change needs no handling at all, because every part draws its delay
    from the clock when it is charged.
    """

    __slots__ = ("instructions", "parts")

    op = OP_FUSED_COMPUTE

    def __init__(self, parts: Iterable[int]):
        parts = tuple(parts)
        if len(parts) < 2:
            raise NpuError(f"FusedCompute needs at least two parts, got {parts!r}")
        if any(p <= 0 for p in parts):
            raise NpuError(f"FusedCompute parts must be positive, got {parts!r}")
        self.parts = parts
        self.instructions = sum(parts)

    @classmethod
    def _from_run(cls, parts: List[int]) -> "FusedCompute":
        """Unchecked constructor for the materialization pass.

        ``parts`` are the counts of already-validated :class:`Compute`
        steps (each positive, two or more of them), so the public
        constructor's re-validation is pure per-packet overhead here.
        """
        fused = cls.__new__(cls)
        fused.parts = tuple(parts)
        fused.instructions = sum(parts)
        return fused

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FusedCompute({self.parts!r})"


class _MemStep(Step):
    __slots__ = ("target", "nbytes")

    def __init__(self, target: str, nbytes: int):
        if target not in MEMORY_TARGETS:
            raise NpuError(f"unknown memory target {target!r}")
        if nbytes <= 0:
            raise NpuError(f"memory step needs positive size, got {nbytes}")
        self.target = target
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.target!r}, {self.nbytes})"


class MemRead(_MemStep):
    """Blocking read of ``nbytes`` from a memory target."""

    __slots__ = ()

    op = OP_MEM_BLOCKING


class MemWrite(_MemStep):
    """Blocking write of ``nbytes`` to a memory target."""

    __slots__ = ()

    op = OP_MEM_BLOCKING


class MemPost(_MemStep):
    """Posted (non-blocking) transfer of ``nbytes``.

    Charges the controller's bandwidth and energy but does not block the
    issuing thread — the DMA-style moves transmit microengines overlap
    with their TFIFO polling loops.  The thread continues immediately;
    the chip-level effect is pure resource contention.
    """

    __slots__ = ()

    op = OP_MEM_POST


class PutTx(Step):
    """Enqueue the in-flight packet's descriptor for transmission."""

    __slots__ = ()

    op = OP_PUT_TX

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "PutTx()"


class Drop(Step):
    """Abandon the in-flight packet; ``reason`` keys the loss counters."""

    __slots__ = ("reason",)

    op = OP_DROP

    def __init__(self, reason: str = "app"):
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Drop({self.reason!r})"


def materialize_steps(stream: Iterable[Step], fuse: bool = True) -> List[Step]:
    """List out a step stream, optionally fusing consecutive computes.

    Materialization runs the generator to exhaustion up front, so it is
    only valid for *pure* streams — apps whose per-packet side effects
    are commutative counters (see ``AppModel.materialize_rx``).  The
    returned list iterates at C speed in the arbiter loop instead of
    resuming a generator per step.

    With ``fuse``, maximal runs of two or more adjacent :class:`Compute`
    steps collapse into one :class:`FusedCompute`; single computes keep
    their original objects.  The microengine itself materializes
    *unfused* and fuses at execution time instead (the arbiter lookahead
    only touches compute runs, so streams without adjacent computes pay
    nothing); pre-fused streams remain fully supported.
    """
    if not fuse:
        return list(stream)
    # Single pass, straight off the generator: this runs per packet
    # bind, so it competes with a bare ``list(stream)`` — no
    # intermediate list, no re-validation, and the (common) length-1
    # run keeps its original Compute without ever building a list.
    out: List[Step] = []
    append = out.append
    run_first = None  # sole Compute of the current run
    run_parts = None  # its counts, once the run reaches length two
    for step in stream:
        if step.__class__ is Compute:
            if run_first is None:
                run_first = step
            elif run_parts is None:
                run_parts = [run_first.instructions, step.instructions]
            else:
                run_parts.append(step.instructions)
            continue
        if run_first is not None:
            if run_parts is None:
                append(run_first)
            else:
                append(FusedCompute._from_run(run_parts))
                run_parts = None
            run_first = None
        append(step)
    if run_first is not None:
        if run_parts is None:
            append(run_first)
        else:
            append(FusedCompute._from_run(run_parts))
    return out
