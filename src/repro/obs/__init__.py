"""``repro.obs`` — metrics, spans, run telemetry and anomaly gates.

The observation spine (:mod:`repro.trace.bus`) answers *what happened
inside one run*; this package answers *what the system is doing* while
sweeps, studies and worker fleets execute:

* :mod:`repro.obs.metrics` — a lightweight metrics registry (counters,
  gauges, fixed-edge histograms) with deterministic JSONL snapshot
  export, merge and diff.  The ``repro metrics`` CLI renders and
  compares snapshots.
* :mod:`repro.obs.spans` — dual-clock span timelines: wall-clock
  orchestration spans (session → backend → coordinator → worker → job)
  and deterministic sim-time run phases (scenario segments, per-ME
  busy/stall/idle windows, check evaluation), serialized to a versioned
  JSONL span log.  ``repro trace export`` turns the log into a
  Perfetto-loadable Chrome trace (:mod:`repro.obs.perfetto`);
  ``repro report --html`` embeds its summary.
* :mod:`repro.obs.gates` — streaming anomaly gates that ride the
  TraceBus and abort a doomed job early (``aborted_early`` partial
  outcomes), opt-in via
  :attr:`repro.api.policy.ExecutionPolicy.early_abort`.

Both JSONL schemas are documented (and version-pinned) in
``src/repro/obs/SCHEMA.md``; CI fails hard when
:data:`~repro.obs.metrics.METRICS_SCHEMA_VERSION` or
:data:`~repro.obs.spans.SPAN_SCHEMA_VERSION` changes without a matching
SCHEMA.md update.
"""

from repro.obs.gates import (
    AbortSignal,
    CheckUnsatGate,
    EarlyAbortPolicy,
    LossRateGate,
    RollingQuantileGate,
    build_gates,
)
from repro.obs.metrics import (
    FORWARD_LATENCY_EDGES_US,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    read_snapshot,
    summarize_snapshot,
)
from repro.obs.spans import (
    OBS_SPANS_ENV_VAR,
    SPAN_SCHEMA_VERSION,
    SpanRecorder,
    get_recorder,
    read_spans,
    reset_recorder,
    spans_enabled,
    summarize_spans,
)

__all__ = [
    "FORWARD_LATENCY_EDGES_US",
    "METRICS_SCHEMA_VERSION",
    "OBS_SPANS_ENV_VAR",
    "SPAN_SCHEMA_VERSION",
    "AbortSignal",
    "CheckUnsatGate",
    "Counter",
    "EarlyAbortPolicy",
    "Gauge",
    "Histogram",
    "LossRateGate",
    "MetricsRegistry",
    "RollingQuantileGate",
    "SpanRecorder",
    "build_gates",
    "diff_snapshots",
    "get_recorder",
    "read_snapshot",
    "read_spans",
    "reset_recorder",
    "spans_enabled",
    "summarize_snapshot",
    "summarize_spans",
]
