"""``repro.obs`` — metrics, run telemetry and streaming anomaly gates.

The observation spine (:mod:`repro.trace.bus`) answers *what happened
inside one run*; this package answers *what the system is doing* while
sweeps, studies and worker fleets execute:

* :mod:`repro.obs.metrics` — a lightweight metrics registry (counters,
  gauges, fixed-edge histograms) with deterministic JSONL snapshot
  export, merge and diff.  The ``repro metrics`` CLI renders and
  compares snapshots.
* :mod:`repro.obs.gates` — streaming anomaly gates that ride the
  TraceBus and abort a doomed job early (``aborted_early`` partial
  outcomes), opt-in via
  :attr:`repro.api.policy.ExecutionPolicy.early_abort`.

The JSONL snapshot schema is documented (and version-pinned) in
``src/repro/obs/SCHEMA.md``; CI fails hard when
:data:`~repro.obs.metrics.METRICS_SCHEMA_VERSION` changes without a
matching SCHEMA.md update.
"""

from repro.obs.gates import (
    AbortSignal,
    CheckUnsatGate,
    EarlyAbortPolicy,
    LossRateGate,
    RollingQuantileGate,
    build_gates,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    read_snapshot,
    summarize_snapshot,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "AbortSignal",
    "CheckUnsatGate",
    "Counter",
    "EarlyAbortPolicy",
    "Gauge",
    "Histogram",
    "LossRateGate",
    "MetricsRegistry",
    "RollingQuantileGate",
    "build_gates",
    "diff_snapshots",
    "read_snapshot",
    "summarize_snapshot",
]
