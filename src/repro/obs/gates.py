"""Streaming anomaly gates: abort a doomed job the moment it is doomed.

A sweep job normally burns its full cycle budget even when its LOC
assertion was already lost a thousand packets in.  Gates ride the run's
:class:`~repro.trace.bus.TraceBus` (using the sampled-subscription
machinery, so polling cadence is a knob, not a hot-loop cost) and pull
the simulator's stop cord via an :class:`AbortSignal` as soon as the
job's fate is sealed:

* :class:`CheckUnsatGate` — watches an attached LOC check monitor.
  Equality checks (``==``, zero-tolerance counting invariants) become
  unsatisfiable at their *first* violation; bounded checks trip once
  the violation fraction exceeds the tolerance persistently (two
  consecutive polls over at least ``min_instances`` instances).
* :class:`RollingQuantileGate` — compiles the latency check's
  left-hand side into a per-instance value tap and trips when the
  rolling quantile of the last ``window`` values exceeds the formula's
  bound (times ``factor``).
* :class:`LossRateGate` — counts offered packets on the named-only
  ``arrival`` channel against forwarded packets on ``forward`` and
  trips when the rolling loss fraction exceeds the threshold.

Everything here is **opt-in** via
:attr:`repro.api.policy.ExecutionPolicy.early_abort`; with the policy
unset no gate ever subscribes and runs are byte-identical to an
ungated release.  A gated run is *not* byte-guaranteed even when no
gate trips: subscribing the ``arrival`` channel reads annotations at
instants primary events never settle (see
:meth:`repro.trace.bus.TraceBus.emitter`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.loc.ast_nodes import CheckerFormula
from repro.loc.codegen import compile_value_tap


class AbortSignal:
    """The stop cord one run's gates share.

    The first :meth:`trip` wins: it records the reason, stops the
    simulator (future events are discarded and ``now_ps`` freezes at
    the trip instant, so partial totals cover exactly the simulated
    prefix) and latches — later trips are no-ops.
    """

    def __init__(self, sim):
        self._sim = sim
        self.tripped = False
        self.reason = ""

    def trip(self, reason: str) -> None:
        if self.tripped:
            return
        self.tripped = True
        self.reason = reason
        self._sim.stop()


@dataclass(frozen=True)
class EarlyAbortPolicy:
    """What may abort a job early, and how eagerly.

    Attributes
    ----------
    check_unsat:
        Gate every attached LOC check: equality checks abort on their
        first violation, bounded checks when the violation fraction
        exceeds ``check_tolerance`` on two consecutive polls.
    check_tolerance:
        Allowed violation fraction for bounded (non-``==``) checks.
    check_interval:
        Events between unsatisfiability polls (the gate subscribes at
        1/``check_interval`` via the bus's deterministic stride).
    min_instances:
        Checked-instance floor before any fraction-based verdict.
    latency_quantile:
        Rolling-quantile latency gate: quantile in (0, 1], or 0 to
        disable.  Applies to the first bounded single-event check.
    latency_window / latency_factor:
        Rolling window length (instances) and bound multiplier for the
        quantile gate.
    loss_threshold:
        Rolling loss-fraction threshold in (0, 1], or 0 to disable.
    loss_window / loss_interval:
        Arrivals per rolling-loss window and arrivals between polls.
    """

    check_unsat: bool = True
    check_tolerance: float = 0.05
    check_interval: int = 1024
    min_instances: int = 64
    latency_quantile: float = 0.0
    latency_window: int = 256
    latency_factor: float = 1.0
    loss_threshold: float = 0.0
    loss_window: int = 2048
    loss_interval: int = 256

    def __post_init__(self) -> None:
        if not (0.0 <= self.check_tolerance < 1.0):
            raise ExperimentError(
                f"check_tolerance must be in [0, 1), got {self.check_tolerance}"
            )
        for name in ("check_interval", "min_instances", "latency_window",
                     "loss_window", "loss_interval"):
            if getattr(self, name) < 1:
                raise ExperimentError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if not (0.0 <= self.latency_quantile <= 1.0):
            raise ExperimentError(
                f"latency_quantile must be in [0, 1], got "
                f"{self.latency_quantile}"
            )
        if self.latency_factor <= 0:
            raise ExperimentError(
                f"latency_factor must be positive, got {self.latency_factor}"
            )
        if not (0.0 <= self.loss_threshold <= 1.0):
            raise ExperimentError(
                f"loss_threshold must be in [0, 1], got {self.loss_threshold}"
            )

    def enabled(self) -> bool:
        """True when at least one gate would attach."""
        return bool(
            self.check_unsat
            or self.latency_quantile > 0
            or self.loss_threshold > 0
        )

    def with_(self, **overrides) -> "EarlyAbortPolicy":
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-safe form (participates in job identity hashes)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EarlyAbortPolicy":
        try:
            return cls(**data)
        except TypeError as exc:
            raise ExperimentError(
                f"malformed early-abort policy: {exc}"
            ) from None


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------
class CheckUnsatGate:
    """Aborts when an attached LOC check can no longer pass.

    Wraps one *compiled* check monitor already attached to the bus and
    polls its accumulated verdict every ``check_interval`` events via a
    sampled subscription on the same event name — subscription order
    guarantees the monitor consumed the event before the poll sees it.
    """

    def __init__(self, monitor, policy: EarlyAbortPolicy):
        event = getattr(monitor, "event", None)
        if event is None:
            raise ExperimentError(
                "CheckUnsatGate needs a compiled monitor (single-event "
                "formula); interpreted monitors expose no event name"
            )
        self.monitor = monitor
        self.event = event
        self.policy = policy
        formula = monitor.formula
        self.zero_tolerance = (
            isinstance(formula, CheckerFormula) and formula.op == "=="
        ) or policy.check_tolerance == 0.0
        self._was_over = False

    def attach(self, bus, signal: AbortSignal) -> None:
        self._signal = signal
        bus.subscribe(self.event, self._poll, sample=self.policy.check_interval)

    def _poll(self, row) -> None:
        result = self.monitor.poll()
        if self.zero_tolerance:
            if result.violations_total > 0:
                self._signal.trip(
                    f"check unsatisfiable: {result.formula_text!r} violated "
                    f"{result.violations_total}x (zero tolerance)"
                )
            return
        checked = result.instances_checked
        if checked < self.policy.min_instances:
            return
        fraction = result.violations_total / checked
        over = fraction > self.policy.check_tolerance
        if over and self._was_over:
            self._signal.trip(
                f"check past tolerance: {result.formula_text!r} violation "
                f"fraction {fraction:.4f} > {self.policy.check_tolerance:g} "
                f"over {checked} instances"
            )
        self._was_over = over


class RollingQuantileGate:
    """Aborts when a rolling latency quantile exceeds the check's bound.

    The bounded check's left-hand side (e.g. the span-latency
    expression) is compiled into a per-instance value tap
    (:func:`repro.loc.codegen.compile_value_tap`); the gate keeps the
    last ``window`` values and, once per window refill, compares the
    configured quantile against ``factor x bound``.
    """

    def __init__(self, formula: CheckerFormula, policy: EarlyAbortPolicy):
        if not isinstance(formula, CheckerFormula) or formula.op not in ("<=", "<"):
            raise ExperimentError(
                "RollingQuantileGate needs an upper-bound check formula "
                f"(<= / <), got {formula.unparse()!r}"
            )
        self.formula = formula
        self.policy = policy
        self.event, self._feed = compile_value_tap(formula, self._on_value)
        self._values: deque = deque(maxlen=policy.latency_window)
        self._since_poll = 0
        try:
            self.bound = float(formula.rhs.value)  # type: ignore[attr-defined]
        except AttributeError:
            raise ExperimentError(
                "RollingQuantileGate needs a constant right-hand side in "
                f"{formula.unparse()!r}"
            ) from None

    def attach(self, bus, signal: AbortSignal) -> None:
        self._signal = signal
        bus.subscribe(self.event, self._feed)

    def _on_value(self, value: float) -> None:
        self._values.append(value)
        self._since_poll += 1
        window = self.policy.latency_window
        if len(self._values) < window or self._since_poll < window:
            return
        self._since_poll = 0
        ordered = sorted(self._values)
        rank = min(
            len(ordered) - 1,
            max(0, int(self.policy.latency_quantile * len(ordered)) - 1),
        )
        quantile_value = ordered[rank]
        limit = self.policy.latency_factor * self.bound
        if quantile_value > limit:
            self._signal.trip(
                f"latency anomaly: rolling p{self.policy.latency_quantile:g} "
                f"of {self.formula.unparse()!r} lhs = {quantile_value:.6g} "
                f"> {limit:.6g} over last {window} instances"
            )


class LossRateGate:
    """Aborts when the rolling packet-loss fraction exceeds a threshold.

    Counts offered packets on the chip's named-only ``arrival`` channel
    and forwarded packets on ``forward``; every ``loss_interval``
    arrivals it closes a checkpoint and evaluates the loss fraction
    over the trailing ``loss_window`` arrivals.  Forward events lag
    arrivals by the pipeline depth, so thresholds should leave margin
    over the in-flight population (the defaults do).
    """

    #: The chip-side channel carrying one event per offered packet.
    ARRIVAL_EVENT = "arrival"
    FORWARD_EVENT = "forward"

    def __init__(self, policy: EarlyAbortPolicy):
        self.policy = policy
        self._arrivals = 0
        self._forwards = 0
        # Checkpoints of (arrivals, forwards) totals, one per interval.
        depth = max(1, policy.loss_window // policy.loss_interval)
        self._checkpoints: deque = deque(maxlen=depth + 1)
        self._checkpoints.append((0, 0))

    def attach(self, bus, signal: AbortSignal) -> None:
        self._signal = signal
        bus.subscribe(self.FORWARD_EVENT, self._on_forward)
        bus.subscribe(
            self.ARRIVAL_EVENT, self._on_arrival, sample=self.policy.loss_interval
        )

    def _on_forward(self, row) -> None:
        self._forwards += 1

    def _on_arrival(self, row) -> None:
        # Sampled at 1/loss_interval: each call closes one checkpoint.
        self._arrivals += self.policy.loss_interval
        self._checkpoints.append((self._arrivals, self._forwards))
        base_arrivals, base_forwards = self._checkpoints[0]
        arrived = self._arrivals - base_arrivals
        if arrived < self.policy.loss_window:
            return
        forwarded = self._forwards - base_forwards
        loss = 1.0 - min(1.0, forwarded / arrived)
        if loss > self.policy.loss_threshold:
            self._signal.trip(
                f"loss anomaly: rolling loss {loss:.4f} > "
                f"{self.policy.loss_threshold:g} over last {arrived} arrivals"
            )


def build_gates(
    policy: EarlyAbortPolicy,
    check_monitors: Sequence = (),
) -> List:
    """The gate set one job's policy asks for.

    ``check_monitors`` are the job's already-built LOC check monitors
    (compiled or interpreted); unsatisfiability gates wrap the compiled
    ones, and the first bounded compiled check also feeds the rolling
    quantile gate when enabled.  Returns gates ready for
    ``gate.attach(bus, signal)``.
    """
    gates: List = []
    if policy.check_unsat:
        for monitor in check_monitors:
            if getattr(monitor, "event", None) is not None:
                gates.append(CheckUnsatGate(monitor, policy))
    if policy.latency_quantile > 0:
        for monitor in check_monitors:
            formula = getattr(monitor, "formula", None)
            if (
                getattr(monitor, "event", None) is not None
                and isinstance(formula, CheckerFormula)
                and formula.op in ("<=", "<")
            ):
                gates.append(RollingQuantileGate(formula, policy))
                break
    if policy.loss_threshold > 0:
        gates.append(LossRateGate(policy))
    return gates
