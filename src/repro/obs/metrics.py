"""The metrics registry and its deterministic JSONL snapshot format.

Three instrument kinds cover everything the reproduction reports about
itself:

* :class:`Counter` — a monotonically increasing integer (events
  published, jobs completed, leases expired).  Counters **add** under
  :meth:`MetricsRegistry.merge`.
* :class:`Gauge` — a last-write-wins float (heartbeat-latency EWMA,
  queue depth at snapshot time).  Gauges **overwrite** under merge.
* :class:`Histogram` — counts over *fixed* bucket edges chosen at
  creation time, so two snapshots of the same histogram are mergeable
  bucket-by-bucket and the output is deterministic (no adaptive
  binning).

Snapshots serialize to JSONL: one header line carrying
:data:`METRICS_SCHEMA_VERSION`, then one line per instrument, sorted by
``(type, name)`` — byte-stable given equal registry contents.  The
``repro metrics`` CLI summarizes and diffs these files; the schema is
documented in ``src/repro/obs/SCHEMA.md`` and CI hard-fails when the
version constant moves without a matching SCHEMA.md edit.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Version of the JSONL snapshot schema.  Bump ONLY together with a
#: matching update to ``src/repro/obs/SCHEMA.md`` — the nightly CI job
#: cross-checks the two and fails hard on a mismatch.
#: Version 2 added the per-scenario ``latency.forward.<scenario>``
#: histograms to session snapshots.
METRICS_SCHEMA_VERSION = 2

#: The header line's ``schema`` tag.
SCHEMA_TAG = "repro.obs.metrics"

#: Fixed bucket edges (µs) for the per-scenario forward-latency
#: histograms (``latency.forward.<scenario>``).  Each completed outcome
#: carrying a span-latency check observes its mean span latency once.
#: Fixed edges keep histograms mergeable across sessions and runs; the
#: range covers sub-25 µs spans up to the multi-ms tail a saturated
#: scenario produces.
FORWARD_LATENCY_EDGES_US = (
    25.0, 50.0, 100.0, 200.0, 400.0, 800.0,
    1600.0, 3200.0, 6400.0, 12800.0, 25600.0,
)


class Counter:
    """A monotonically increasing integer instrument."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ExperimentError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "value": self.value}


class Gauge:
    """A last-write-wins float instrument."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_record(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "value": self.value}


class Histogram:
    """Counts over fixed, sorted bucket edges.

    ``edges = (e0, e1, ..., en)`` yields ``n + 2`` buckets:
    ``(-inf, e0], (e0, e1], ..., (en, +inf)`` — an observation lands in
    the first bucket whose upper edge is >= the value.  Fixed edges make
    two snapshots of the same histogram mergeable count-by-count.
    """

    kind = "histogram"

    def __init__(self, name: str, edges: Sequence[float]):
        if not edges:
            raise ExperimentError(f"histogram {name!r} needs bucket edges")
        ordered = tuple(float(e) for e in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ExperimentError(
                f"histogram {name!r} edges must be strictly increasing: "
                f"{edges!r}"
            )
        self.name = name
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "name": self.name,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """A named set of instruments with deterministic snapshot export.

    Instruments are created on first access (``counter("x")``) and
    looked up by name afterwards; asking for an existing name with a
    different kind (or different histogram edges) raises — a metric's
    shape is part of its identity.
    """

    def __init__(self):
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
            return instrument
        if instrument.kind != kind:
            raise ExperimentError(
                f"metric {name!r} already exists as a {instrument.kind}, "
                f"not a {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        histogram = self._get(name, "histogram", lambda: Histogram(name, edges))
        if tuple(float(e) for e in edges) != histogram.edges:
            raise ExperimentError(
                f"histogram {name!r} already exists with edges "
                f"{histogram.edges!r}, not {tuple(edges)!r}"
            )
        return histogram

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- bulk ingestion --------------------------------------------------
    def merge_counts(self, counts: Dict[str, int], prefix: str = "") -> None:
        """Add a flat ``{name: count}`` mapping as counters."""
        for name in sorted(counts):
            self.counter(f"{prefix}{name}").inc(int(counts[name]))

    def merge_telemetry(self, telemetry: Dict[str, Any], prefix: str = "") -> None:
        """Ingest a backend telemetry dict.

        Integer values become counters, floats become gauges — the
        convention every :meth:`~repro.backends.base.ExecutionBackend.telemetry`
        implementation follows.
        """
        for name in sorted(telemetry):
            value = telemetry[name]
            if isinstance(value, bool) or value is None:
                continue
            if isinstance(value, int):
                self.counter(f"{prefix}{name}").inc(value)
            elif isinstance(value, float):
                self.gauge(f"{prefix}{name}").set(value)

    def merge(self, records: Iterable[Dict[str, Any]]) -> None:
        """Merge snapshot *records* (counters add, gauges overwrite,
        histograms add bucket-wise; edge mismatches raise)."""
        for record in records:
            kind = record.get("type")
            name = record.get("name")
            if not isinstance(name, str):
                raise ExperimentError(f"metrics record without a name: {record!r}")
            if kind == "counter":
                self.counter(name).inc(int(record["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(record["value"]))
            elif kind == "histogram":
                histogram = self.histogram(name, record["edges"])
                counts = record["counts"]
                if len(counts) != len(histogram.counts):
                    raise ExperimentError(
                        f"histogram {name!r} bucket count mismatch in merge"
                    )
                for i, count in enumerate(counts):
                    histogram.counts[i] += int(count)
                histogram.count += int(record["count"])
                histogram.sum += float(record["sum"])
            else:
                raise ExperimentError(
                    f"unknown metrics record type {kind!r} for {name!r}"
                )

    # -- snapshot --------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """All instrument records, sorted by ``(type, name)``."""
        return [
            self._instruments[name].to_record()
            for name in sorted(
                self._instruments,
                key=lambda n: (self._instruments[n].kind, n),
            )
        ]

    def snapshot_lines(self, meta: Optional[Dict[str, Any]] = None) -> List[str]:
        """The JSONL snapshot: header line + one line per instrument."""
        header: Dict[str, Any] = {
            "schema": SCHEMA_TAG,
            "version": METRICS_SCHEMA_VERSION,
        }
        if meta:
            header.update(meta)
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True) for record in self.records()
        )
        return lines

    def write_snapshot(
        self, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Write the JSONL snapshot to ``path`` (overwrites)."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.snapshot_lines(meta):
                handle.write(line + "\n")


# ---------------------------------------------------------------------------
# Snapshot files: read / summarize / diff
# ---------------------------------------------------------------------------
def read_snapshot(
    path: str, check_version: bool = True
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a snapshot file: ``(header, records)``.

    Raises :class:`~repro.errors.ExperimentError` on a missing/invalid
    header or an unsupported schema version — readers must not guess at
    a format they do not know.  ``check_version=False`` skips only the
    version gate (the schema tag is still required); callers use it to
    inspect headers first and report a version mismatch with context —
    e.g. ``repro metrics --diff`` naming the mismatched key — instead
    of dying on whichever file is read first.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ExperimentError(f"{path}: empty metrics snapshot")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise ExperimentError(f"{path}:1: bad JSON header: {exc}") from None
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_TAG:
        raise ExperimentError(
            f"{path}: not a metrics snapshot (header schema tag "
            f"{SCHEMA_TAG!r} missing)"
        )
    if check_version and header.get("version") != METRICS_SCHEMA_VERSION:
        raise ExperimentError(
            f"{path}: snapshot schema version {header.get('version')!r} "
            f"!= supported {METRICS_SCHEMA_VERSION}"
        )
    records = []
    for i, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ExperimentError(f"{path}:{i}: bad JSON record: {exc}") from None
        if not isinstance(record, dict):
            raise ExperimentError(f"{path}:{i}: record is not an object")
        records.append(record)
    return header, records


def summarize_snapshot(records: List[Dict[str, Any]]) -> str:
    """A text table of one snapshot's instruments."""
    lines = [f"{'type':10s} {'name':44s} value"]
    lines.append("-" * len(lines[0]))
    for record in records:
        kind = record.get("type", "?")
        name = str(record.get("name", "?"))
        if kind == "histogram":
            count = record.get("count", 0)
            total = record.get("sum", 0.0)
            mean = total / count if count else 0.0
            value = f"count={count} sum={total:g} mean={mean:g}"
        else:
            value = f"{record.get('value')}"
        lines.append(f"{kind:10s} {name[:44]:44s} {value}")
    return "\n".join(lines)


def diff_snapshots(
    base: List[Dict[str, Any]], current: List[Dict[str, Any]]
) -> str:
    """A text diff of two snapshots (added / removed / changed values)."""

    def keyed(records):
        return {
            (r.get("type"), r.get("name")): r
            for r in records
            if isinstance(r.get("name"), str)
        }

    a, b = keyed(base), keyed(current)
    lines = []
    for key in sorted(set(a) | set(b)):
        kind, name = key
        if key not in a:
            lines.append(f"+ {kind} {name} = {_scalar(b[key])}")
        elif key not in b:
            lines.append(f"- {kind} {name} = {_scalar(a[key])}")
        else:
            before, after = _scalar(a[key]), _scalar(b[key])
            if before != after:
                lines.append(f"~ {kind} {name}: {before} -> {after}")
    if not lines:
        return "snapshots are identical"
    return "\n".join(lines)


def _scalar(record: Dict[str, Any]) -> str:
    if record.get("type") == "histogram":
        return f"count={record.get('count')} sum={record.get('sum')}"
    return f"{record.get('value')}"
