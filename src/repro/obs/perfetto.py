"""Chrome trace-event export for span logs (Perfetto / chrome://tracing).

:func:`to_perfetto` turns a ``repro.obs.spans`` JSONL log into the
Chrome trace-event JSON object format, the lingua franca both
https://ui.perfetto.dev and ``chrome://tracing`` load directly:

* **wall-clock spans** become complete (``"ph": "X"``) events in one
  "orchestration" process — one thread (track) per lane: ``session``,
  ``backend``, ``coordinator``, ``job``, and one ``worker:*`` track per
  worker;
* **sim-time spans** become complete events grouped into one process
  per job (``sim:<job>``), with one thread per microengine
  (``me0``..``meN``), plus the ``scenario`` playback lane and the
  ``checks`` lane — picoseconds scaled to trace microseconds;
* a **flow event** pair (``"ph": "s"`` / ``"f"``) links each job's
  coordinator ``grant`` span to the ``execute`` span of the worker that
  ran it, so the hand-off is a visible arrow in the timeline.

Wall timestamps are normalized to the earliest wall span in the log
(``perf_counter`` origins are arbitrary); sim timestamps start at the
run's own zero.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: The orchestration (wall-clock) process id in the exported trace.
WALL_PID = 1

#: Sim-time processes are numbered from here, one per job.
SIM_PID_BASE = 10


def _job_of(record: Dict[str, Any]) -> Optional[str]:
    attrs = record.get("attrs")
    if isinstance(attrs, dict):
        job = attrs.get("job")
        if isinstance(job, str):
            return job
    return None


def to_perfetto(records: List[Dict[str, Any]],
                meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Convert span records to a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []

    wall = [r for r in records if r["clock"] == "wall"]
    sim = [r for r in records if r["clock"] == "sim"]
    wall_zero = min((r["start"] for r in wall), default=0.0)

    # -- process / thread naming ----------------------------------------
    def name_process(pid: int, name: str) -> None:
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name},
        })

    def name_thread(pid: int, tid: int, name: str) -> None:
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        })

    name_process(WALL_PID, "orchestration")
    wall_tracks = sorted({r["track"] for r in wall})
    wall_tid = {track: i + 1 for i, track in enumerate(wall_tracks)}
    for track, tid in sorted(wall_tid.items(), key=lambda kv: kv[1]):
        name_thread(WALL_PID, tid, track)

    # One sim process per job; spans without a job attr share one lane.
    sim_jobs: List[str] = []
    for record in sim:
        job = _job_of(record) or "(run)"
        if job not in sim_jobs:
            sim_jobs.append(job)
    sim_pid = {job: SIM_PID_BASE + i for i, job in enumerate(sim_jobs)}
    sim_tid: Dict[Tuple[str, str], int] = {}
    for record in sim:
        job = _job_of(record) or "(run)"
        key = (job, record["track"])
        if key not in sim_tid:
            sim_tid[key] = 1 + sum(1 for k in sim_tid if k[0] == job)
    for job, pid in sim_pid.items():
        name_process(pid, f"sim:{job}")
    for (job, track), tid in sorted(sim_tid.items(), key=lambda kv: kv[1]):
        name_thread(sim_pid[job], tid, track)

    # -- complete events -------------------------------------------------
    for record in wall:
        events.append({
            "ph": "X",
            "name": record["name"],
            "cat": "wall",
            "pid": WALL_PID,
            "tid": wall_tid[record["track"]],
            "ts": round((record["start"] - wall_zero) * 1e6, 3),
            "dur": round(record["dur"] * 1e6, 3),
            "args": dict(record.get("attrs") or {}),
        })
    for record in sim:
        job = _job_of(record) or "(run)"
        events.append({
            "ph": "X",
            "name": record["name"],
            "cat": "sim",
            "pid": sim_pid[job],
            "tid": sim_tid[(job, record["track"])],
            "ts": round(record["start"] / 1e6, 3),  # ps -> trace us
            "dur": round(record["dur"] / 1e6, 3),
            "args": dict(record.get("attrs") or {}),
        })

    # -- flow events: coordinator grant -> worker execute ----------------
    grants = {
        _job_of(r): r for r in wall
        if r["name"] == "grant" and _job_of(r) is not None
    }
    flow_id = 0
    for record in wall:
        if record["name"] != "execute":
            continue
        job = _job_of(record)
        grant = grants.get(job)
        if grant is None:
            continue
        flow_id += 1
        start_ts = round((grant["start"] - wall_zero) * 1e6, 3)
        events.append({
            "ph": "s", "id": flow_id, "name": "dispatch", "cat": "flow",
            "pid": WALL_PID, "tid": wall_tid[grant["track"]],
            "ts": start_ts,
        })
        events.append({
            "ph": "f", "bp": "e", "id": flow_id, "name": "dispatch",
            "cat": "flow",
            "pid": WALL_PID, "tid": wall_tid[record["track"]],
            "ts": round((record["start"] - wall_zero) * 1e6, 3),
        })

    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        trace["otherData"] = {
            str(k): v for k, v in sorted(meta.items())
            if k not in ("schema", "version")
        }
    return trace


def render_perfetto(records: List[Dict[str, Any]],
                    meta: Optional[Dict[str, Any]] = None) -> str:
    """The trace as a JSON string (stable key order, trailing newline)."""
    return json.dumps(to_perfetto(records, meta), sort_keys=True) + "\n"


def track_types(trace: Dict[str, Any]) -> List[str]:
    """The distinct track *types* named in an exported trace.

    Collapses per-instance tracks (``worker:h:123`` → ``worker``,
    ``me3`` → ``me``) — the acceptance-level inventory: a full study
    trace must expose at least coordinator, worker, job and kernel-phase
    (``me``) tracks.
    """
    types = set()
    for event in trace.get("traceEvents", []):
        if event.get("ph") != "M" or event.get("name") != "thread_name":
            continue
        name = event.get("args", {}).get("name", "")
        if name.startswith("worker:"):
            types.add("worker")
        elif name.startswith("me") and name[2:].isdigit():
            types.add("me")
        elif name:
            types.add(name)
    return sorted(types)
