"""Span-based run timelines: dual-clock tracing from session to kernel.

A *span* is one named interval on one *track* (a timeline lane), under
one of two clocks:

* ``wall`` — orchestration time (:func:`time.perf_counter` seconds):
  session lifetime, backend submit/drain, coordinator grant→outcome per
  job, worker pull/execute/ship, store appends.  Wall spans live only in
  the span log; they never ride :class:`~repro.sweep.store.SweepOutcome`
  payloads, so outcomes stay bit-identical across backends.
* ``sim`` — deterministic simulation time (integer picoseconds):
  scenario playback segments, per-microengine busy/stall/idle windows
  and check-evaluation windows, all **derived from existing end-of-run
  accounting** (:meth:`repro.sim.stats.IntervalAccumulator.totals_ps`,
  :meth:`repro.scenarios.spec.Scenario.segment_spans_ps`) — never from
  per-event instrumentation, so the kernel hot loop pays nothing.
  Sim spans are deterministic and *do* ride outcomes (the optional
  ``obs["spans"]`` key), byte-identical across backends and monitor
  modes.

The :class:`SpanRecorder` is lock-free in the CPython sense — appends to
a plain list, safe from any thread without a mutex — and per-process:
:func:`get_recorder` hands out one shared instance that the session,
the backends and the store plumbing all feed.  It serializes to a
versioned JSONL span log (one header line + one line per span) written
next to the metrics snapshot; ``repro trace export --format perfetto``
and ``repro report --html`` consume that log.

``REPRO_OBS_SPANS=off`` disables recording entirely: every entry point
short-circuits before touching the clock, sweeps produce no span
payloads, and study JSON is byte-identical to an uninstrumented run
(it is byte-identical with spans *on* too — spans never reach report
renderers).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ExperimentError

#: Version of the JSONL span-log schema.  Bump ONLY together with a
#: matching update to the span section of ``src/repro/obs/SCHEMA.md`` —
#: CI cross-checks the two exactly like the metrics schema gate.
SPAN_SCHEMA_VERSION = 1

#: The span-log header line's ``schema`` tag.
SPAN_SCHEMA_TAG = "repro.obs.spans"

#: Environment switch for span recording (``off`` / ``0`` / ``false`` /
#: ``no`` disables it).  Mirrors ``REPRO_OBS_COUNTERS``: default on,
#: priced by the bench span-overhead lane (must stay under ~1%).
OBS_SPANS_ENV_VAR = "REPRO_OBS_SPANS"

#: Span listener: receives each record as it is added (see
#: :attr:`repro.api.events.EventHooks.on_span`).
SpanListener = Callable[[Dict[str, Any]], None]


def spans_enabled() -> bool:
    """Whether span recording is on (the ``REPRO_OBS_SPANS`` switch)."""
    value = os.environ.get(OBS_SPANS_ENV_VAR, "").strip().lower()
    return value not in ("off", "0", "false", "no")


class _WallSpan:
    """Context manager for one wall-clock span (or a no-op when off)."""

    __slots__ = ("_recorder", "_name", "_track", "_attrs", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str, track: str,
                 attrs: Optional[Dict[str, Any]]):
        self._recorder = recorder
        self._name = name
        self._track = track
        self._attrs = attrs
        self._start: Optional[float] = None

    def __enter__(self) -> "_WallSpan":
        if self._recorder is not None:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self._recorder.add_wall(
                self._name,
                self._track,
                self._start,
                time.perf_counter() - self._start,
                self._attrs,
            )


#: The shared disabled context manager (no clock reads, no allocation
#: beyond this singleton).
_NOOP_SPAN = _WallSpan(None, "", "", None)  # type: ignore[arg-type]


class SpanRecorder:
    """Per-process span sink: append-only, serialized on demand.

    ``enabled`` is re-read from the environment on every entry point so
    tests (and the bench overhead lane) can flip ``REPRO_OBS_SPANS``
    without rebuilding sessions; the check is one dict lookup, paid
    per *span*, never per simulated event.
    """

    def __init__(self):
        self._records: List[Dict[str, Any]] = []
        self._listeners: List[SpanListener] = []

    @property
    def enabled(self) -> bool:
        return spans_enabled()

    def __len__(self) -> int:
        return len(self._records)

    # -- listeners -------------------------------------------------------
    def add_listener(self, listener: SpanListener) -> None:
        """Subscribe to spans as they land (``EventHooks.on_span``)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: SpanListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _emit(self, record: Dict[str, Any]) -> None:
        self._records.append(record)
        for listener in self._listeners:
            listener(record)

    # -- recording -------------------------------------------------------
    def wall_span(self, name: str, track: str,
                  attrs: Optional[Dict[str, Any]] = None) -> _WallSpan:
        """A ``with`` block timing one wall-clock span."""
        if not self.enabled:
            return _NOOP_SPAN
        return _WallSpan(self, name, track, attrs)

    def add_wall(self, name: str, track: str, start_s: float, dur_s: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one wall-clock span (``perf_counter`` seconds)."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "clock": "wall",
            "name": name,
            "track": track,
            "start": round(float(start_s), 6),
            "dur": round(float(dur_s), 6),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def add_sim(self, name: str, track: str, start_ps: int, dur_ps: int,
                attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one sim-time span (integer picoseconds)."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "clock": "sim",
            "name": name,
            "track": track,
            "start": int(start_ps),
            "dur": int(dur_ps),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def extend(self, records: Iterable[Dict[str, Any]],
               track_prefix: str = "",
               attrs: Optional[Dict[str, Any]] = None) -> int:
        """Absorb span records produced elsewhere (a worker, a job).

        Only well-formed records are kept — a malformed entry from an
        older or newer peer is dropped, never raised on, so the span
        key stays protocol-compatible the way ``telemetry`` is.
        Returns the number of records absorbed.
        """
        if not self.enabled:
            return 0
        absorbed = 0
        for record in records or ():
            if not _valid_span(record):
                continue
            copied = dict(record)
            if track_prefix:
                copied["track"] = f"{track_prefix}{copied['track']}"
            if attrs:
                merged = dict(copied.get("attrs") or {})
                merged.update(attrs)
                copied["attrs"] = merged
            self._emit(copied)
            absorbed += 1
        return absorbed

    # -- snapshot --------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """All recorded spans, in arrival order."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def snapshot_lines(self, meta: Optional[Dict[str, Any]] = None) -> List[str]:
        """The JSONL span log: header line + one line per span."""
        header: Dict[str, Any] = {
            "schema": SPAN_SCHEMA_TAG,
            "version": SPAN_SCHEMA_VERSION,
        }
        if meta:
            header.update(meta)
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True) for record in self._records
        )
        return lines

    def write(self, path: str, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write the JSONL span log to ``path`` (overwrites)."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.snapshot_lines(meta):
                handle.write(line + "\n")


def _valid_span(record: Any) -> bool:
    return (
        isinstance(record, dict)
        and record.get("clock") in ("wall", "sim")
        and isinstance(record.get("name"), str)
        and isinstance(record.get("track"), str)
        and isinstance(record.get("start"), (int, float))
        and isinstance(record.get("dur"), (int, float))
        and not isinstance(record.get("start"), bool)
        and not isinstance(record.get("dur"), bool)
    )


# ---------------------------------------------------------------------------
# The per-process recorder
# ---------------------------------------------------------------------------
_RECORDER: Optional[SpanRecorder] = None


def get_recorder() -> SpanRecorder:
    """The process-wide span recorder (created on first use)."""
    global _RECORDER
    if _RECORDER is None:
        _RECORDER = SpanRecorder()
    return _RECORDER


def reset_recorder() -> SpanRecorder:
    """Replace the process-wide recorder (tests, worker sessions)."""
    global _RECORDER
    _RECORDER = SpanRecorder()
    return _RECORDER


# ---------------------------------------------------------------------------
# Span-log files
# ---------------------------------------------------------------------------
def read_spans(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Load a span log: ``(header, records)``.

    Raises :class:`~repro.errors.ExperimentError` on a missing/invalid
    header or an unsupported schema version, mirroring
    :func:`repro.obs.metrics.read_snapshot`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ExperimentError(f"{path}: empty span log")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise ExperimentError(f"{path}:1: bad JSON header: {exc}") from None
    if not isinstance(header, dict) or header.get("schema") != SPAN_SCHEMA_TAG:
        raise ExperimentError(
            f"{path}: not a span log (header schema tag "
            f"{SPAN_SCHEMA_TAG!r} missing)"
        )
    if header.get("version") != SPAN_SCHEMA_VERSION:
        raise ExperimentError(
            f"{path}: span-log schema version {header.get('version')!r} "
            f"!= supported {SPAN_SCHEMA_VERSION}"
        )
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ExperimentError(f"{path}:{i}: bad JSON record: {exc}") from None
        if not _valid_span(record):
            raise ExperimentError(f"{path}:{i}: record is not a span object")
        records.append(record)
    return header, records


def summarize_spans(records: List[Dict[str, Any]]) -> str:
    """A text table aggregating spans by ``(clock, track, name)``.

    The embedded timeline summary the HTML report and ``repro trace``
    diagnostics share: span counts and total durations per lane.
    """
    totals: Dict[Tuple[str, str, str], List[float]] = {}
    for record in records:
        key = (record["clock"], record["track"], record["name"])
        entry = totals.setdefault(key, [0, 0.0])
        entry[0] += 1
        entry[1] += record["dur"]
    lines = [f"{'clock':5s} {'track':24s} {'span':24s} {'count':>7s} {'total':>12s}"]
    lines.append("-" * len(lines[0]))
    for (clock, track, name) in sorted(totals):
        count, total = totals[(clock, track, name)]
        unit = "s" if clock == "wall" else "ms"
        value = total if clock == "wall" else total / 1e9
        lines.append(
            f"{clock:5s} {track[:24]:24s} {name[:24]:24s} {int(count):7d} "
            f"{value:10.3f} {unit}"
        )
    return "\n".join(lines)
