"""Power estimation: the NePSim power-framework substitute.

Dynamic power follows ``P = C_eff * Vdd^2 * f`` per component.  Each
microengine contributes a piecewise-constant power signal (active /
idle / stalled at its current VF point) integrated over time; memory
controllers and the IX bus charge energy per access and per byte; a
constant ``base_w`` covers the StrongARM, PLLs and I/O.  The DVS monitor
hardware (TDVS's 32-bit adder, EDVS's idle counters) charges its own —
sub-1 % — overhead, as the paper measured.

:class:`~repro.power.model.PowerAccountant` aggregates everything and
provides the cumulative-energy annotation the trace recorder stamps on
every event (microjoules, so LOC formula (2) divides out to watts).
"""

from repro.power.model import MePowerModel, PowerAccountant
from repro.power.overhead import DvsOverheadMeter
from repro.power.tables import IXP_FAMILY, IxpDataPoint

__all__ = [
    "DvsOverheadMeter",
    "IXP_FAMILY",
    "IxpDataPoint",
    "MePowerModel",
    "PowerAccountant",
]
