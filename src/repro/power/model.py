"""Microengine power model and whole-chip energy accounting.

The calibration anchor is ``PowerConfig.me_active_w_max``: one ME's
active power at the top VF point.  The effective capacitance is derived
once (``C_eff = P / (Vdd^2 * f)``) and every other VF point follows the
physics: halving voltage quarters the dynamic power, lowering frequency
scales it linearly — which is why DVS saves energy rather than merely
stretching execution.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import PowerConfig
from repro.errors import ConfigError
from repro.npu.microengine import BUSY, Microengine
from repro.sim.kernel import Simulator
from repro.sim.stats import TimeWeightedValue


class MePowerModel:
    """Maps an ME's (state, frequency, voltage) to watts."""

    def __init__(self, config: PowerConfig, freq_max_hz: float, vdd_max: float):
        if freq_max_hz <= 0 or vdd_max <= 0:
            raise ConfigError("freq_max_hz and vdd_max must be positive")
        self.config = config
        #: Effective switched capacitance derived from the calibration point.
        self.c_eff = config.me_active_w_max / (vdd_max**2 * freq_max_hz)

    def active_w(self, freq_hz: float, vdd: float) -> float:
        """Dynamic power while executing instructions."""
        return self.c_eff * vdd**2 * freq_hz

    def idle_w(self, freq_hz: float, vdd: float) -> float:
        """Power while idle or stalled (clock partially gated)."""
        return self.config.me_idle_fraction * self.active_w(freq_hz, vdd)

    def watts_for(self, me: Microengine) -> float:
        """Current power draw of a live microengine."""
        if me.states.state == BUSY:
            return self.active_w(me.clock.freq_hz, me.vdd)
        return self.idle_w(me.clock.freq_hz, me.vdd)


class PowerAccountant:
    """Aggregates all chip energy; source of the ``energy`` annotation.

    Components:

    * per-ME continuous signals (updated through the MEs'
      ``power_listener`` hooks);
    * per-access memory/bus energy (updated through the controllers'
      ``on_energy`` hooks);
    * the constant base power;
    * discrete DVS-monitor overhead charges.
    """

    def __init__(
        self,
        sim: Simulator,
        config: PowerConfig,
        me_model: MePowerModel,
    ):
        self.sim = sim
        self.config = config
        self.me_model = me_model
        self._me_signals: Dict[int, TimeWeightedValue] = {}
        self._discrete_j = 0.0
        self._start_ps = sim.now_ps
        self.memory_energy_j: Dict[str, float] = {}
        self.overhead_j = 0.0

        self._per_byte_nj = {
            "sram": config.sram_byte_nj,
            "sdram": config.sdram_byte_nj,
            "scratch": config.scratch_byte_nj,
            "ixbus": config.bus_byte_nj,
        }
        self._per_access_nj = {
            "sram": config.sram_access_nj,
            "sdram": config.sdram_access_nj,
            "scratch": config.scratch_access_nj,
            "ixbus": 0.0,
        }
        # (access, per-byte) pairs in one table: ``on_memory_energy``
        # runs once per memory transaction, so it pays one lookup.
        self._energy_coeffs_nj = {
            name: (self._per_access_nj[name], self._per_byte_nj[name])
            for name in self._per_byte_nj
        }

    # ------------------------------------------------------------------
    # Hook endpoints
    # ------------------------------------------------------------------
    def attach_me(self, me: Microengine) -> None:
        """Register a microengine and start integrating its power."""
        signal = TimeWeightedValue(
            self.sim, self.me_model.watts_for(me), name=f"me{me.index}.power"
        )
        self._me_signals[me.index] = signal
        me.power_listener = self._on_me_change

    def _on_me_change(self, me: Microengine) -> None:
        self._me_signals[me.index].set(self.me_model.watts_for(me))

    def on_memory_energy(self, name: str, nbytes: int) -> None:
        """Charge per-access + per-byte energy for a memory/bus transfer."""
        access_nj, byte_nj = self._energy_coeffs_nj.get(name, (0.0, 0.0))
        joules = (access_nj + nbytes * byte_nj) * 1e-9
        self._discrete_j += joules
        self.memory_energy_j[name] = self.memory_energy_j.get(name, 0.0) + joules

    def add_overhead_nj(self, nanojoules: float) -> None:
        """Charge DVS monitor-hardware overhead energy."""
        joules = nanojoules * 1e-9
        self._discrete_j += joules
        self.overhead_j += joules

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def total_energy_j(self) -> float:
        """Cumulative chip energy since construction, in joules.

        Explicit loop rather than a ``sum`` genexpr: this runs once per
        annotated trace event, and a plain loop keeps the profile
        attribution on this method instead of a ``<genexpr>`` frame.
        """
        now_ps = self.sim.now_ps
        elapsed_s = (now_ps - self._start_ps) / 1e12
        me_j = 0.0
        for signal in self._me_signals.values():
            me_j += signal.integral_at(now_ps)
        return me_j + self._discrete_j + self.config.base_w * elapsed_s

    def total_energy_uj(self) -> float:
        """Cumulative chip energy in microjoules (trace annotation)."""
        return self.total_energy_j() * 1e6

    def me_energy_j(self, index: int) -> float:
        """Energy one ME has consumed so far."""
        return self._me_signals[index].integral

    def mean_power_w(self) -> float:
        """Average chip power since construction."""
        elapsed_s = (self.sim.now_ps - self._start_ps) / 1e12
        if elapsed_s <= 0:
            return 0.0
        return self.total_energy_j() / elapsed_s

    def breakdown_w(self) -> Dict[str, float]:
        """Mean power per component group (for reports and tests)."""
        elapsed_s = (self.sim.now_ps - self._start_ps) / 1e12
        if elapsed_s <= 0:
            return {}
        out = {
            f"me{index}": signal.integral / elapsed_s
            for index, signal in self._me_signals.items()
        }
        for name, joules in self.memory_energy_j.items():
            out[name] = joules / elapsed_s
        out["base"] = self.config.base_w
        out["dvs_overhead"] = self.overhead_j / elapsed_s
        return out
