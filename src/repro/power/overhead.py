"""DVS monitor-hardware overhead accounting.

TDVS needs a 32-bit adder that accumulates packet sizes in each monitor
window and a comparator against the current threshold; the adder runs
once per packet arrival — "much less frequently than the ALUs in ME
pipelines" — and the paper measured the overhead under 1 % of total
power.  EDVS needs per-ME idle counters sampled once per window.  Both
are charged here as discrete energy events so experiments can verify the
sub-1 % claim (see the ``idle``/ablation benches).
"""

from __future__ import annotations

from repro.config import PowerConfig
from repro.power.model import PowerAccountant


class DvsOverheadMeter:
    """Charges monitor-hardware energy to the accountant."""

    def __init__(self, accountant: PowerAccountant, config: PowerConfig):
        self.accountant = accountant
        self.config = config
        self.packet_charges = 0
        self.window_charges = 0

    def on_packet_arrival(self) -> None:
        """TDVS adder activity: one charge per arriving packet."""
        self.packet_charges += 1
        self.accountant.add_overhead_nj(self.config.tdvs_adder_nj_per_packet)

    def on_window_evaluation(self) -> None:
        """EDVS counter sample / TDVS comparator: one charge per window."""
        self.window_charges += 1
        self.accountant.add_overhead_nj(self.config.edvs_counter_nj_per_window)

    def total_overhead_j(self) -> float:
        """Total monitor energy charged so far."""
        return self.accountant.overhead_j

    def mean_overhead_w(self, elapsed_s: float) -> float:
        """Average monitor power over ``elapsed_s`` seconds of run time.

        This is the single definition of ``RunResult.dvs_overhead_w``;
        the runner and the sweep workers both report it from here.
        """
        if elapsed_s <= 0:
            return 0.0
        return self.accountant.overhead_j / elapsed_s
