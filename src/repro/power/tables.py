"""Reference data: the Intel IXP family (the paper's Figure 1).

These are published datasheet-level numbers the paper uses to motivate
the study (power grows with NPU complexity); the fig01 experiment prints
them alongside the reproduction model's own configured operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IxpDataPoint:
    """One row of the paper's Figure 1."""

    name: str
    performance_mips: int
    media_bandwidth_gbps: float
    me_frequency_mhz: int
    num_mes: int
    power_w: float


#: The paper's Figure 1, row for row.
IXP_FAMILY: Tuple[IxpDataPoint, ...] = (
    IxpDataPoint("IXP1200", 1200, 1.0, 232, 6, 4.5),
    IxpDataPoint("IXP2400", 4800, 2.4, 600, 8, 10.0),
    IxpDataPoint("IXP2800", 23000, 10.0, 1400, 16, 14.0),
)
