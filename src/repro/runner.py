"""One-call simulation runs: config in, totals and distributions out.

:class:`SimulationRun` wires a :class:`~repro.npu.chip.NpuChip`, a
traffic source and (optionally) a DVS governor together from a single
:class:`~repro.config.RunConfig`, attaches observers to the chip's
:class:`~repro.trace.bus.TraceBus` — compiled LOC monitors
(``monitors=``, see :mod:`repro.loc.monitor`) and legacy structured
sinks (``sinks=``: analyzers, trace writers) — and runs for the
configured number of reference-clock cycles.  This is the entry point
the experiments, the examples and most integration tests use.

When nothing subscribes to an event name, the bus binds the chip's
emitters to a shared no-op at start, so an unobserved run skips trace
materialization entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import RunConfig
from repro.dvs.combined import CombinedGovernor
from repro.dvs.edvs import EdvsGovernor
from repro.dvs.tdvs import TdvsGovernor
from repro.dvs.vf_table import VfTable
from repro.errors import ConfigError
from repro.npu.chip import NpuChip, RunTotals
from repro.npu.microengine import BUSY, IDLE, STALLED
from repro.obs.spans import spans_enabled
from repro.power.overhead import DvsOverheadMeter
from repro.scenarios.catalog import get_scenario
from repro.scenarios.source import ScenarioTrafficSource
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.traffic.diurnal import DiurnalModel
from repro.traffic.generator import TrafficSource
from repro.traffic.sampler import SegmentSpec, TrafficSampler
from repro.traffic.sizes import SIZE_MIXES


#: Shared diurnal sampler for named-level load resolution.  The sampler
#: is pure (percentile lookups over the fixed day profile), so one
#: instance serves every run — building it per call burned a day-curve
#: construction on each of a sweep's thousands of job setups.
_DIURNAL_SAMPLER: Optional[TrafficSampler] = None


def _diurnal_sampler() -> TrafficSampler:
    global _DIURNAL_SAMPLER
    if _DIURNAL_SAMPLER is None:
        _DIURNAL_SAMPLER = TrafficSampler(DiurnalModel())
    return _DIURNAL_SAMPLER


def resolve_offered_load_bps(config: RunConfig) -> float:
    """Offered load in bits/second from a run's traffic config.

    Named levels resolve through the diurnal sampler (the NLANR-like day
    profile); explicit loads pass through; scenarios report their
    duration-weighted mean load.
    """
    traffic = config.traffic
    if traffic.offered_load_mbps is not None:
        return traffic.offered_load_mbps * 1e6
    if traffic.scenario is not None:
        return get_scenario(traffic.scenario).mean_load_mbps * 1e6
    return _diurnal_sampler().level_load_bps(traffic.level)


@dataclass
class RunResult:
    """Everything a finished run reports."""

    config: RunConfig
    totals: RunTotals
    governor_policy: str
    governor_transitions: int
    governor_windows: int
    dvs_overhead_w: float
    #: True when a streaming anomaly gate stopped the run before its
    #: cycle budget; ``totals`` then cover exactly the simulated prefix
    #: (the simulator clock freezes at the trip instant).
    aborted_early: bool = False
    #: The tripping gate's reason line (empty for full runs).
    abort_reason: str = ""

    @property
    def mean_power_w(self) -> float:
        """Mean chip power over the run."""
        return self.totals.mean_power_w

    @property
    def throughput_mbps(self) -> float:
        """Forwarded throughput over the run."""
        return self.totals.throughput_mbps


class SimulationRun:
    """A fully wired simulation, ready to run once.

    ``sinks`` are legacy structured observers (``emit(TraceEvent)``);
    ``monitors`` are bus-native observers exposing ``attach(bus)`` —
    typically :func:`repro.loc.monitor.build_monitor` products riding
    the tuple-payload fast path.  Both subscribe to :attr:`bus` before
    the chip starts.

    ``fuse`` forces compute fusion on/off for every microengine
    (``None`` defers to the ``REPRO_FUSE`` environment default, on).
    Fused and unfused runs are byte-identical; the knob exists for A/B
    benchmarking (``repro bench``) and the equivalence test walls.
    """

    def __init__(
        self,
        config: RunConfig,
        sinks: Sequence = (),
        monitors: Sequence = (),
        gates: Sequence = (),
        fuse: Optional[bool] = None,
    ):
        config.validate()
        self.config = config
        self.sim = Simulator(name=f"{config.benchmark}-{config.dvs.policy}")
        self.rng_streams = RngStreams(config.seed)
        self.chip = NpuChip(self.sim, config, self.rng_streams, fuse=fuse)
        self.bus = self.chip.bus
        for sink in sinks:
            self.chip.add_sink(sink)
        for monitor in monitors:
            monitor.attach(self.bus)
        # Anomaly gates attach last: their polls subscribe after the
        # monitors they watch, so dispatch order guarantees a poll sees
        # the monitor state *after* it consumed the same event.
        self.abort_signal = None
        if gates:
            from repro.obs.gates import AbortSignal

            self.abort_signal = AbortSignal(self.sim)
            for gate in gates:
                gate.attach(self.bus, self.abort_signal)

        # -- traffic -----------------------------------------------------
        if config.traffic.scenario is not None:
            self.traffic = ScenarioTrafficSource.from_scenario(
                self.sim,
                self.chip.deliver,
                get_scenario(config.traffic.scenario),
                duration_ps=self.duration_ps,
                num_ports=config.npu.num_ports,
                rng_streams=self.rng_streams,
            )
        else:
            size_mix = SIZE_MIXES[config.traffic.size_mix]
            spec = SegmentSpec(
                level=config.traffic.level or "explicit",
                offered_load_bps=resolve_offered_load_bps(config),
                duration_s=1.0,  # actual stop time comes from duration_cycles
                process=config.traffic.process,
                burst_ratio=config.traffic.burst_ratio,
                burst_fraction=config.traffic.burst_fraction,
            )
            self.traffic = TrafficSource.from_spec(
                self.sim,
                self.chip.deliver,
                spec,
                size_mix=size_mix,
                num_ports=config.npu.num_ports,
                rng_streams=self.rng_streams,
            )

        # -- DVS governor ---------------------------------------------------
        self.governor = None
        self.overhead_meter = None
        if config.dvs.policy != "none":
            vf_table = VfTable.from_config(config.npu)
            self.overhead_meter = DvsOverheadMeter(self.chip.accountant, config.power)
            if config.dvs.policy == "tdvs":
                self.governor = TdvsGovernor(
                    self.sim,
                    config.dvs,
                    vf_table,
                    self.chip.mes,
                    self.chip.reference_clock,
                    self.chip.traffic_monitor,
                    overhead=self.overhead_meter,
                )
                # The monitor adder runs on every packet arrival.
                self.chip.arrival_hooks.append(self.overhead_meter.on_packet_arrival)
            elif config.dvs.policy == "edvs":
                self.governor = EdvsGovernor(
                    self.sim,
                    config.dvs,
                    vf_table,
                    self.chip.mes,
                    overhead=self.overhead_meter,
                )
            elif config.dvs.policy == "combined":
                self.governor = CombinedGovernor(
                    self.sim,
                    config.dvs,
                    vf_table,
                    self.chip.mes,
                    self.chip.reference_clock,
                    self.chip.traffic_monitor,
                    overhead=self.overhead_meter,
                )
                self.chip.arrival_hooks.append(self.overhead_meter.on_packet_arrival)
            else:  # pragma: no cover - config validation rejects others
                raise ConfigError(f"unhandled policy {config.dvs.policy!r}")

        self._ran = False

        # Kernel-phase spans ride existing end-of-run accounting (the
        # per-ME IntervalAccumulator totals), never per-event hooks: one
        # on_run_end snapshot when spans are on, zero cost when off.
        self._span_totals: Optional[List] = None
        if spans_enabled():
            self.sim.on_run_end.append(self._capture_span_totals)

    def _capture_span_totals(self) -> None:
        self._span_totals = [
            (me.index, me.role, me.states.totals_ps()) for me in self.chip.mes
        ]

    def sim_spans(self) -> List[Dict]:
        """Deterministic sim-clock span records for the finished run.

        Scenario playback segments (one span per segment on the
        ``scenario`` track) plus per-ME busy/stall/idle windows laid
        sequentially on each ``me<k>`` track.  The ME windows are
        *aggregates* — total time charged to each state, drawn as
        adjacent blocks — not an event-accurate interleaving; deriving
        them from :meth:`~repro.sim.stats.IntervalAccumulator.totals_ps`
        is what keeps span overhead out of the kernel hot loop.  Every
        value is integer picoseconds from run start, so records are
        byte-identical across backends and monitor modes.  Empty when
        spans are disabled or the run has not finished.
        """
        if self._span_totals is None:
            return []
        spans: List[Dict] = []
        end_ps = self.sim.now_ps
        if self.config.traffic.scenario is not None:
            scenario = get_scenario(self.config.traffic.scenario)
            start = 0
            for index, (seg_end, segment) in enumerate(
                scenario.segment_spans_ps(self.duration_ps)
            ):
                seg_end = min(seg_end, end_ps)
                if seg_end <= start:
                    break
                spans.append({
                    "clock": "sim",
                    "name": f"segment{index}",
                    "track": "scenario",
                    "start": start,
                    "dur": seg_end - start,
                    "attrs": {
                        "load_mbps": segment.offered_load_mbps,
                        "process": segment.process,
                    },
                })
                start = seg_end
        for index, role, totals in self._span_totals:
            track = f"me{index}"
            start = 0
            for state in (BUSY, STALLED, IDLE):
                dur = int(totals.get(state, 0))
                if dur <= 0:
                    continue
                spans.append({
                    "clock": "sim",
                    "name": state,
                    "track": track,
                    "start": start,
                    "dur": dur,
                    "attrs": {"role": role},
                })
                start += dur
        return spans

    @property
    def duration_ps(self) -> int:
        """Run length in picoseconds (reference cycles x period)."""
        return self.chip.reference_clock.delay_for_cycles(
            self.config.duration_cycles
        )

    def run(self) -> RunResult:
        """Execute the simulation and return the result."""
        if self._ran:
            raise ConfigError("SimulationRun objects are single-use")
        self._ran = True
        stop_ps = self.duration_ps
        self.chip.start()
        if self.governor is not None:
            self.governor.start()
        self.traffic.start(stop_ps=stop_ps)
        self.sim.run(until_ps=stop_ps)

        totals = self.chip.totals()
        overhead_w = (
            self.overhead_meter.mean_overhead_w(totals.duration_s)
            if self.overhead_meter is not None
            else 0.0
        )
        aborted = self.abort_signal is not None and self.abort_signal.tripped
        return RunResult(
            config=self.config,
            totals=totals,
            governor_policy=self.config.dvs.policy,
            governor_transitions=self.governor.transitions if self.governor else 0,
            governor_windows=self.governor.windows_evaluated if self.governor else 0,
            dvs_overhead_w=overhead_w,
            aborted_early=aborted,
            abort_reason=self.abort_signal.reason if aborted else "",
        )


def run_simulation(
    config: RunConfig,
    sinks: Sequence = (),
    monitors: Sequence = (),
    gates: Sequence = (),
) -> RunResult:
    """Build and run a simulation in one call."""
    return SimulationRun(config, sinks=sinks, monitors=monitors, gates=gates).run()
