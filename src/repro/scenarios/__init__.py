"""Declarative traffic scenarios and the built-in workload catalog.

* :mod:`~repro.scenarios.spec` — :class:`Scenario` /
  :class:`ScenarioSegment`: named, documented workloads composed of
  timed traffic phases;
* :mod:`~repro.scenarios.catalog` — the built-in catalog (flash crowd,
  DDoS storm, diurnal replays, failover, on/off bursting, saturation,
  size-mix drift) plus the registry for custom entries;
* :mod:`~repro.scenarios.source` — the simulator-bound playback source.

A :class:`~repro.config.RunConfig` selects a scenario by name::

    RunConfig(traffic=TrafficConfig(scenario="flash_crowd",
                                    offered_load_mbps=None))

and scenarios form a sweep axis via ``traffic="scenario:flash_crowd"``
tokens in :class:`repro.sweep.SweepSpec`.
"""

from repro.scenarios.catalog import (
    all_scenarios,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.source import PiecewiseArrivalProcess, ScenarioTrafficSource
from repro.scenarios.spec import Scenario, ScenarioSegment

__all__ = [
    "PiecewiseArrivalProcess",
    "Scenario",
    "ScenarioSegment",
    "ScenarioTrafficSource",
    "all_scenarios",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
]
