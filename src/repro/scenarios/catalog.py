"""The built-in scenario catalog.

Each entry is a :class:`~repro.scenarios.spec.Scenario` modeling a
workload the single-level experiments cannot express: flash crowds,
DDoS-like bursts of minimum-size packets, diurnal replays, failover load
doubling, on/off bursting, saturation stress and size-mix drift.  Loads
sit in the same NPU regime as the experiments' named levels
(:data:`repro.experiments.common.LEVEL_LOADS_MBPS`: 400/1000/1550 Mbps),
and the diurnal replays derive their phase loads from the
:class:`~repro.traffic.diurnal.DiurnalModel` day curve scaled exactly as
:class:`~repro.traffic.sampler.TrafficSampler` scales its samples.

Use :func:`get_scenario` / :func:`list_scenarios` to look entries up and
:func:`register_scenario` to add custom ones (sweeps reference scenarios
by name, so anything registered here is immediately sweepable).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import TrafficError
from repro.scenarios.spec import Scenario, ScenarioSegment
from repro.traffic.diurnal import DiurnalModel

#: The NPU-regime load the busiest diurnal hour maps to, matching
#: :class:`~repro.traffic.sampler.TrafficSampler`'s default scale.
DIURNAL_NPU_PEAK_MBPS = 1600.0

_CATALOG: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the catalog (``replace=True`` to overwrite)."""
    scenario.validate()
    if scenario.name in _CATALOG and not replace:
        raise TrafficError(
            f"scenario {scenario.name!r} already registered "
            "(pass replace=True to overwrite)"
        )
    _CATALOG[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look one scenario up by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise TrafficError(
            f"unknown scenario {name!r}; known: {sorted(_CATALOG)}"
        ) from None


def list_scenarios() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_CATALOG)


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_CATALOG[name] for name in list_scenarios()]


# ---------------------------------------------------------------------------
# Diurnal replay helper
# ---------------------------------------------------------------------------
def diurnal_replay_segments(
    hours: Sequence[float],
    model: DiurnalModel,
    npu_peak_mbps: float = DIURNAL_NPU_PEAK_MBPS,
) -> Tuple[ScenarioSegment, ...]:
    """Equal-length phases replaying the day curve at the given hours.

    Loads are the model's smooth base rates scaled so the day's peak
    hour lands on ``npu_peak_mbps`` — the same high/med/low ratio
    preservation :class:`~repro.traffic.sampler.TrafficSampler` applies.
    """
    if not hours:
        raise TrafficError("diurnal replay needs at least one hour")
    peak_bps = model.base_rate_bps(model.peak_hour * 3600.0)
    return tuple(
        ScenarioSegment(
            weight=1.0,
            offered_load_mbps=npu_peak_mbps
            * model.base_rate_bps(hour * 3600.0)
            / peak_bps,
        )
        for hour in hours
    )


# ---------------------------------------------------------------------------
# Built-in entries
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="flash_crowd",
        title="Flash-crowd ramp",
        description=(
            "Quiet baseline, a steep ramp to a burst-heavy peak as a "
            "crowd arrives, then a slow decay — the canonical TDVS "
            "threshold-tracking stressor."
        ),
        segments=(
            ScenarioSegment(weight=2.0, offered_load_mbps=300.0),
            ScenarioSegment(weight=1.0, offered_load_mbps=900.0),
            ScenarioSegment(
                weight=3.0, offered_load_mbps=1500.0, burst_ratio=6.0
            ),
            ScenarioSegment(weight=2.0, offered_load_mbps=1100.0),
            ScenarioSegment(weight=2.0, offered_load_mbps=500.0),
        ),
    )
)

register_scenario(
    Scenario(
        name="ddos_min64",
        title="DDoS-like min64 burst storm",
        description=(
            "Normal imix traffic interrupted by a storm of minimum-size "
            "packets at high rate — per-packet costs dominate, so "
            "throughput collapses harder than offered bits suggest."
        ),
        segments=(
            ScenarioSegment(weight=3.0, offered_load_mbps=600.0),
            ScenarioSegment(
                weight=4.0,
                offered_load_mbps=1400.0,
                size_mix="min64",
                burst_ratio=8.0,
                burst_fraction=0.5,
            ),
            ScenarioSegment(weight=3.0, offered_load_mbps=600.0),
        ),
        num_flows=2048,  # attack traffic sprays many source flows
        zipf_s=0.2,
    )
)

register_scenario(
    Scenario(
        name="weekday_diurnal",
        title="Weekday diurnal replay",
        description=(
            "A compressed working day from the Figure 2 model: overnight "
            "trough, morning rise, midday plateau, afternoon peak, "
            "evening shoulder."
        ),
        segments=diurnal_replay_segments((3.0, 9.0, 12.0, 14.0, 20.0), DiurnalModel()),
    )
)

register_scenario(
    Scenario(
        name="weekend_diurnal",
        title="Weekend diurnal replay",
        description=(
            "The same day shape with a later, flatter peak at roughly "
            "60% of weekday volume — long low-load stretches reward "
            "aggressive down-scaling."
        ),
        segments=diurnal_replay_segments(
            (4.0, 11.0, 16.0, 22.0),
            DiurnalModel(peak_bps=1.2e8, peak_hour=16.0),
            npu_peak_mbps=0.6 * DIURNAL_NPU_PEAK_MBPS,
        ),
    )
)

register_scenario(
    Scenario(
        name="overnight_trough",
        title="Overnight trough",
        description=(
            "Sustained light Poisson traffic, the emptiest hours of the "
            "day — the upper bound on what any DVS policy can save."
        ),
        segments=(
            ScenarioSegment(weight=1.0, offered_load_mbps=120.0, process="poisson"),
        ),
    )
)

register_scenario(
    Scenario(
        name="link_failover",
        title="Link-failover load doubling",
        description=(
            "Steady medium load until a parallel link fails and this "
            "path inherits its traffic: an instant doubling that a "
            "slow-reacting policy turns into sustained loss."
        ),
        segments=(
            ScenarioSegment(weight=1.0, offered_load_mbps=700.0),
            ScenarioSegment(weight=1.0, offered_load_mbps=1400.0),
        ),
    )
)

register_scenario(
    Scenario(
        name="bursty_onoff",
        title="Bursty on/off alternation",
        description=(
            "Alternating heavy burst phases and near-idle gaps at the "
            "DVS-window timescale — maximizes VF transition churn and "
            "the cost of the 10 us penalty."
        ),
        segments=(
            ScenarioSegment(
                weight=1.0, offered_load_mbps=1300.0, burst_ratio=8.0
            ),
            ScenarioSegment(weight=1.0, offered_load_mbps=200.0, process="poisson"),
            ScenarioSegment(
                weight=1.0, offered_load_mbps=1300.0, burst_ratio=8.0
            ),
            ScenarioSegment(weight=1.0, offered_load_mbps=200.0, process="poisson"),
            ScenarioSegment(
                weight=1.0, offered_load_mbps=1300.0, burst_ratio=8.0
            ),
            ScenarioSegment(weight=1.0, offered_load_mbps=200.0, process="poisson"),
        ),
    )
)

register_scenario(
    Scenario(
        name="saturation_stress",
        title="Saturation stress",
        description=(
            "Constant-rate offered load beyond the chip's forwarding "
            "capacity for the whole run — drops are expected; the "
            "question is whether DVS makes them worse."
        ),
        segments=(
            ScenarioSegment(weight=1.0, offered_load_mbps=1900.0, process="cbr"),
        ),
    )
)

register_scenario(
    Scenario(
        name="imix_drift",
        title="Mixed-size imix drift",
        description=(
            "Constant offered bits while the packet-size mix drifts from "
            "classic imix through downstream-heavy to minimum-size — "
            "isolates per-packet from per-byte processing cost."
        ),
        segments=(
            ScenarioSegment(weight=1.0, offered_load_mbps=1000.0, size_mix="imix"),
            ScenarioSegment(
                weight=1.0, offered_load_mbps=1000.0, size_mix="imix_downstream"
            ),
            ScenarioSegment(weight=1.0, offered_load_mbps=1000.0, size_mix="min64"),
        ),
    )
)
