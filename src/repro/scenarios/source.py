"""Playing a scenario back through the simulator.

Two pieces:

* :class:`PiecewiseArrivalProcess` — an
  :class:`~repro.traffic.arrivals.ArrivalProcess` that plays a timed
  sequence of per-segment processes.  It tracks the absolute arrival
  clock itself, so when a drawn gap would cross a segment boundary it
  fast-forwards to the boundary and redraws under the next segment's
  process (the same consume-the-dwell trick the MMPP process uses for
  its burst/quiet states).
* :class:`ScenarioTrafficSource` — a
  :class:`~repro.traffic.generator.TrafficSource` whose arrival process
  and packet-size mix follow the scenario's segments.

Both assume the source starts at simulated time zero, which is how
:class:`~repro.runner.SimulationRun` drives traffic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import TrafficError
from repro.scenarios.spec import Scenario, ScenarioSegment
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.traffic.arrivals import ArrivalProcess, arrival_process
from repro.traffic.generator import DeliverFn, TrafficSource
from repro.traffic.sizes import PacketSizeMix


class PiecewiseArrivalProcess(ArrivalProcess):
    """Sequences per-segment arrival processes along simulated time.

    Parameters
    ----------
    spans:
        ``(end_ps, process)`` pairs, ordered by ``end_ps``.  The last
        process is open-ended: it keeps generating past its nominal end
        so a run can over-shoot its stop time without starving.
    """

    def __init__(self, spans: Sequence[Tuple[int, ArrivalProcess]]):
        if not spans:
            raise TrafficError("piecewise process needs at least one span")
        ends = [end for end, _ in spans]
        if any(b <= a for a, b in zip(ends, ends[1:])):
            raise TrafficError(f"span boundaries must increase, got {ends}")
        self._spans = list(spans)
        self._index = 0
        self._now_ps = 0.0

    @property
    def mean_rate_pps(self) -> float:
        """Duration-weighted mean arrival rate across all spans."""
        total_ps = self._spans[-1][0]
        rate = 0.0
        start = 0
        for end, process in self._spans:
            rate += process.mean_rate_pps * (end - start) / total_ps
            start = end
        return rate

    @property
    def segment_index(self) -> int:
        """Index of the span the next arrival will be drawn in."""
        return self._index

    def next_gap_ps(self, rng) -> int:
        gap = 0.0
        while True:
            end_ps, process = self._spans[self._index]
            candidate = process.next_gap_ps(rng)
            arrival = self._now_ps + gap + candidate
            if arrival <= end_ps or self._index == len(self._spans) - 1:
                self._now_ps = arrival
                return max(1, round(gap + candidate))
            # The drawn gap crosses into the next segment: consume time
            # up to the boundary and redraw at the new segment's rate.
            gap = end_ps - self._now_ps
            self._index += 1


class ScenarioTrafficSource(TrafficSource):
    """A traffic source that follows a :class:`Scenario`'s phases.

    Use :meth:`from_scenario`; the plain constructor signature is
    inherited and behaves like an ordinary single-mix source until a
    scenario's mix spans are attached.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.scenario: Optional[Scenario] = None
        self._mix_spans: List[Tuple[int, PacketSizeMix]] = []

    @classmethod
    def from_scenario(
        cls,
        sim: Simulator,
        deliver: DeliverFn,
        scenario: Scenario,
        duration_ps: int,
        num_ports: int = 16,
        rng_streams: Optional[RngStreams] = None,
    ) -> "ScenarioTrafficSource":
        """Build a source that plays ``scenario`` over ``duration_ps``."""
        scenario.validate()
        spans = scenario.segment_spans_ps(duration_ps)
        process = PiecewiseArrivalProcess(
            [(end, _segment_process(segment)) for end, segment in spans]
        )
        source = cls(
            sim,
            deliver,
            process,
            size_mix=spans[0][1].mix,
            num_ports=num_ports,
            rng_streams=rng_streams,
            num_flows=scenario.num_flows,
            zipf_s=scenario.zipf_s,
        )
        source.scenario = scenario
        source._mix_spans = [(end, segment.mix) for end, segment in spans]
        return source

    def mix_for(self, arrival_ps: int) -> PacketSizeMix:
        """The size mix active at an absolute arrival time."""
        for end_ps, mix in self._mix_spans:
            if arrival_ps <= end_ps:
                return mix
        # Past the last boundary (run over-shoot), or no spans attached
        # (plain construction): the current single mix applies.
        return self._mix_spans[-1][1] if self._mix_spans else self.size_mix

    def _make_packet(self, arrival_ps: int):
        self.size_mix = self.mix_for(arrival_ps)
        return super()._make_packet(arrival_ps)


def _segment_process(segment: ScenarioSegment) -> ArrivalProcess:
    """The arrival process for one scenario segment."""
    kwargs = {}
    if segment.process == "mmpp":
        kwargs = {
            "burst_ratio": segment.burst_ratio,
            "burst_fraction": segment.burst_fraction,
        }
    return arrival_process(
        segment.process,
        segment.offered_load_mbps * 1e6,
        segment.mix.mean_bits,
        **kwargs,
    )
