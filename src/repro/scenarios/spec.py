"""Declarative traffic scenarios.

A :class:`Scenario` is a named, documented workload: an ordered sequence
of :class:`ScenarioSegment` phases that together span one simulation run.
Each segment holds a share of the run's duration (``weight``), an offered
load, an arrival process and a packet-size mix — the same vocabulary as
:class:`~repro.traffic.sampler.SegmentSpec`, which each segment converts
to via :meth:`ScenarioSegment.to_segment_spec`.

Scenarios are the workload axis of the sweep engine
(:mod:`repro.sweep`): a :class:`~repro.config.RunConfig` references one
by name (``TrafficConfig(scenario="flash_crowd", ...)``) and the runner
plays its segments back through a
:class:`~repro.scenarios.source.ScenarioTrafficSource`.  The built-in
catalog lives in :mod:`repro.scenarios.catalog`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Tuple

from repro.errors import TrafficError
from repro.traffic.sampler import SegmentSpec
from repro.traffic.sizes import SIZE_MIXES, PacketSizeMix

_PROCESSES = ("poisson", "cbr", "mmpp")


@dataclass(frozen=True)
class ScenarioSegment:
    """One phase of a scenario.

    Attributes
    ----------
    weight:
        This segment's share of the run duration.  Weights are relative;
        the scenario normalizes them, so ``(1, 2, 1)`` splits a run
        25/50/25.
    offered_load_mbps:
        Mean offered load during the segment.
    process:
        Arrival process (``poisson``/``cbr``/``mmpp``).
    burst_ratio / burst_fraction:
        MMPP shape parameters (ignored by other processes).
    size_mix:
        Packet-size mix active during the segment.
    """

    weight: float
    offered_load_mbps: float
    process: str = "mmpp"
    burst_ratio: float = 4.0
    burst_fraction: float = 0.3
    size_mix: str = "imix"

    def validate(self) -> None:
        """Raise :class:`TrafficError` on inconsistent settings."""
        if self.weight <= 0:
            raise TrafficError(f"segment weight must be positive, got {self.weight}")
        if self.offered_load_mbps <= 0:
            raise TrafficError(
                f"segment load must be positive, got {self.offered_load_mbps}"
            )
        if self.process not in _PROCESSES:
            raise TrafficError(
                f"unknown arrival process {self.process!r}; known: {_PROCESSES}"
            )
        if self.size_mix not in SIZE_MIXES:
            raise TrafficError(
                f"unknown size mix {self.size_mix!r}; known: {sorted(SIZE_MIXES)}"
            )
        if self.process == "mmpp":
            if self.burst_ratio <= 1.0:
                raise TrafficError("burst_ratio must exceed 1")
            if not 0.0 < self.burst_fraction < 1.0:
                raise TrafficError("burst_fraction must be in (0, 1)")

    @property
    def mix(self) -> PacketSizeMix:
        """The segment's :class:`~repro.traffic.sizes.PacketSizeMix`."""
        return SIZE_MIXES[self.size_mix]

    def to_segment_spec(self, duration_s: float, level: str = "scenario") -> SegmentSpec:
        """This phase as a standalone :class:`SegmentSpec`."""
        return SegmentSpec(
            level=level,
            offered_load_bps=self.offered_load_mbps * 1e6,
            duration_s=duration_s,
            process=self.process,
            burst_ratio=self.burst_ratio,
            burst_fraction=self.burst_fraction,
        )


@dataclass(frozen=True)
class Scenario:
    """A named workload: an ordered sequence of traffic phases.

    Attributes
    ----------
    name:
        Catalog key (kebab/underscore identifier).
    title:
        One-line human label.
    description:
        What the workload models and why it stresses a DVS policy.
    segments:
        The ordered phases; weights are normalized over the run.
    num_flows / zipf_s:
        Flow-population shape shared by all phases.
    """

    name: str
    title: str
    description: str
    segments: Tuple[ScenarioSegment, ...]
    num_flows: int = 512
    zipf_s: float = 0.9

    def validate(self) -> None:
        """Raise :class:`TrafficError` on inconsistent settings."""
        if not self.name:
            raise TrafficError("scenario name must be non-empty")
        if not self.segments:
            raise TrafficError(f"scenario {self.name!r} has no segments")
        for segment in self.segments:
            segment.validate()
        if self.num_flows <= 0:
            raise TrafficError("num_flows must be positive")
        if self.zipf_s < 0:
            raise TrafficError("zipf_s must be non-negative")

    # -- derived load figures -------------------------------------------
    @property
    def total_weight(self) -> float:
        """Sum of segment weights (the normalization divisor)."""
        return sum(segment.weight for segment in self.segments)

    @property
    def mean_load_mbps(self) -> float:
        """Duration-weighted mean offered load over the whole run."""
        return (
            sum(s.weight * s.offered_load_mbps for s in self.segments)
            / self.total_weight
        )

    @property
    def peak_load_mbps(self) -> float:
        """Highest per-segment offered load."""
        return max(s.offered_load_mbps for s in self.segments)

    @property
    def min_load_mbps(self) -> float:
        """Lowest per-segment offered load (the quietest phase)."""
        return min(s.offered_load_mbps for s in self.segments)

    @property
    def mean_packet_bytes(self) -> float:
        """Duration-weighted mean packet size over the whole run.

        Weights segment size-mix means by segment weight; an
        approximation (segments also differ in load), good enough for
        deriving order-of-magnitude latency bounds in the study engine.
        """
        return (
            sum(s.weight * s.mix.mean_bytes for s in self.segments)
            / self.total_weight
        )

    def segment_spans_ps(self, duration_ps: int) -> List[Tuple[int, ScenarioSegment]]:
        """``(end_ps, segment)`` boundaries over a run of ``duration_ps``.

        The last boundary is exactly ``duration_ps``; earlier boundaries
        are proportional to the normalized weights.
        """
        if duration_ps <= 0:
            raise TrafficError(f"duration_ps must be positive, got {duration_ps}")
        total = self.total_weight
        spans: List[Tuple[int, ScenarioSegment]] = []
        acc = 0.0
        for segment in self.segments[:-1]:
            acc += segment.weight
            spans.append((int(round(duration_ps * acc / total)), segment))
        spans.append((duration_ps, self.segments[-1]))
        return spans

    def to_segment_specs(self, duration_s: float) -> List[SegmentSpec]:
        """The scenario as standalone per-phase :class:`SegmentSpec` list."""
        total = self.total_weight
        return [
            segment.to_segment_spec(
                duration_s * segment.weight / total, level=f"{self.name}[{k}]"
            )
            for k, segment in enumerate(self.segments)
        ]

    # -- dict round-trip ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (segments become a list of dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        """Rebuild from :meth:`to_dict` output; unknown keys are errors."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TrafficError(
                f"Scenario: unknown keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["segments"] = tuple(
            ScenarioSegment(**segment) if isinstance(segment, dict) else segment
            for segment in data.get("segments", ())
        )
        scenario = cls(**kwargs)
        scenario.validate()
        return scenario
