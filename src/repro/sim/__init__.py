"""Discrete-event simulation kernel.

This subpackage provides the timing substrate every architectural model in
``repro`` is built on:

* :class:`~repro.sim.kernel.Simulator` — an event-driven kernel with an
  integer-picosecond timeline;
* :class:`~repro.sim.clock.ClockDomain` — per-component clocks whose
  frequency may change mid-simulation (the mechanism DVS relies on), with
  exact cycle/time conversion across every frequency change;
* :class:`~repro.sim.rng.RngStreams` — named, independently seeded random
  streams so that changing one stochastic component does not perturb the
  draws of another;
* :mod:`~repro.sim.stats` — counters and time-weighted statistics used by
  the power model and the DVS governors.
"""

from repro.sim.clock import ClockDomain
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import (
    Counter,
    IntervalAccumulator,
    RateWindow,
    TimeWeightedValue,
)

__all__ = [
    "ClockDomain",
    "Counter",
    "Event",
    "IntervalAccumulator",
    "RateWindow",
    "Simulator",
    "TimeWeightedValue",
]
