"""Clock domains with runtime frequency changes.

DVS is, mechanically, a sequence of frequency changes applied to clock
domains while the simulation runs.  A :class:`ClockDomain` therefore keeps
a full history of ``(time_ps, freq_hz)`` segments and can convert between
elapsed cycles and absolute time exactly, across any number of frequency
changes.  The conversion is what the trace annotations (``cycle``) and the
DVS governors (window boundaries measured in cycles) are built on.

Two kinds of clocks appear in the NPU model:

* the **reference clock** — the fixed 600 MHz clock used to stamp the
  ``cycle`` annotation in traces, mirroring NePSim's core cycle counter;
* **scalable clocks** — one per microengine under EDVS (each ME changes VF
  independently) or one shared by all MEs under TDVS.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ClockError
from repro.sim.kernel import Simulator
from repro.units import PS_PER_S, period_ps


class ClockDomain:
    """A clock whose frequency may change at runtime.

    Parameters
    ----------
    sim:
        Owning simulator; ``now_ps`` is read from it.
    freq_hz:
        Initial frequency in hertz.
    name:
        Label for diagnostics.

    Notes
    -----
    Cycle counts are real numbers: a domain that ran 1.5 periods has
    elapsed 1.5 cycles.  Integer cycle arithmetic (e.g. "schedule the next
    window boundary 20 000 cycles from now") goes through
    :meth:`delay_for_cycles`, which converts using the *current* period.
    If the frequency changes before the scheduled instant, the caller —
    not the clock — decides whether that matters (the DVS governors stall
    their domain during transitions precisely so it does not).
    """

    def __init__(self, sim: Simulator, freq_hz: float, name: str = "clk"):
        if freq_hz <= 0:
            raise ClockError(f"clock {name!r}: frequency must be positive")
        self.sim = sim
        self.name = name
        # Segments of constant frequency: (start_ps, freq_hz, cycles_at_start).
        self._segments: List[Tuple[int, float, float]] = [(sim.now_ps, float(freq_hz), 0.0)]
        self._freq_changes = 0
        # Current-segment caches, invalidated by set_frequency: the
        # frequency itself (saves the list indexing on every conversion)
        # and the exact delay_for_cycles result per cycle count.  The
        # cache stores the *rounded* value, so a hit reproduces the
        # uncached arithmetic bit for bit.
        self._freq_hz = float(freq_hz)
        self._delay_cache: Dict[float, int] = {}
        #: Called (no arguments) after every applied frequency change;
        #: microengines subscribe to re-derive their cached fixed-cycle
        #: delays (poll and context-switch) at the new rate.
        self.on_change: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Frequency control
    # ------------------------------------------------------------------
    @property
    def freq_hz(self) -> float:
        """Current frequency in hertz."""
        return self._freq_hz

    @property
    def period_ps(self) -> int:
        """Current period in picoseconds."""
        return period_ps(self.freq_hz)

    @property
    def freq_changes(self) -> int:
        """Number of frequency changes applied so far."""
        return self._freq_changes

    def set_frequency(self, freq_hz: float) -> None:
        """Change the frequency, effective at the current simulation time.

        A no-op if the frequency is unchanged.  The cycle counter is
        continuous across the change: cycles accumulated so far are kept
        and future cycles accrue at the new rate.
        """
        if freq_hz <= 0:
            raise ClockError(f"clock {self.name!r}: frequency must be positive")
        if freq_hz == self._freq_hz:
            return
        now = self.sim.now_ps
        cycles_now = self.cycles_at(now)
        start, _, _ = self._segments[-1]
        if start == now:
            # Replace a zero-length segment rather than stacking duplicates.
            self._segments[-1] = (now, float(freq_hz), cycles_now)
        else:
            self._segments.append((now, float(freq_hz), cycles_now))
        self._freq_changes += 1
        self._freq_hz = float(freq_hz)
        self._delay_cache.clear()
        for listener in self.on_change:
            listener()

    # ------------------------------------------------------------------
    # Cycle / time conversion
    # ------------------------------------------------------------------
    def cycles_at(self, time_ps: int) -> float:
        """Cycles elapsed from domain creation up to ``time_ps``.

        ``time_ps`` must not precede the domain's creation time.
        """
        segment = self._segment_for(time_ps)
        start, freq, base_cycles = segment
        return base_cycles + (time_ps - start) * freq / PS_PER_S

    @property
    def cycles_now(self) -> float:
        """Cycles elapsed up to the current simulation time."""
        return self.cycles_at(self.sim.now_ps)

    def delay_for_cycles(self, cycles: float) -> int:
        """Picoseconds spanned by ``cycles`` cycles at the *current* rate."""
        cached = self._delay_cache.get(cycles)
        if cached is not None:
            return cached
        if cycles < 0:
            raise ClockError(f"clock {self.name!r}: negative cycle count {cycles}")
        delay = round(cycles * PS_PER_S / self._freq_hz)
        self._delay_cache[cycles] = delay
        return delay

    def time_of_cycle(self, cycle: float) -> int:
        """Absolute time (ps) at which the given cycle count is reached.

        Only meaningful for cycle counts at or before the current moment
        plus the current segment (future frequency changes are unknown).
        """
        if cycle < 0:
            raise ClockError(f"clock {self.name!r}: negative cycle {cycle}")
        # Find the segment whose cycle range contains `cycle`.
        for index in range(len(self._segments) - 1, -1, -1):
            start, freq, base_cycles = self._segments[index]
            if cycle >= base_cycles:
                return round(start + (cycle - base_cycles) * PS_PER_S / freq)
        raise ClockError(f"clock {self.name!r}: cycle {cycle} precedes history")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _segment_for(self, time_ps: int) -> Tuple[int, float, float]:
        segments = self._segments
        if time_ps < segments[0][0]:
            raise ClockError(
                f"clock {self.name!r}: time {time_ps} precedes creation "
                f"({segments[0][0]})"
            )
        # Frequency changes are rare; a reverse linear scan is cheaper than
        # bisect for the common "query the newest segment" case.
        for index in range(len(segments) - 1, -1, -1):
            if segments[index][0] <= time_ps:
                return segments[index]
        raise AssertionError("unreachable: first segment starts at creation time")

    def history(self) -> List[Tuple[int, float]]:
        """Return the ``(start_ps, freq_hz)`` history (a copy)."""
        return [(start, freq) for start, freq, _ in self._segments]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClockDomain {self.name!r} {self.freq_hz/1e6:.0f}MHz>"


class FixedClock(ClockDomain):
    """A clock domain whose frequency never changes.

    Used for memory controllers, buses and the trace reference clock; the
    class exists so misuse (a governor trying to scale SDRAM) fails loudly.
    """

    def set_frequency(self, freq_hz: float) -> None:
        raise ClockError(f"clock {self.name!r} is fixed-frequency")
