"""Event-driven simulation kernel.

The kernel is a classic calendar queue built on :mod:`heapq`.  Time is an
integer number of picoseconds (see :mod:`repro.units`), which makes event
ordering exact: two events scheduled for the same picosecond are delivered
in scheduling order (a monotonically increasing sequence number breaks
ties), so simulations are bit-reproducible for a given seed.

Heap entries are plain ``(time_ps, seq, callback, args)`` tuples, so the
hot path pays C-speed tuple comparisons instead of a Python ``__lt__``
per sift.  Cancellation rides a side table: :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` return an :class:`Event` handle whose
``cancel()`` records the entry's sequence number in a set the run loop
consults only while it is non-empty.  Components that never cancel (the
model hot paths) use :meth:`Simulator.post` / :meth:`Simulator.post_at`,
which skip the handle allocation entirely.

There is no implicit global simulator; every model object receives the
:class:`Simulator` it belongs to, so several simulations can coexist in
one process (the experiment sweeps rely on this).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Set, Tuple

from repro.errors import SchedulingError, SimulationError

#: Callback signature for scheduled events.
EventCallback = Callable[..., None]

#: Heap entry: ``(time_ps, seq, callback, args)``.  Sequence numbers are
#: unique, so tuple comparison never reaches the callback field.
_Entry = Tuple[int, int, EventCallback, tuple]

#: Cancelled-set size past which the run loop compacts the heap instead
#: of skipping entries one pop at a time.
_COMPACT_THRESHOLD = 256

#: Sentinel deadline for an unbounded :meth:`Simulator.run`: comparing
#: every entry against one integer is cheaper than a per-event ``None``
#: check, and no schedulable picosecond reaches 2**63.
_NO_DEADLINE = 2**63


class Event:
    """Handle for a scheduled callback.

    Instances are created by :class:`Simulator`; user code only cancels
    them or inspects :attr:`time_ps`.
    """

    __slots__ = ("time_ps", "seq", "cancelled", "_sim")

    def __init__(self, time_ps: int, seq: int, sim: "Simulator"):
        self.time_ps = time_ps
        self.seq = seq
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        if self.cancelled:
            return
        self.cancelled = True
        self._sim._cancel_seq(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time_ps}ps seq={self.seq} {state}>"


class Simulator:
    """Discrete-event simulator with an integer-picosecond timeline.

    Parameters
    ----------
    name:
        Optional label used in ``repr`` and error messages.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1_000, fired.append, "a")
    >>> _ = sim.schedule(500, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now_ps
    1000
    """

    def __init__(self, name: str = "sim"):
        self.name = name
        self.now_ps: int = 0
        self._queue: List[_Entry] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        #: Sequence numbers of cancelled-but-still-queued entries.  The
        #: run loop checks membership only while the set is non-empty.
        self._cancelled: Set[int] = set()
        #: Called (no arguments) every time :meth:`run` returns, before
        #: control reaches the caller.  The sanctioned hook for
        #: end-of-run derivation — kernel-phase span capture
        #: (:mod:`repro.obs.spans`) snapshots the per-ME state totals
        #: here rather than instrumenting the event loop.  (Fused
        #: compute blocks no longer need it: the seq-relay charges each
        #: part at its unfused instant, so counters are always settled.)
        self.on_run_end: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ps: int, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ps`` from now.

        Non-integer delays are rounded to the nearest picosecond — the
        same convention :meth:`ClockDomain.delay_for_cycles` uses — so a
        float-computed delay cannot silently truncate toward zero.
        """
        if delay_ps < 0:
            raise SchedulingError(
                f"cannot schedule {delay_ps} ps in the past (now={self.now_ps})"
            )
        if type(delay_ps) is not int:
            delay_ps = round(delay_ps)
        time_ps = self.now_ps + delay_ps
        self._seq += 1
        seq = self._seq
        heapq.heappush(self._queue, (time_ps, seq, callback, args))
        return Event(time_ps, seq, self)

    def schedule_at(self, time_ps: int, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``.

        Non-integer times round to the nearest picosecond (see
        :meth:`schedule`).
        """
        if type(time_ps) is not int:
            time_ps = round(time_ps)
        if time_ps < self.now_ps:
            raise SchedulingError(
                f"cannot schedule at {time_ps} ps, now is {self.now_ps} ps"
            )
        self._seq += 1
        seq = self._seq
        heapq.heappush(self._queue, (time_ps, seq, callback, args))
        return Event(time_ps, seq, self)

    def post(self, delay_ps: int, callback: EventCallback, *args: Any) -> None:
        """Schedule without a cancellation handle (model hot paths).

        ``delay_ps`` must be a non-negative integer; callers own the
        invariant (the public :meth:`schedule` validates).
        """
        self._seq += 1
        heapq.heappush(
            self._queue, (self.now_ps + delay_ps, self._seq, callback, args)
        )

    def post_at(self, time_ps: int, callback: EventCallback, *args: Any) -> None:
        """Absolute-time :meth:`post`; ``time_ps`` must not be in the past."""
        self._seq += 1
        heapq.heappush(self._queue, (time_ps, self._seq, callback, args))

    def _cancel_seq(self, seq: int) -> None:
        self._cancelled.add(seq)
        if len(self._cancelled) > _COMPACT_THRESHOLD and len(self._cancelled) * 2 > len(
            self._queue
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries in one pass and re-heapify."""
        cancelled = self._cancelled
        self._queue = [e for e in self._queue if e[1] not in cancelled]
        heapq.heapify(self._queue)
        cancelled.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ps: Optional[int] = None) -> None:
        """Run until the queue drains, ``stop()`` is called, or ``until_ps``.

        When ``until_ps`` is given, events strictly after it stay queued
        and ``now_ps`` is advanced to exactly ``until_ps`` on return, so a
        later ``run`` call resumes seamlessly.
        """
        if self._running:
            raise SimulationError(f"simulator {self.name!r} is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        cancelled = self._cancelled
        pop = heapq.heappop
        deadline = _NO_DEADLINE if until_ps is None else until_ps
        # The executed-event count accumulates in a local and lands on
        # the instance in one store: nothing reads it mid-run (the
        # property is a post-run statistic), and the loop body is the
        # per-event cost floor for the whole simulator.
        executed = 0
        try:
            while queue and not self._stopped:
                entry = queue[0]
                if entry[0] > deadline:
                    break
                pop(queue)
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self.now_ps = entry[0]
                executed += 1
                entry[2](*entry[3])
            if until_ps is not None and not self._stopped and until_ps > self.now_ps:
                self.now_ps = until_ps
        finally:
            # Land the count before the run-end hooks: a hook may read
            # ``events_executed`` for its snapshot.
            self._events_executed += executed
            self._running = False
            for hook in self.on_run_end:
                hook()

    def step(self) -> bool:
        """Execute exactly one pending event; return ``False`` if none."""
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            entry = heapq.heappop(queue)
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            self.now_ps = entry[0]
            self._events_executed += 1
            entry[2](*entry[3])
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def events_executed(self) -> int:
        """Total number of callbacks delivered so far."""
        return self._events_executed

    def peek_next_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        queue = self._queue
        cancelled = self._cancelled
        while queue and cancelled and queue[0][1] in cancelled:
            cancelled.discard(queue[0][1])
            heapq.heappop(queue)
        if not queue:
            return None
        return queue[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator {self.name!r} now={self.now_ps}ps "
            f"pending={len(self._queue)}>"
        )
