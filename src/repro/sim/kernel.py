"""Event-driven simulation kernel.

The kernel is a classic calendar queue built on :mod:`heapq`.  Time is an
integer number of picoseconds (see :mod:`repro.units`), which makes event
ordering exact: two events scheduled for the same picosecond are delivered
in scheduling order (a monotonically increasing sequence number breaks
ties), so simulations are bit-reproducible for a given seed.

Components interact with the kernel exclusively through
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`, which return an
:class:`Event` handle that may be cancelled.  There is no implicit global
simulator; every model object receives the :class:`Simulator` it belongs
to, so several simulations can coexist in one process (the experiment
sweeps rely on this).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingError, SimulationError

#: Callback signature for scheduled events.
EventCallback = Callable[..., None]


class Event:
    """Handle for a scheduled callback.

    Instances are created by :class:`Simulator`; user code only cancels
    them or inspects :attr:`time_ps`.
    """

    __slots__ = ("time_ps", "seq", "callback", "args", "cancelled")

    def __init__(self, time_ps: int, seq: int, callback: EventCallback, args: tuple):
        self.time_ps = time_ps
        self.seq = seq
        self.callback: Optional[EventCallback] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self.cancelled = True
        # Drop references eagerly so cancelled events awaiting their heap
        # turn do not pin large object graphs (packets, traces) in memory.
        self.callback = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time_ps != other.time_ps:
            return self.time_ps < other.time_ps
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time_ps}ps seq={self.seq} {state}>"


class Simulator:
    """Discrete-event simulator with an integer-picosecond timeline.

    Parameters
    ----------
    name:
        Optional label used in ``repr`` and error messages.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1_000, fired.append, "a")
    >>> _ = sim.schedule(500, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now_ps
    1000
    """

    def __init__(self, name: str = "sim"):
        self.name = name
        self.now_ps: int = 0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ps: int, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ps`` from now."""
        if delay_ps < 0:
            raise SchedulingError(
                f"cannot schedule {delay_ps} ps in the past (now={self.now_ps})"
            )
        return self.schedule_at(self.now_ps + int(delay_ps), callback, *args)

    def schedule_at(self, time_ps: int, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now_ps:
            raise SchedulingError(
                f"cannot schedule at {time_ps} ps, now is {self.now_ps} ps"
            )
        self._seq += 1
        event = Event(int(time_ps), self._seq, callback, args)
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ps: Optional[int] = None) -> None:
        """Run until the queue drains, ``stop()`` is called, or ``until_ps``.

        When ``until_ps`` is given, events strictly after it stay queued
        and ``now_ps`` is advanced to exactly ``until_ps`` on return, so a
        later ``run`` call resumes seamlessly.
        """
        if self._running:
            raise SimulationError(f"simulator {self.name!r} is already running")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until_ps is not None and event.time_ps > until_ps:
                    break
                heapq.heappop(self._queue)
                self.now_ps = event.time_ps
                callback, args = event.callback, event.args
                self._events_executed += 1
                assert callback is not None  # non-cancelled events keep theirs
                callback(*args)
            if until_ps is not None and not self._stopped and until_ps > self.now_ps:
                self.now_ps = until_ps
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one pending event; return ``False`` if none."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now_ps = event.time_ps
            self._events_executed += 1
            assert event.callback is not None
            event.callback(*event.args)
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def events_executed(self) -> int:
        """Total number of callbacks delivered so far."""
        return self._events_executed

    def peek_next_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator {self.name!r} now={self.now_ps}ps "
            f"pending={len(self._queue)}>"
        )
