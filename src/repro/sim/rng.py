"""Named, independently seeded random streams.

Every stochastic model component (arrival process, packet sizes, payload
bytes, ...) draws from its own named stream derived deterministically from
a single experiment seed.  This gives two properties the experiment sweeps
rely on:

* **reproducibility** — the same seed always produces the same simulation;
* **independence under change** — adding a draw to one component does not
  shift the sequence seen by any other, so e.g. enabling DVS does not
  silently change the offered traffic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 over the root seed and name, so the mapping is stable
    across Python versions and platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """Factory and cache of named :class:`random.Random` streams.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("sizes")
    >>> a is streams.get("arrivals")
    True
    >>> a is not b
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Create a child factory whose streams are namespaced by ``name``."""
        return RngStreams(derive_seed(self.root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngStreams seed={self.root_seed} streams={sorted(self._streams)}>"
