"""Counters and time-weighted statistics.

The power estimator and the DVS governors both need *time-resolved*
accounting rather than end-of-run totals:

* :class:`Counter` — monotone event counts (packets forwarded, memory
  accesses issued) with the ability to snapshot deltas over a window;
* :class:`TimeWeightedValue` — integral of a piecewise-constant signal
  over time (e.g. "watts" integrating to joules, or a busy/idle flag
  integrating to busy time);
* :class:`IntervalAccumulator` — accumulates named durations (busy, idle,
  stalled) and reports fractions of an observation window — the quantity
  EDVS thresholds on;
* :class:`RateWindow` — volume accumulated in the current observation
  window — the quantity TDVS thresholds on.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise SimulationError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class TimeWeightedValue:
    """Integral of a piecewise-constant signal over simulation time.

    ``set(v)`` changes the signal level at the current time; ``integral``
    is the exact time integral so far.  Used for energy (signal = watts)
    and utilization (signal = 0/1).
    """

    __slots__ = ("sim", "name", "_level", "_last_ps", "_integral")

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._level = float(initial)
        self._last_ps = sim.now_ps
        self._integral = 0.0

    @property
    def level(self) -> float:
        """Current signal level."""
        return self._level

    def set(self, value: float) -> None:
        """Change the signal level, effective now."""
        self._settle()
        self._level = float(value)

    def add(self, delta: float) -> None:
        """Adjust the signal level by ``delta``, effective now."""
        self.set(self._level + delta)

    @property
    def integral(self) -> float:
        """Time integral of the signal in (level-unit × seconds)."""
        self._settle()
        return self._integral

    def integral_at(self, now_ps: int) -> float:
        """Settle to ``now_ps`` (the current sim time) and return the
        integral — one call instead of a property plus a settle, for
        readers that poll many signals per trace event."""
        if now_ps > self._last_ps:
            self._integral += self._level * (now_ps - self._last_ps) / 1e12
            self._last_ps = now_ps
        return self._integral

    def _settle(self) -> None:
        now = self.sim.now_ps
        if now > self._last_ps:
            self._integral += self._level * (now - self._last_ps) / 1e12
            self._last_ps = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeWeightedValue {self.name} level={self._level}>"


class IntervalAccumulator:
    """Accumulates named state durations (busy / idle / stalled / ...).

    A component declares its current state; the accumulator charges wall
    time to whichever state is active.  :meth:`window_fractions` reports
    the share of each state since the last :meth:`reset_window` — exactly
    the "idle time as a percentage of an observed period" that EDVS uses.
    """

    def __init__(self, sim: Simulator, initial_state: str, name: str = "states"):
        self.sim = sim
        self.name = name
        #: The currently active state name.  A plain attribute, not a
        #: property: the microengine arbiter reads it on every poll
        #: rotation, and a descriptor call there is measurable.  Treat
        #: it as read-only — state changes go through :meth:`set_state`,
        #: which charges elapsed time to the outgoing state first.
        self.state = initial_state
        self._since_ps = sim.now_ps
        self._totals: Dict[str, int] = {}
        self._window: Dict[str, int] = {}
        self._window_start_ps = sim.now_ps

    def set_state(self, state: str) -> None:
        """Switch to ``state``, charging elapsed time to the previous one."""
        if state == self.state:
            return
        self._settle()
        self.state = state

    def _settle(self) -> None:
        now = self.sim.now_ps
        elapsed = now - self._since_ps
        if elapsed > 0:
            self._totals[self.state] = self._totals.get(self.state, 0) + elapsed
            self._window[self.state] = self._window.get(self.state, 0) + elapsed
            self._since_ps = now

    def totals_ps(self) -> Dict[str, int]:
        """Total picoseconds charged to each state since creation."""
        self._settle()
        return dict(self._totals)

    def window_ps(self) -> Dict[str, int]:
        """Picoseconds charged to each state in the current window."""
        self._settle()
        return dict(self._window)

    def window_fractions(self) -> Dict[str, float]:
        """Fraction of the current window spent in each state.

        Returns an empty dict for a zero-length window.
        """
        self._settle()
        span = self.sim.now_ps - self._window_start_ps
        if span <= 0:
            return {}
        return {state: ps / span for state, ps in self._window.items()}

    def reset_window(self) -> None:
        """Start a new observation window at the current time."""
        self._settle()
        self._window = {}
        self._window_start_ps = self.sim.now_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IntervalAccumulator {self.name} state={self.state!r}>"


class RateWindow:
    """Volume accumulated in the current observation window.

    TDVS accumulates packet sizes (bits) arriving at the device ports and,
    at each window boundary, converts the volume to an average rate.
    """

    def __init__(self, sim: Simulator, name: str = "rate"):
        self.sim = sim
        self.name = name
        self._volume = 0.0
        self._window_start_ps = sim.now_ps
        self.total = 0.0

    def add(self, amount: float) -> None:
        """Add ``amount`` (e.g. bits) to the current window and the total."""
        self._volume += amount
        self.total += amount

    @property
    def window_volume(self) -> float:
        """Volume accumulated since the window started."""
        return self._volume

    def window_rate_per_s(self) -> float:
        """Average rate over the current window, in amount/second.

        Returns 0.0 for a zero-length window.
        """
        span_ps = self.sim.now_ps - self._window_start_ps
        if span_ps <= 0:
            return 0.0
        return self._volume * 1e12 / span_ps

    def reset_window(self) -> None:
        """Start a new observation window at the current time."""
        self._volume = 0.0
        self._window_start_ps = self.sim.now_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RateWindow {self.name} volume={self._volume}>"
