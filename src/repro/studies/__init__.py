"""Scenario-conditioned DVS policy studies.

The paper's core claim is that LOC assertions make DVS design-space
exploration tractable; this subpackage turns that into a product: it
composes the scenario catalog (:mod:`repro.scenarios`), the parallel
sweep engine (:mod:`repro.sweep`) and the LOC checker
(:mod:`repro.loc.checker`) into per-scenario optimal-policy maps.

* :mod:`~repro.studies.spec` — :class:`StudySpec`: scenario set x
  policy set x (threshold, window) grid, the objective, and derived
  per-scenario LOC assertion gates;
* :mod:`~repro.studies.engine` — :func:`run_study`: one parallel sweep
  over every scenario's grid, reduced deterministically;
* :mod:`~repro.studies.policymap` — :class:`PolicyMap`: per-scenario
  winners ("cheapest config whose assertions hold") plus full
  energy / drop-rate / latency Pareto fronts;
* :mod:`~repro.studies.objective` — the objective registry and the
  shared deterministic design-point reduction (the Figure 8/9 surface
  read-offs consult the same code);
* :mod:`~repro.studies.pareto` — non-dominated front extraction;
* :mod:`~repro.studies.report` — text / markdown / JSON rendering.

Quickstart::

    from repro.api import ExecutionPolicy, Session
    from repro.studies import StudySpec
    from repro.studies.report import render_text

    spec = StudySpec(scenarios=("flash_crowd",), policies=("tdvs", "edvs"))
    session = Session(execution=ExecutionPolicy(workers=4))
    result = session.study(
        spec,
        on_scenario_complete=lambda v: print(v.scenario, "done"),
    )
    print(render_text(result.policy_map))

``repro study`` on the CLI wraps exactly this (the legacy
:func:`run_study` remains as a bit-identical deprecation shim).
"""

from repro.studies.engine import StudyResult, run_study
from repro.studies.objective import (
    OBJECTIVES,
    Objective,
    get_objective,
    list_objectives,
    select_design_point,
)
from repro.studies.pareto import dominates, pareto_front
from repro.studies.policymap import (
    CandidateSummary,
    PolicyMap,
    ScenarioVerdict,
    summarize_candidate,
)
from repro.studies.report import render_json, render_markdown, render_text
from repro.studies.spec import (
    NPU_CAPACITY_MBPS,
    STUDY_THRESHOLDS_MBPS,
    STUDY_WINDOWS_CYCLES,
    StudyAssertion,
    StudySpec,
)

__all__ = [
    "CandidateSummary",
    "NPU_CAPACITY_MBPS",
    "OBJECTIVES",
    "Objective",
    "PolicyMap",
    "STUDY_THRESHOLDS_MBPS",
    "STUDY_WINDOWS_CYCLES",
    "ScenarioVerdict",
    "StudyAssertion",
    "StudyResult",
    "StudySpec",
    "dominates",
    "get_objective",
    "list_objectives",
    "pareto_front",
    "render_json",
    "render_markdown",
    "render_text",
    "run_study",
    "select_design_point",
    "summarize_candidate",
]
