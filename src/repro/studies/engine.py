"""The study runner: one sweep, one reduction, one map.

A study expands a :class:`~repro.studies.spec.StudySpec` into jobs for
every scenario, executes them through a *single* streamed sweep (so
worker processes drain the whole study, not one scenario at a time),
and reduces the outcomes into a
:class:`~repro.studies.policymap.PolicyMap`.  Results are bit-identical
for any worker count — every job carries its own seed and the
reduction is deterministic in job order — and a
:class:`~repro.sweep.store.ResultStore` makes interrupted studies
resumable cell by cell.

The implementation lives on :meth:`repro.api.Session.study`, which
additionally streams per-scenario verdicts as each scenario's grid
drains (``on_scenario_complete``); :func:`run_study` here is the legacy
entry point, kept as a thin deprecation shim with bit-identical
results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.studies.policymap import PolicyMap
from repro.studies.spec import StudySpec
from repro.sweep.engine import ProgressFn
from repro.sweep.spec import Job
from repro.sweep.store import ResultStore, SweepOutcome


@dataclass
class StudyResult:
    """Everything one finished study reports."""

    spec: StudySpec
    policy_map: PolicyMap
    #: Outcomes grouped per scenario, in spec order (for deeper digging
    #: than the map exposes).
    outcomes_by_scenario: List[Tuple[str, List[SweepOutcome]]]

    @property
    def total_jobs(self) -> int:
        """How many design points the study covered."""
        return sum(len(outcomes) for _, outcomes in self.outcomes_by_scenario)

    @property
    def cached_jobs(self) -> int:
        """How many outcomes came from the result store."""
        return sum(
            1
            for _, outcomes in self.outcomes_by_scenario
            for outcome in outcomes
            if outcome.cached
        )


def run_study(
    spec: StudySpec,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
    jobs_by_scenario: Optional[Sequence[Tuple[str, List[Job]]]] = None,
    backend=None,
) -> StudyResult:
    """Run a study and reduce it to its policy map.

    .. deprecated::
        This is a compatibility shim over
        :meth:`repro.api.Session.study`; hold a
        :class:`~repro.api.session.Session` instead — it also streams
        per-scenario verdicts as each grid drains.  Results are
        bit-identical either way.

    Parameters mirror the legacy :func:`~repro.sweep.engine.run_sweep`;
    the job list is the concatenation of every scenario's grid,
    deduplicated nothing — scenario-distinct configs never collide.
    ``jobs_by_scenario`` accepts a precomputed
    :meth:`StudySpec.jobs_by_scenario` expansion so callers that
    already expanded the grid (the CLI prints the job count up front)
    do not pay for a second expansion.  ``backend`` selects the
    execution backend (name token or instance, see
    :mod:`repro.backends`); a whole study is one streamed sweep, so a
    distributed worker fleet drains it end to end.
    """
    warnings.warn(
        "run_study() is deprecated; use repro.api.Session.study()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import EventHooks, ExecutionPolicy, Session, StorePolicy

    session = Session(
        execution=ExecutionPolicy(backend=backend, workers=workers),
        store=StorePolicy(store=store),
        hooks=EventHooks(progress=progress),
    )
    return session.study(spec, jobs_by_scenario=jobs_by_scenario)
