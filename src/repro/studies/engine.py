"""The study runner: one sweep, one reduction, one map.

:func:`run_study` expands a :class:`~repro.studies.spec.StudySpec` into
jobs for every scenario, executes them through a *single*
:func:`~repro.sweep.engine.run_sweep` call (so worker processes drain
the whole study, not one scenario at a time), and reduces the outcomes
into a :class:`~repro.studies.policymap.PolicyMap`.  Results are
bit-identical for any worker count — every job carries its own seed and
the reduction is deterministic in job order — and a
:class:`~repro.sweep.store.ResultStore` makes interrupted studies
resumable cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.studies.policymap import PolicyMap
from repro.studies.spec import StudySpec
from repro.sweep.engine import ProgressFn, run_sweep
from repro.sweep.spec import Job
from repro.sweep.store import ResultStore, SweepOutcome


@dataclass
class StudyResult:
    """Everything one finished study reports."""

    spec: StudySpec
    policy_map: PolicyMap
    #: Outcomes grouped per scenario, in spec order (for deeper digging
    #: than the map exposes).
    outcomes_by_scenario: List[Tuple[str, List[SweepOutcome]]]

    @property
    def total_jobs(self) -> int:
        """How many design points the study covered."""
        return sum(len(outcomes) for _, outcomes in self.outcomes_by_scenario)

    @property
    def cached_jobs(self) -> int:
        """How many outcomes came from the result store."""
        return sum(
            1
            for _, outcomes in self.outcomes_by_scenario
            for outcome in outcomes
            if outcome.cached
        )


def run_study(
    spec: StudySpec,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
    jobs_by_scenario: Optional[Sequence[Tuple[str, List[Job]]]] = None,
    backend=None,
) -> StudyResult:
    """Run a study and reduce it to its policy map.

    Parameters mirror :func:`~repro.sweep.engine.run_sweep`; the job
    list is the concatenation of every scenario's grid, deduplicated
    nothing — scenario-distinct configs never collide.
    ``jobs_by_scenario`` accepts a precomputed
    :meth:`StudySpec.jobs_by_scenario` expansion so callers that
    already expanded the grid (the CLI prints the job count up front)
    do not pay for a second expansion.  ``backend`` selects the
    execution backend (name token or instance, see
    :mod:`repro.backends`); a whole study is one ``run_sweep`` call, so
    a distributed worker fleet drains it end to end.
    """
    per_scenario = (
        list(jobs_by_scenario)
        if jobs_by_scenario is not None
        else spec.jobs_by_scenario()
    )
    flat_jobs = [job for _, jobs in per_scenario for job in jobs]
    flat_outcomes = run_sweep(
        flat_jobs, workers=workers, store=store, progress=progress, backend=backend
    )

    outcomes_by_scenario: List[Tuple[str, List[SweepOutcome]]] = []
    cursor = 0
    for scenario_name, jobs in per_scenario:
        chunk = flat_outcomes[cursor : cursor + len(jobs)]
        cursor += len(jobs)
        outcomes_by_scenario.append((scenario_name, list(chunk)))

    policy_map = PolicyMap.build(spec, outcomes_by_scenario)
    return StudyResult(
        spec=spec,
        policy_map=policy_map,
        outcomes_by_scenario=outcomes_by_scenario,
    )
