"""Study objectives and the deterministic design-point reduction.

An :class:`Objective` names the scalar a study optimizes (mean power,
forwarded throughput, loss fraction) and its direction.  The actual
selection goes through :func:`select_design_point`, a deterministic
argbest over ``(key, value)`` pairs that the figure experiments (the
Figure 8/9 surface read-offs) and the study engine's per-scenario winner
picks share — one reduction, one tie-break rule, everywhere.

This module is deliberately import-light (``repro.errors`` only) so the
experiment modules can consult it without dragging the simulation stack
in at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigError

K = TypeVar("K")

_DIRECTIONS = ("min", "max")


@dataclass(frozen=True)
class Objective:
    """What a study optimizes.

    Attributes
    ----------
    name:
        Registry key (the CLI's ``--objective`` values).
    description:
        One-line human label for reports.
    direction:
        ``"min"`` or ``"max"``.
    metric:
        Key into a candidate's metric dict (see
        :class:`~repro.studies.policymap.CandidateSummary.metrics`).
    """

    name: str
    description: str
    direction: str
    metric: str

    def better(self, a: float, b: float) -> bool:
        """True when ``a`` beats ``b`` under this objective."""
        return a < b if self.direction == "min" else a > b


#: The built-in objective registry.  Every objective is *subject to* the
#: study's LOC-assertion and loss gates — "min_energy" reads in full as
#: "minimum mean power among configurations whose assertions hold".
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            name="min_energy",
            description="lowest mean chip power (W)",
            direction="min",
            metric="power_w",
        ),
        Objective(
            name="max_throughput",
            description="highest forwarded throughput (Mbps)",
            direction="max",
            metric="throughput_mbps",
        ),
        Objective(
            name="min_loss",
            description="lowest packet-loss fraction",
            direction="min",
            metric="loss_fraction",
        ),
        Objective(
            name="min_latency",
            description="lowest mean span forwarding latency (us)",
            direction="min",
            metric="latency_mean_us",
        ),
    )
}


def get_objective(name: str) -> Objective:
    """Look an objective up by name."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ConfigError(
            f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
        ) from None


def list_objectives() -> List[str]:
    """All registered objective names, sorted."""
    return sorted(OBJECTIVES)


def select_design_point(
    candidates: Sequence[Tuple[K, float]],
    direction: str = "min",
) -> Tuple[K, float]:
    """Deterministic argbest over ``(key, value)`` pairs.

    Ties keep the *first* candidate in input order, so callers control
    tie-breaking by ordering their candidates (the surfaces iterate
    row-major; the study engine iterates in job order).  Raises
    :class:`ConfigError` on an empty candidate list or a bad direction.
    """
    if direction not in _DIRECTIONS:
        raise ConfigError(f"direction must be one of {_DIRECTIONS}, got {direction!r}")
    if not candidates:
        raise ConfigError("select_design_point needs at least one candidate")
    best: Optional[Tuple[K, float]] = None
    for key, value in candidates:
        if best is None:
            best = (key, value)
        elif direction == "min" and value < best[1]:
            best = (key, value)
        elif direction == "max" and value > best[1]:
            best = (key, value)
    assert best is not None
    return best
