"""Pareto-front extraction over multi-metric design candidates.

The study engine reports, per scenario, not just the single
objective-optimal configuration but the whole energy / drop-rate /
latency trade surface: the set of configurations no other configuration
beats on every axis at once.  All axes are *minimized* here; a caller
wanting a maximized metric on the front negates it first.
"""

from __future__ import annotations

from math import isnan
from typing import List, Sequence, Tuple

from repro.errors import AnalysisError


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when point ``a`` dominates ``b`` (all axes minimized).

    ``a`` dominates ``b`` when it is no worse on every axis and strictly
    better on at least one.  NaN axes are treated as worst-possible
    (they can never help a point dominate, and any finite value beats
    them), so candidates with undefined metrics sink to the back of the
    front instead of poisoning the comparison.
    """
    if len(a) != len(b):
        raise AnalysisError(
            f"dominance needs equal-length points, got {len(a)} and {len(b)}"
        )
    no_worse_everywhere = True
    strictly_better_somewhere = False
    for x, y in zip(a, b):
        x_rank = (1, 0.0) if isnan(x) else (0, x)
        y_rank = (1, 0.0) if isnan(y) else (0, y)
        if x_rank > y_rank:
            no_worse_everywhere = False
            break
        if x_rank < y_rank:
            strictly_better_somewhere = True
    return no_worse_everywhere and strictly_better_somewhere


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Quadratic scan — study candidate pools are tens of points per
    scenario, far below where a sweep-line approach would pay off.
    Duplicate points all survive (none strictly beats another), keeping
    the reduction deterministic under equal-metric ties.
    """
    front: List[int] = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate) for j, other in enumerate(points) if j != i
        ):
            front.append(i)
    return front
