"""The study result model: per-scenario winners and Pareto fronts.

A :class:`PolicyMap` is the reduction of a study's sweep outcomes into
the paper-style answer: for every scenario, which (policy, threshold,
window) configuration is optimal under the study objective *given that
its LOC assertions hold*, what the ungoverned baseline costs, and what
the full energy / drop-rate / latency trade surface looks like.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.studies.objective import Objective, get_objective, select_design_point
from repro.studies.pareto import pareto_front
from repro.studies.spec import StudyAssertion, StudySpec
from repro.sweep.store import SweepOutcome


@dataclass
class CandidateSummary:
    """One study configuration, reduced to the numbers the map needs.

    ``metrics`` holds the objective-addressable scalars (``power_w``,
    ``throughput_mbps``, ``loss_fraction``, ``latency_mean_us``);
    ``gates`` maps each gate name (the assertion names plus
    ``loss_margin``) to whether it held; ``passed`` is their
    conjunction.
    """

    scenario: str
    policy: str
    threshold_mbps: Optional[float]
    window_cycles: Optional[int]
    seed: int
    job_id: str
    label: str
    metrics: Dict[str, float]
    gates: Dict[str, bool]
    passed: bool
    #: Violating-instance share of the span-latency gate (NaN when the
    #: gate never fired), kept for reports.
    latency_violation_fraction: float = 0.0
    cached: bool = False

    @property
    def power_w(self) -> float:
        """Mean chip power (W)."""
        return self.metrics["power_w"]

    @property
    def loss_fraction(self) -> float:
        """Packet-loss fraction."""
        return self.metrics["loss_fraction"]

    def design_point(self) -> Tuple[str, Optional[float], Optional[int]]:
        """The map key: ``(policy, threshold, window)``."""
        return (self.policy, self.threshold_mbps, self.window_cycles)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form."""
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "threshold_mbps": self.threshold_mbps,
            "window_cycles": self.window_cycles,
            "seed": self.seed,
            "job_id": self.job_id,
            "label": self.label,
            "metrics": {
                key: (None if math.isnan(value) else value)
                for key, value in self.metrics.items()
            },
            "gates": dict(self.gates),
            "passed": self.passed,
            "latency_violation_fraction": (
                None
                if math.isnan(self.latency_violation_fraction)
                else self.latency_violation_fraction
            ),
            "cached": self.cached,
        }


def summarize_candidate(
    spec: StudySpec,
    scenario: str,
    assertions: Sequence[StudyAssertion],
    outcome: SweepOutcome,
    baseline_loss: float,
) -> CandidateSummary:
    """Reduce one sweep outcome to a :class:`CandidateSummary`.

    Gate evaluation: every LOC assertion must hold under its tolerance,
    and the loss fraction may exceed the ungoverned baseline's by at
    most ``spec.loss_margin``.
    """
    if len(outcome.check_results) != len(assertions):
        raise AnalysisError(
            f"outcome {outcome.label or outcome.job_id!r} carries "
            f"{len(outcome.check_results)} check results for "
            f"{len(assertions)} study assertions — was it run outside "
            "the study spec?"
        )
    config = outcome.result.config
    dvs = config.dvs
    totals = outcome.result.totals

    gates: Dict[str, bool] = {}
    latency_mean_us = math.nan
    latency_violation_fraction = math.nan
    for assertion, check in zip(assertions, outcome.check_results):
        gates[assertion.name] = assertion.holds(
            check.instances_checked, check.violations_total
        )
        if assertion.name == "span_latency":
            latency_mean_us = check.mean_lhs
            latency_violation_fraction = (
                check.violation_fraction if check.instances_checked else math.nan
            )
    loss = totals.loss_fraction
    gates["loss_margin"] = loss <= baseline_loss + spec.loss_margin

    return CandidateSummary(
        scenario=scenario,
        policy=dvs.policy,
        threshold_mbps=(
            dvs.top_threshold_mbps if dvs.policy in ("tdvs", "combined") else None
        ),
        window_cycles=dvs.window_cycles if dvs.policy != "none" else None,
        seed=config.seed,
        job_id=outcome.job_id,
        label=outcome.label,
        metrics={
            "power_w": outcome.mean_power_w,
            "throughput_mbps": outcome.throughput_mbps,
            "loss_fraction": loss,
            "latency_mean_us": latency_mean_us,
        },
        gates=gates,
        passed=all(gates.values()),
        latency_violation_fraction=latency_violation_fraction,
        cached=outcome.cached,
    )


#: The Pareto axes — energy vs. drop rate vs. latency, all minimized.
#: Throughput is deliberately not an axis: at fixed offered load it is
#: the complement of loss, so it would only duplicate the loss axis.
PARETO_AXES = ("power_w", "loss_fraction", "latency_mean_us")


@dataclass
class ScenarioVerdict:
    """The study's answer for one scenario."""

    scenario: str
    #: The ungoverned (policy ``none``) reference run.
    baseline: CandidateSummary
    #: Objective-best among gate-passing competitors, or ``None`` when
    #: no competitor passed every gate.
    winner: Optional[CandidateSummary]
    #: Objective-best ignoring the gates — reported (flagged) when there
    #: is no gated winner, so the map never has silent holes.
    fallback: Optional[CandidateSummary]
    #: Non-dominated competitors over :data:`PARETO_AXES`.
    pareto: List[CandidateSummary]
    candidates: List[CandidateSummary] = field(default_factory=list)

    @property
    def candidates_passing(self) -> int:
        """How many competitors passed every gate."""
        return sum(1 for c in self.candidates if c.passed)

    @property
    def power_saving_fraction(self) -> Optional[float]:
        """Winner's power saving relative to the baseline (0..1)."""
        if self.winner is None or self.baseline.power_w <= 0:
            return None
        return 1.0 - self.winner.power_w / self.baseline.power_w

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form."""
        return {
            "scenario": self.scenario,
            "baseline": self.baseline.to_dict(),
            "winner": self.winner.to_dict() if self.winner else None,
            "fallback": self.fallback.to_dict() if self.fallback else None,
            "pareto": [c.to_dict() for c in self.pareto],
            "candidates": [c.to_dict() for c in self.candidates],
            "candidates_passing": self.candidates_passing,
            "power_saving_fraction": self.power_saving_fraction,
        }


@dataclass
class PolicyMap:
    """Per-scenario optimal-policy map: the study's product."""

    objective: str
    entries: "Dict[str, ScenarioVerdict]"

    def __iter__(self):
        return iter(self.entries.values())

    def __len__(self) -> int:
        return len(self.entries)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (scenario order preserved)."""
        return {
            "objective": self.objective,
            "scenarios": [verdict.to_dict() for verdict in self],
        }

    @classmethod
    def build(
        cls,
        spec: StudySpec,
        outcomes_by_scenario: Sequence[Tuple[str, Sequence[SweepOutcome]]],
    ) -> "PolicyMap":
        """Reduce per-scenario sweep outcomes into the map.

        The competitor pool is the requested policy set; the ``none``
        baseline competes only when the spec asked for it explicitly.
        Ties on the objective keep the earliest candidate in job order,
        so serial and parallel studies reduce identically.  With
        multiple seeds, the first baseline run (first seed, job order)
        is the loss-margin reference for every candidate.
        """
        objective = get_objective(spec.objective)
        entries: Dict[str, ScenarioVerdict] = {}
        for scenario_name, outcomes in outcomes_by_scenario:
            scenario = _scenario(scenario_name)
            assertions = spec.assertions_for(scenario)
            baseline_outcome = _baseline_of(scenario_name, outcomes)
            baseline_loss = baseline_outcome.result.totals.loss_fraction
            summaries = [
                summarize_candidate(spec, scenario_name, assertions, o, baseline_loss)
                for o in outcomes
            ]
            baseline = next(s for s in summaries if s.policy == "none")
            pool = [
                s
                for s in summaries
                if s.policy != "none" or "none" in spec.competing_policies()
            ]
            entries[scenario_name] = _verdict(
                scenario_name, objective, baseline, pool
            )
        return cls(objective=spec.objective, entries=entries)


def _scenario(name: str):
    from repro.scenarios.catalog import get_scenario

    return get_scenario(name)


def _baseline_of(
    scenario_name: str, outcomes: Sequence[SweepOutcome]
) -> SweepOutcome:
    for outcome in outcomes:
        if outcome.result.config.dvs.policy == "none":
            return outcome
    raise AnalysisError(
        f"scenario {scenario_name!r} has no ungoverned baseline outcome; "
        "study sweeps always include policy 'none'"
    )


def _verdict(
    scenario_name: str,
    objective: Objective,
    baseline: CandidateSummary,
    pool: List[CandidateSummary],
) -> ScenarioVerdict:
    if not pool:
        raise AnalysisError(f"scenario {scenario_name!r} has no study candidates")

    def metric(candidate: CandidateSummary) -> float:
        value = candidate.metrics[objective.metric]
        if math.isnan(value):
            # NaN metrics (e.g. latency with no instances) always lose.
            return math.inf if objective.direction == "min" else -math.inf
        return value

    passing = [c for c in pool if c.passed]
    winner = fallback = None
    if passing:
        (winner, _) = select_design_point(
            [(c, metric(c)) for c in passing], objective.direction
        )
    else:
        (fallback, _) = select_design_point(
            [(c, metric(c)) for c in pool], objective.direction
        )

    points = []
    for candidate in pool:
        points.append(
            tuple(candidate.metrics[axis] for axis in PARETO_AXES)
        )
    front = [pool[i] for i in pareto_front(points)]
    return ScenarioVerdict(
        scenario=scenario_name,
        baseline=baseline,
        winner=winner,
        fallback=fallback,
        pareto=front,
        candidates=pool,
    )
