"""Rendering for policy maps: text tables, markdown reports, JSON.

The text form goes through :func:`repro.analysis.report.format_table`,
keeping study output visually consistent with every figure reproduction;
the markdown form is the CI-artifact / README-worked-example format.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.analysis.report import format_table
from repro.studies.policymap import CandidateSummary, PolicyMap, ScenarioVerdict

_MAP_HEADERS = (
    "scenario",
    "winner",
    "thr Mbps",
    "window",
    "power W",
    "base W",
    "save %",
    "loss %",
    "lat viol %",
    "pass",
)


def _chosen(verdict: ScenarioVerdict) -> Optional[CandidateSummary]:
    return verdict.winner or verdict.fallback


def _policy_cell(verdict: ScenarioVerdict) -> str:
    chosen = _chosen(verdict)
    if chosen is None:  # pragma: no cover - _verdict always selects one
        return "-"
    # An ungated fallback is flagged: no configuration passed the gates.
    return chosen.policy if verdict.winner else f"{chosen.policy} (ungated)"


def _map_rows(policy_map: PolicyMap) -> List[List[str]]:
    rows: List[List[str]] = []
    for verdict in policy_map:
        chosen = _chosen(verdict)
        assert chosen is not None
        saving = verdict.power_saving_fraction
        viol = chosen.latency_violation_fraction
        rows.append(
            [
                verdict.scenario,
                _policy_cell(verdict),
                "-" if chosen.threshold_mbps is None else f"{chosen.threshold_mbps:g}",
                "-" if chosen.window_cycles is None else str(chosen.window_cycles),
                f"{chosen.power_w:.3f}",
                f"{verdict.baseline.power_w:.3f}",
                "-" if saving is None else f"{100 * saving:.1f}",
                f"{100 * chosen.loss_fraction:.2f}",
                "-" if viol != viol else f"{100 * viol:.2f}",
                f"{verdict.candidates_passing}/{len(verdict.candidates)}",
            ]
        )
    return rows


def render_text(policy_map: PolicyMap) -> str:
    """The per-scenario optimal-policy map as an aligned text table."""
    title = (
        f"Per-scenario optimal DVS policy map "
        f"(objective: {policy_map.objective}, LOC-assertion gated)"
    )
    return format_table(_MAP_HEADERS, _map_rows(policy_map), title=title)


def render_pareto_text(verdict: ScenarioVerdict) -> str:
    """One scenario's non-dominated trade front as a text table."""
    rows = []
    for candidate in verdict.pareto:
        rows.append(
            [
                candidate.policy,
                "-" if candidate.threshold_mbps is None else f"{candidate.threshold_mbps:g}",
                "-" if candidate.window_cycles is None else str(candidate.window_cycles),
                f"{candidate.power_w:.3f}",
                f"{100 * candidate.loss_fraction:.2f}",
                f"{candidate.metrics['latency_mean_us']:.1f}",
                "yes" if candidate.passed else "no",
            ]
        )
    return format_table(
        ("policy", "thr Mbps", "window", "power W", "loss %", "lat us", "gated"),
        rows,
        title=f"{verdict.scenario}: Pareto front (power / loss / latency)",
    )


def render_markdown(policy_map: PolicyMap, pareto: bool = True) -> str:
    """The study report as GitHub-flavoured markdown."""
    lines = [
        "# Scenario-conditioned DVS policy study",
        "",
        f"Objective: **{policy_map.objective}** — winners are the best",
        "configuration *whose LOC assertions hold* (span-latency bound,",
        "forward-counter sanity) and whose loss stays within the margin of",
        "the ungoverned baseline.",
        "",
        "| " + " | ".join(_MAP_HEADERS) + " |",
        "|" + "|".join("---" for _ in _MAP_HEADERS) + "|",
    ]
    for row in _map_rows(policy_map):
        lines.append("| " + " | ".join(row) + " |")
    if pareto:
        for verdict in policy_map:
            lines.append("")
            lines.append(f"## {verdict.scenario}")
            lines.append("")
            lines.append("```")
            lines.append(render_pareto_text(verdict))
            lines.append("```")
    return "\n".join(lines) + "\n"


def render_json(policy_map: PolicyMap) -> str:
    """The study report as pretty-printed JSON."""
    return json.dumps(policy_map.to_dict(), indent=2, sort_keys=True) + "\n"
