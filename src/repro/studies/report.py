"""Rendering for policy maps: text tables, markdown, JSON, HTML.

The text form goes through :func:`repro.analysis.report.format_table`,
keeping study output visually consistent with every figure reproduction;
the markdown form is the CI-artifact / README-worked-example format; the
HTML form (:func:`render_html`) is the self-contained nightly study
report — winner tables, Pareto fronts, latency histograms from the
metrics snapshot and a span-timeline summary, all inline, no external
assets.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.studies.policymap import CandidateSummary, PolicyMap, ScenarioVerdict

_MAP_HEADERS = (
    "scenario",
    "winner",
    "thr Mbps",
    "window",
    "power W",
    "base W",
    "save %",
    "loss %",
    "lat viol %",
    "pass",
)


def _chosen(verdict: ScenarioVerdict) -> Optional[CandidateSummary]:
    return verdict.winner or verdict.fallback


def _policy_cell(verdict: ScenarioVerdict) -> str:
    chosen = _chosen(verdict)
    if chosen is None:  # pragma: no cover - _verdict always selects one
        return "-"
    # An ungated fallback is flagged: no configuration passed the gates.
    return chosen.policy if verdict.winner else f"{chosen.policy} (ungated)"


def _map_rows(policy_map: PolicyMap) -> List[List[str]]:
    rows: List[List[str]] = []
    for verdict in policy_map:
        chosen = _chosen(verdict)
        assert chosen is not None
        saving = verdict.power_saving_fraction
        viol = chosen.latency_violation_fraction
        rows.append(
            [
                verdict.scenario,
                _policy_cell(verdict),
                "-" if chosen.threshold_mbps is None else f"{chosen.threshold_mbps:g}",
                "-" if chosen.window_cycles is None else str(chosen.window_cycles),
                f"{chosen.power_w:.3f}",
                f"{verdict.baseline.power_w:.3f}",
                "-" if saving is None else f"{100 * saving:.1f}",
                f"{100 * chosen.loss_fraction:.2f}",
                "-" if viol != viol else f"{100 * viol:.2f}",
                f"{verdict.candidates_passing}/{len(verdict.candidates)}",
            ]
        )
    return rows


def render_text(policy_map: PolicyMap) -> str:
    """The per-scenario optimal-policy map as an aligned text table."""
    title = (
        f"Per-scenario optimal DVS policy map "
        f"(objective: {policy_map.objective}, LOC-assertion gated)"
    )
    return format_table(_MAP_HEADERS, _map_rows(policy_map), title=title)


def render_pareto_text(verdict: ScenarioVerdict) -> str:
    """One scenario's non-dominated trade front as a text table."""
    rows = []
    for candidate in verdict.pareto:
        rows.append(
            [
                candidate.policy,
                "-" if candidate.threshold_mbps is None else f"{candidate.threshold_mbps:g}",
                "-" if candidate.window_cycles is None else str(candidate.window_cycles),
                f"{candidate.power_w:.3f}",
                f"{100 * candidate.loss_fraction:.2f}",
                f"{candidate.metrics['latency_mean_us']:.1f}",
                "yes" if candidate.passed else "no",
            ]
        )
    return format_table(
        ("policy", "thr Mbps", "window", "power W", "loss %", "lat us", "gated"),
        rows,
        title=f"{verdict.scenario}: Pareto front (power / loss / latency)",
    )


def render_markdown(policy_map: PolicyMap, pareto: bool = True) -> str:
    """The study report as GitHub-flavoured markdown."""
    lines = [
        "# Scenario-conditioned DVS policy study",
        "",
        f"Objective: **{policy_map.objective}** — winners are the best",
        "configuration *whose LOC assertions hold* (span-latency bound,",
        "forward-counter sanity) and whose loss stays within the margin of",
        "the ungoverned baseline.",
        "",
        "| " + " | ".join(_MAP_HEADERS) + " |",
        "|" + "|".join("---" for _ in _MAP_HEADERS) + "|",
    ]
    for row in _map_rows(policy_map):
        lines.append("| " + " | ".join(row) + " |")
    if pareto:
        for verdict in policy_map:
            lines.append("")
            lines.append(f"## {verdict.scenario}")
            lines.append("")
            lines.append("```")
            lines.append(render_pareto_text(verdict))
            lines.append("```")
    return "\n".join(lines) + "\n"


def render_json(policy_map: PolicyMap) -> str:
    """The study report as pretty-printed JSON."""
    return json.dumps(policy_map.to_dict(), indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# HTML study report
# ---------------------------------------------------------------------------
_HTML_STYLE = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 64em; color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #3a5a8c; }
h2 { font-size: 1.2em; margin-top: 1.6em; color: #3a5a8c; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #c8d0dc; padding: 0.25em 0.6em;
         text-align: right; }
th { background: #eef2f7; }
td:first-child, th:first-child { text-align: left; }
tr.ungated td { color: #a0530a; }
.bar { background: #4a7ab5; height: 0.85em; display: inline-block;
       vertical-align: middle; min-width: 1px; }
.bucket { color: #555; font-family: monospace; }
pre { background: #f4f6f9; padding: 0.8em; overflow-x: auto;
      font-size: 12px; }
.meta { color: #667; font-size: 0.9em; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def _num(value: Any, fmt: str = "{:.3f}", dash: str = "&ndash;") -> str:
    if value is None or not isinstance(value, (int, float)) or value != value:
        return dash
    return fmt.format(value)


def _candidate_cells(candidate: Dict[str, Any]) -> List[str]:
    metrics = candidate.get("metrics", {})
    return [
        _esc(candidate.get("policy", "?")),
        _num(candidate.get("threshold_mbps"), "{:g}"),
        _num(candidate.get("window_cycles"), "{:.0f}"),
        _num(metrics.get("power_w")),
        _num(metrics.get("loss_fraction"), "{:.2%}"),
        _num(metrics.get("latency_mean_us"), "{:.1f}"),
        "yes" if candidate.get("passed") else "no",
    ]


def _winner_rows(study: Dict[str, Any]) -> List[str]:
    rows = []
    for verdict in study.get("scenarios", []):
        chosen = verdict.get("winner") or verdict.get("fallback") or {}
        ungated = verdict.get("winner") is None
        metrics = chosen.get("metrics", {})
        baseline = (verdict.get("baseline") or {}).get("metrics", {})
        policy = _esc(chosen.get("policy", "?")) + (
            " <em>(ungated)</em>" if ungated else ""
        )
        cells = [
            _esc(verdict.get("scenario", "?")),
            policy,
            _num(chosen.get("threshold_mbps"), "{:g}"),
            _num(chosen.get("window_cycles"), "{:.0f}"),
            _num(metrics.get("power_w")),
            _num(baseline.get("power_w")),
            _num(verdict.get("power_saving_fraction"), "{:.1%}"),
            _num(metrics.get("loss_fraction"), "{:.2%}"),
            _num(chosen.get("latency_violation_fraction"), "{:.2%}"),
            f"{verdict.get('candidates_passing', 0)}"
            f"/{len(verdict.get('candidates', []))}",
        ]
        css = ' class="ungated"' if ungated else ""
        rows.append(
            f"<tr{css}>" + "".join(f"<td>{c}</td>" for c in cells) + "</tr>"
        )
    return rows


def _histogram_section(records: Sequence[Dict[str, Any]]) -> List[str]:
    out: List[str] = []
    histograms = [
        r for r in records
        if r.get("type") == "histogram"
        and str(r.get("name", "")).startswith("latency.forward.")
    ]
    if not histograms:
        return out
    out.append("<h2>Forward-latency distributions</h2>")
    out.append(
        '<p class="meta">Mean forward-span latency per completed outcome '
        "(&micro;s), one observation per job carrying a span-latency "
        "check; fixed-edge histograms from the session metrics "
        "snapshot.</p>"
    )
    for record in histograms:
        scenario = str(record["name"])[len("latency.forward."):]
        edges = record.get("edges", [])
        counts = record.get("counts", [])
        total = record.get("count", 0) or 1
        peak = max(counts) if counts else 1
        out.append(f"<h3>{_esc(scenario)}</h3>")
        out.append("<table>")
        out.append(
            "<tr><th>bucket (&micro;s)</th><th>count</th><th></th></tr>"
        )
        for i, count in enumerate(counts):
            if i == 0:
                label = f"&le; {edges[0]:g}" if edges else "all"
            elif i == len(edges):
                label = f"&gt; {edges[-1]:g}"
            else:
                label = f"{edges[i - 1]:g} &ndash; {edges[i]:g}"
            width = 100.0 * count / peak if peak else 0.0
            bar = (
                f'<span class="bar" style="width:{width:.1f}%"></span>'
                if count else ""
            )
            out.append(
                f'<tr><td class="bucket">{label}</td><td>{count}</td>'
                f'<td style="width:20em;text-align:left">{bar}</td></tr>'
            )
        mean = (record.get("sum", 0.0) or 0.0) / total
        out.append(
            f'<tr><td>mean</td><td colspan="2" style="text-align:left">'
            f"{mean:.1f} &micro;s over {record.get('count', 0)} "
            f"outcome(s)</td></tr>"
        )
        out.append("</table>")
    return out


def render_html(
    study: Union[PolicyMap, Dict[str, Any]],
    metrics_records: Optional[Sequence[Dict[str, Any]]] = None,
    span_records: Optional[Sequence[Dict[str, Any]]] = None,
    title: str = "Scenario-conditioned DVS policy study",
) -> str:
    """The study as one self-contained HTML page.

    Works from a live :class:`PolicyMap` or its ``to_dict()`` form (a
    loaded ``study.json``), so the nightly report renders from the same
    byte-gated artifact the JSON diff checks.  ``metrics_records`` (a
    metrics snapshot's record list) adds the forward-latency histogram
    charts; ``span_records`` (a span log's record list) adds the
    embedded timeline summary.  Both sections are simply omitted when
    their input is absent — the page never requires them.
    """
    from repro.obs.spans import summarize_spans

    if isinstance(study, PolicyMap):
        study = study.to_dict()
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">Objective: <strong>'
        f'{_esc(study.get("objective", "?"))}</strong> &mdash; winners are '
        "the best configuration whose LOC assertions hold and whose loss "
        "stays within the margin of the ungoverned baseline.</p>",
        "<h2>Per-scenario winners</h2>",
        "<table>",
        "<tr>" + "".join(f"<th>{_esc(h)}</th>" for h in _MAP_HEADERS) + "</tr>",
    ]
    parts.extend(_winner_rows(study))
    parts.append("</table>")

    parts.append("<h2>Pareto fronts (power / loss / latency)</h2>")
    for verdict in study.get("scenarios", []):
        parts.append(f"<h3>{_esc(verdict.get('scenario', '?'))}</h3>")
        parts.append("<table>")
        headers = (
            "policy", "thr Mbps", "window", "power W", "loss", "lat us",
            "gated",
        )
        parts.append(
            "<tr>" + "".join(f"<th>{_esc(h)}</th>" for h in headers) + "</tr>"
        )
        for candidate in verdict.get("pareto", []):
            parts.append(
                "<tr>"
                + "".join(f"<td>{c}</td>" for c in _candidate_cells(candidate))
                + "</tr>"
            )
        parts.append("</table>")

    if metrics_records:
        parts.extend(_histogram_section(metrics_records))

    if span_records:
        parts.append("<h2>Run timeline summary</h2>")
        parts.append(
            '<p class="meta">Aggregated span log (wall-clock orchestration '
            "lanes + deterministic sim-time run phases); export the full "
            "timeline with <code>repro trace export --format "
            "perfetto</code>.</p>"
        )
        parts.append(f"<pre>{_esc(summarize_spans(list(span_records)))}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
