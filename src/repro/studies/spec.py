"""Study specifications: scenario-conditioned DVS design-space studies.

A :class:`StudySpec` names everything one policy study needs — the
scenario set, the candidate policy set with its (threshold, window)
grid, seeds, run shape, the objective, and the LOC assertion gates —
and expands into :class:`~repro.sweep.spec.Job` lists per scenario
through the same :class:`~repro.sweep.spec.SweepSpec` machinery every
figure uses.  The engine (:mod:`repro.studies.engine`) runs the jobs;
the policy map (:mod:`repro.studies.policymap`) reduces the outcomes.

Assertion gates
---------------
Each scenario gets a per-scenario LOC latency assertion derived from its
own traffic shape::

    time(forward[i+span]) - time(forward[i]) <= slack * span * bits / rate

i.e. forwarding ``span`` packets may take at most ``latency_slack``
times as long as the scenario's *quietest* phase offers them (capped at
chip capacity).  A governor that underclocks so hard the chip falls
behind even that pace violates the bound; MMPP burst noise is absorbed
by tolerating a bounded fraction of violating instances
(``max_violation_fraction`` — a 95th-percentile-style bound by default).
A zero-tolerance forwarding-counter sanity check rides along, in the
style of the paper's original trace checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigError
from repro.scenarios.catalog import get_scenario, list_scenarios
from repro.scenarios.spec import Scenario
from repro.studies.objective import get_objective
from repro.sweep.spec import Job, SweepSpec

#: The paper's TDVS sweep axes (Section 4.1), the default study grid.
STUDY_THRESHOLDS_MBPS: Tuple[float, ...] = (800.0, 1000.0, 1200.0, 1400.0)
STUDY_WINDOWS_CYCLES: Tuple[int, ...] = (20_000, 40_000, 60_000, 80_000)

#: Default seed (the experiments' reproducibility anchor).
STUDY_SEED = 7

#: Sustainable forwarding capacity the latency bounds are capped at —
#: the experiments' near-saturation "high" traffic sample.
NPU_CAPACITY_MBPS = 1550.0

#: DVS policies a study may explore (``none`` is always run as the
#: ungoverned baseline, whether or not it competes).
STUDY_POLICIES = ("none", "tdvs", "edvs", "combined")


@dataclass(frozen=True)
class StudyAssertion:
    """One LOC gate: a checker formula plus its tolerated failure share.

    ``max_violation_fraction`` is the share of formula instances allowed
    to violate before the gate fails (0.0 = the paper's strict checker
    semantics; 0.05 = a 95th-percentile-style bound).  A gate with zero
    checked instances fails: a configuration that never forwarded
    ``span`` packets proved nothing.
    """

    name: str
    formula: str
    max_violation_fraction: float = 0.0

    def holds(self, instances_checked: int, violations_total: int) -> bool:
        """Apply the tolerance to a checker's raw counts."""
        if instances_checked == 0:
            return False
        return violations_total / instances_checked <= self.max_violation_fraction


@dataclass
class StudySpec:
    """The axes and gates of one scenario-conditioned policy study.

    Attributes
    ----------
    scenarios:
        Catalog scenario names; empty (the default) means the whole
        catalog.
    policies:
        Candidate policies competing for the per-scenario optimum.
        ``none`` is always simulated as the baseline; include it here to
        also let it *win* (e.g. when asking whether DVS helps at all).
    thresholds_mbps / windows_cycles / idle_threshold:
        The per-policy DVS grid, with the same semantics as
        :class:`~repro.sweep.spec.SweepSpec`.
    benchmark / seeds / duration_cycles / span:
        Run shape shared by every job.
    objective:
        Name from :data:`~repro.studies.objective.OBJECTIVES`; winners
        optimize it *subject to* the assertion and loss gates.
    latency_slack:
        Multiplier on the quietest-phase pace in the derived latency
        bound (see module docstring).
    max_violation_fraction:
        Tolerated violating-instance share for the latency gate.
    loss_margin:
        A candidate's loss fraction may exceed the scenario's ungoverned
        baseline loss by at most this much (absolute).  DVS must not
        make loss materially worse than the chip already suffers.
    mem_gates:
        Also gate candidates on the ``mem_sram``/``mem_sdram``
        queue-pressure channels: every forwarded packet costs at least
        one access to each, so ``span`` consecutive requests on either
        controller must arrive within the same derived span-latency
        bound — a governor that starves the memory pipeline fails the
        gate even when packet forwarding limps along.  Off by default:
        the extra checks subscribe previously unobserved named-only
        channels and become part of every job's identity.
    """

    scenarios: Tuple[str, ...] = ()
    policies: Tuple[str, ...] = ("tdvs", "edvs")
    thresholds_mbps: Tuple[float, ...] = STUDY_THRESHOLDS_MBPS
    windows_cycles: Tuple[int, ...] = STUDY_WINDOWS_CYCLES
    idle_threshold: float = 0.10
    benchmark: str = "ipfwdr"
    seeds: Tuple[int, ...] = (STUDY_SEED,)
    duration_cycles: int = 1_600_000
    span: int = 50
    objective: str = "min_energy"
    latency_slack: float = 2.0
    max_violation_fraction: float = 0.05
    loss_margin: float = 0.02
    mem_gates: bool = False
    base: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent settings."""
        get_objective(self.objective)
        if not self.policies:
            raise ConfigError("StudySpec.policies is empty")
        for policy in self.policies:
            if policy not in STUDY_POLICIES:
                raise ConfigError(
                    f"unknown study policy {policy!r}; known: {STUDY_POLICIES}"
                )
        if not self.seeds:
            raise ConfigError("StudySpec.seeds is empty")
        if self.span <= 0:
            raise ConfigError(f"span must be positive, got {self.span}")
        if self.duration_cycles <= 0:
            raise ConfigError(
                f"duration_cycles must be positive, got {self.duration_cycles}"
            )
        if self.latency_slack < 1.0:
            raise ConfigError(
                f"latency_slack must be >= 1, got {self.latency_slack:g}"
            )
        if not 0.0 <= self.max_violation_fraction < 1.0:
            raise ConfigError("max_violation_fraction must be in [0, 1)")
        if self.loss_margin < 0.0:
            raise ConfigError(f"loss_margin must be >= 0, got {self.loss_margin:g}")
        self.resolved_scenarios()

    # -- scenario resolution --------------------------------------------
    def resolved_scenarios(self) -> Tuple[str, ...]:
        """The concrete scenario list (the full catalog when empty).

        De-duplicated in request order — a repeated name would expand
        its whole per-scenario grid twice for one map row.
        """
        if not self.scenarios:
            return tuple(list_scenarios())
        names: List[str] = []
        for name in self.scenarios:
            get_scenario(name)  # raises TrafficError on unknown names
            if name not in names:
                names.append(name)
        return tuple(names)

    # -- assertion derivation -------------------------------------------
    def latency_bound_us(self, scenario: Scenario) -> float:
        """The derived span-latency bound for one scenario, in us.

        ``slack * span * mean_packet_bits / quietest_rate``: forwarding
        ``span`` packets may take at most ``latency_slack`` times as
        long as the scenario's quietest phase (capped at chip capacity)
        takes to offer them.
        """
        rate_mbps = min(scenario.min_load_mbps, NPU_CAPACITY_MBPS)
        pace_us = self.span * scenario.mean_packet_bytes * 8.0 / rate_mbps
        return self.latency_slack * pace_us

    def assertions_for(self, scenario: Scenario) -> List[StudyAssertion]:
        """The LOC gates applied to every job of one scenario."""
        bound = self.latency_bound_us(scenario)
        assertions = [
            StudyAssertion(
                name="span_latency",
                formula=(
                    f"time(forward[i+{self.span}]) - time(forward[i]) "
                    f"<= {bound:.6g}"
                ),
                max_violation_fraction=self.max_violation_fraction,
            ),
            StudyAssertion(
                name="forward_count",
                formula=(
                    "total_pkt(forward[i+1]) - total_pkt(forward[i]) == 1"
                ),
                max_violation_fraction=0.0,
            ),
        ]
        if self.mem_gates:
            # Queue-pressure gates over the named-only memory channels.
            # Every forwarded packet costs >= 1 access to each
            # controller, so ``span`` consecutive requests are offered
            # at least as fast as ``span`` packets — the span-latency
            # bound applies a fortiori, with the same slack/tolerance.
            for channel in ("mem_sram", "mem_sdram"):
                assertions.append(
                    StudyAssertion(
                        name=f"{channel}_pace",
                        formula=(
                            f"time({channel}[i+{self.span}]) - "
                            f"time({channel}[i]) <= {bound:.6g}"
                        ),
                        max_violation_fraction=self.max_violation_fraction,
                    )
                )
        return assertions

    # -- job expansion ---------------------------------------------------
    def competing_policies(self) -> Tuple[str, ...]:
        """The requested policy set, de-duplicated, in request order."""
        seen: List[str] = []
        for policy in self.policies:
            if policy not in seen:
                seen.append(policy)
        return tuple(seen)

    def sweep_spec_for(self, scenario_name: str) -> SweepSpec:
        """The one-scenario :class:`SweepSpec` behind this study.

        The ungoverned baseline (policy ``none``) is always included —
        the gates and the savings columns are defined relative to it.
        """
        scenario = get_scenario(scenario_name)
        policies = self.competing_policies()
        if "none" not in policies:
            policies = ("none",) + policies
        return SweepSpec(
            benchmarks=(self.benchmark,),
            policies=policies,
            thresholds_mbps=self.thresholds_mbps,
            windows_cycles=self.windows_cycles,
            idle_threshold=self.idle_threshold,
            traffic=(f"scenario:{scenario_name}",),
            seeds=self.seeds,
            duration_cycles=self.duration_cycles,
            span=self.span,
            checks=tuple(a.formula for a in self.assertions_for(scenario)),
            base=dict(self.base),
        )

    def jobs_by_scenario(self) -> "List[Tuple[str, List[Job]]]":
        """``(scenario_name, jobs)`` pairs for every resolved scenario."""
        self.validate()
        return [
            (name, self.sweep_spec_for(name).jobs())
            for name in self.resolved_scenarios()
        ]

    def job_count(self) -> int:
        """Total jobs the study will run (cache hits included)."""
        return sum(len(jobs) for _, jobs in self.jobs_by_scenario())
