"""Parallel design-space sweep orchestration.

* :mod:`~repro.sweep.spec` — :class:`SweepSpec` grids and picklable
  :class:`Job` units keyed by config hash;
* :mod:`~repro.sweep.engine` — :func:`run_sweep`: execution over the
  pluggable backends of :mod:`repro.backends` (in-process serial, a
  local process pool, or a multi-machine coordinator/worker queue)
  with deterministic, order-independent results;
* :mod:`~repro.sweep.store` — :class:`ResultStore`, the JSONL result
  log that doubles as the resume/skip cache.

Quickstart::

    from repro.sweep import SweepSpec, ResultStore, run_sweep

    spec = SweepSpec(
        policies=("tdvs",),
        thresholds_mbps=(800.0, 1000.0, 1200.0, 1400.0),
        windows_cycles=(20_000, 40_000, 60_000, 80_000),
        traffic=("level:high", "scenario:flash_crowd"),
        duration_cycles=400_000,
    )
    outcomes = run_sweep(spec, workers=4, store=ResultStore("sweep.jsonl"))
"""

from repro.sweep.engine import (
    WORKERS_ENV_VAR,
    default_workers,
    progress_printer,
    run_job,
    run_sweep,
    summarize,
)
from repro.sweep.spec import Job, SweepSpec, config_hash, parse_traffic_token
from repro.sweep.store import ResultStore, SweepOutcome

__all__ = [
    "Job",
    "ResultStore",
    "SweepOutcome",
    "SweepSpec",
    "WORKERS_ENV_VAR",
    "config_hash",
    "default_workers",
    "parse_traffic_token",
    "progress_printer",
    "run_job",
    "run_sweep",
    "summarize",
]
