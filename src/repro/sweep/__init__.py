"""Parallel design-space sweep orchestration.

* :mod:`~repro.sweep.spec` — :class:`SweepSpec` grids and picklable
  :class:`Job` units keyed by config hash;
* :mod:`~repro.sweep.engine` — :func:`run_job`, the shared in-process
  execution path, plus the legacy :func:`run_sweep` shim (execution
  now lives on :class:`repro.api.Session`, over the pluggable backends
  of :mod:`repro.backends`);
* :mod:`~repro.sweep.store` — :class:`ResultStore`, the JSONL result
  log that doubles as the resume/skip cache.

Quickstart::

    from repro.api import ExecutionPolicy, Session, StorePolicy
    from repro.sweep import SweepSpec

    spec = SweepSpec(
        policies=("tdvs",),
        thresholds_mbps=(800.0, 1000.0, 1200.0, 1400.0),
        windows_cycles=(20_000, 40_000, 60_000, 80_000),
        traffic=("level:high", "scenario:flash_crowd"),
        duration_cycles=400_000,
    )
    session = Session(execution=ExecutionPolicy(workers=4),
                      store=StorePolicy(path="sweep.jsonl"))
    outcomes = session.sweep(spec)           # job order
    for outcome in session.stream(spec):     # completion order
        ...
"""

from repro.sweep.engine import (
    WORKERS_ENV_VAR,
    default_workers,
    progress_printer,
    run_job,
    run_sweep,
    summarize,
)
from repro.sweep.spec import Job, SweepSpec, config_hash, parse_traffic_token
from repro.sweep.store import ResultStore, SweepOutcome

__all__ = [
    "Job",
    "ResultStore",
    "SweepOutcome",
    "SweepSpec",
    "WORKERS_ENV_VAR",
    "config_hash",
    "default_workers",
    "parse_traffic_token",
    "progress_printer",
    "run_job",
    "run_sweep",
    "summarize",
]
