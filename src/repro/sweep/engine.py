"""The parallel sweep runner.

:func:`run_sweep` takes a list of :class:`~repro.sweep.spec.Job` objects
(or a :class:`~repro.sweep.spec.SweepSpec`) and executes them — serially
for ``workers=1``, or fanned out over a ``ProcessPoolExecutor``
otherwise.  Every job is self-contained (config dict + seed), so results
are bit-identical regardless of worker count or completion order; the
returned outcomes always follow the submitted job order.

A :class:`~repro.sweep.store.ResultStore` makes sweeps resumable:
completed job ids are skipped and their stored outcomes returned
instead, so re-running a half-finished grid only pays for the missing
cells.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.builtin import (
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.checker import build_checker
from repro.runner import run_simulation
from repro.sweep.spec import Job, SweepSpec
from repro.sweep.store import ResultStore, SweepOutcome

#: Environment override for the default worker count (see
#: :func:`default_workers`); experiments consult it so ``repro run``
#: figures parallelize without new plumbing through every profile.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Progress callback: (completed_count, total_count, outcome).
ProgressFn = Callable[[int, int, SweepOutcome], None]


def default_workers() -> int:
    """Worker count from ``REPRO_SWEEP_WORKERS`` (default: serial)."""
    value = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        workers = int(value)
    except ValueError:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR} must be an integer, got {value!r}"
        ) from None
    return max(1, workers)


def run_job(job: Job) -> SweepOutcome:
    """Execute one job in this process.

    This is the single execution path shared by the serial loop, the
    process-pool workers and :func:`repro.experiments.common.instrumented_run`.
    Determinism comes from the job itself: the config carries the seed,
    and every RNG stream derives from it.
    """
    config = job.run_config()
    sinks = []
    power_analyzer = throughput_analyzer = None
    if job.span is not None:
        power_analyzer = DistributionAnalyzer(
            power_distribution_formula(span=job.span)
        )
        throughput_analyzer = DistributionAnalyzer(
            throughput_distribution_formula(span=job.span)
        )
        sinks = [power_analyzer, throughput_analyzer]
    checkers = [build_checker(check) for check in job.checks]
    sinks = sinks + checkers
    result = run_simulation(config, sinks=sinks)
    return SweepOutcome(
        job_id=job.job_id,
        label=job.label,
        result=result,
        power_dist=power_analyzer.finish() if power_analyzer else None,
        throughput_dist=throughput_analyzer.finish() if throughput_analyzer else None,
        check_results=[checker.finish() for checker in checkers],
    )


def run_sweep(
    jobs: Union[SweepSpec, Sequence[Job]],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
) -> List[SweepOutcome]:
    """Run a sweep and return outcomes in job order.

    Parameters
    ----------
    jobs:
        A job list, or a :class:`SweepSpec` to expand.
    workers:
        Process count; ``None`` uses :func:`default_workers`, ``1`` runs
        serially in-process (no executor, easiest to debug/profile).
    store:
        Optional :class:`ResultStore`; jobs whose ids are already
        complete in the store are skipped (their cached outcomes are
        returned with ``cached=True``) and fresh outcomes are appended.
    progress:
        Called after each job completes (cached hits included).
    """
    if isinstance(jobs, SweepSpec):
        jobs = jobs.jobs()
    jobs = list(jobs)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    total = len(jobs)
    done = 0
    outcomes: List[Optional[SweepOutcome]] = [None] * total
    pending: List[int] = []
    for index, job in enumerate(jobs):
        cached = store.get(job.job_id) if store is not None else None
        if cached is not None:
            outcomes[index] = cached
            done += 1
            if progress is not None:
                progress(done, total, cached)
        else:
            pending.append(index)

    def finish(index: int, outcome: SweepOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        if store is not None:
            store.add(outcome)
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    if workers == 1 or len(pending) <= 1:
        for index in pending:
            finish(index, run_job(jobs[index]))
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(run_job, jobs[index]): index for index in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    finish(futures[future], future.result())
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]


def summarize(outcomes: Sequence[SweepOutcome]) -> str:
    """A text table of sweep outcomes (the CLI's summary report)."""
    header = (
        f"{'job':32s} {'power(W)':>9s} {'tput(Mbps)':>10s} "
        f"{'loss%':>6s} {'trans':>6s} {'cached':>6s}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        label = outcome.label or outcome.job_id
        lines.append(
            f"{label[:32]:32s} {outcome.mean_power_w:9.3f} "
            f"{outcome.throughput_mbps:10.1f} "
            f"{outcome.result.totals.loss_fraction * 100:6.2f} "
            f"{outcome.result.governor_transitions:6d} "
            f"{'yes' if outcome.cached else 'no':>6s}"
        )
    return "\n".join(lines)


def progress_printer(stream=None) -> ProgressFn:
    """A progress callback that writes one line per completed job."""
    out = stream or sys.stderr
    start = time.monotonic()

    def report(done: int, total: int, outcome: SweepOutcome) -> None:
        elapsed = time.monotonic() - start
        tag = " (cached)" if outcome.cached else ""
        out.write(
            f"[{done:3d}/{total}] {elapsed:7.1f}s "
            f"{outcome.label or outcome.job_id}{tag}\n"
        )
        out.flush()

    return report
