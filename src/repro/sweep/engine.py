"""The sweep runner over pluggable execution backends.

:func:`run_sweep` takes a list of :class:`~repro.sweep.spec.Job` objects
(or a :class:`~repro.sweep.spec.SweepSpec`) and executes the pending
ones through an :class:`~repro.backends.base.ExecutionBackend` —
in-process (``serial``), a local process pool (``process``), or a
multi-machine coordinator/worker queue (``distributed``, see
:mod:`repro.backends`).  Every job is self-contained (config dict +
seed), so results are bit-identical regardless of backend, worker count
or completion order; the returned outcomes always follow the submitted
job order, and duplicate job ids in the list execute once with the
outcome fanned out to every index.

A :class:`~repro.sweep.store.ResultStore` makes sweeps resumable:
completed job ids are skipped and their stored outcomes returned
instead, and fresh outcomes are appended as they stream in — so an
interrupted grid (or a crashed distributed coordinator) only pays for
the missing cells on the next run.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import BackendError, ExperimentError
from repro.loc.analyzer import DistributionAnalyzer
from repro.loc.builtin import (
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.checker import build_checker
from repro.runner import run_simulation
from repro.sweep.spec import Job, SweepSpec
from repro.sweep.store import ResultStore, SweepOutcome

#: Environment override for the default worker count (see
#: :func:`default_workers`); experiments consult it so ``repro run``
#: figures parallelize without new plumbing through every profile.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Progress callback: (completed_count, total_count, outcome).
ProgressFn = Callable[[int, int, SweepOutcome], None]


def default_workers() -> int:
    """Worker count from ``REPRO_SWEEP_WORKERS`` (default: serial)."""
    value = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        workers = int(value)
    except ValueError:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR} must be an integer, got {value!r}"
        ) from None
    return max(1, workers)


def run_job(job: Job) -> SweepOutcome:
    """Execute one job in this process.

    This is the single execution path shared by the serial loop, the
    process-pool workers and :func:`repro.experiments.common.instrumented_run`.
    Determinism comes from the job itself: the config carries the seed,
    and every RNG stream derives from it.
    """
    config = job.run_config()
    sinks = []
    power_analyzer = throughput_analyzer = None
    if job.span is not None:
        power_analyzer = DistributionAnalyzer(
            power_distribution_formula(span=job.span)
        )
        throughput_analyzer = DistributionAnalyzer(
            throughput_distribution_formula(span=job.span)
        )
        sinks = [power_analyzer, throughput_analyzer]
    checkers = [build_checker(check) for check in job.checks]
    sinks = sinks + checkers
    result = run_simulation(config, sinks=sinks)
    return SweepOutcome(
        job_id=job.job_id,
        label=job.label,
        result=result,
        power_dist=power_analyzer.finish() if power_analyzer else None,
        throughput_dist=throughput_analyzer.finish() if throughput_analyzer else None,
        check_results=[checker.finish() for checker in checkers],
    )


def _resolve_backend(backend, workers: int, n_pending: int):
    """Pick the backend for one sweep (see :mod:`repro.backends`).

    Explicit instances and name tokens pass straight to the factory.
    The default preserves the engine's classic behaviour exactly: a
    single pending job (or ``workers=1``) runs serially in-process —
    no executor spin-up for work that cannot fan out — unless
    ``REPRO_SWEEP_BACKEND`` overrides the choice.
    """
    from repro.backends import BACKEND_ENV_VAR, get_backend

    if backend is None and not os.environ.get(BACKEND_ENV_VAR, "").strip():
        effective = workers if n_pending > 1 else 1
        return get_backend(None, workers=effective)
    return get_backend(backend, workers=workers)


def run_sweep(
    jobs: Union[SweepSpec, Sequence[Job]],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
    backend=None,
) -> List[SweepOutcome]:
    """Run a sweep and return outcomes in job order.

    Parameters
    ----------
    jobs:
        A job list, or a :class:`SweepSpec` to expand.  Duplicate job
        ids execute once; the shared outcome — including the *first*
        occurrence's display label — lands at every index.
    workers:
        Process count; ``None`` uses :func:`default_workers`, ``1`` runs
        serially in-process (no executor, easiest to debug/profile).
        Ignored by backends with their own worker fleet (distributed).
    store:
        Optional :class:`ResultStore`; jobs whose ids are already
        complete in the store are skipped (their cached outcomes are
        returned with ``cached=True``) and fresh outcomes are appended
        incrementally, as each one completes.
    progress:
        Called after each job completes (cached hits included).
    backend:
        An :class:`~repro.backends.base.ExecutionBackend` instance, a
        name token (``serial`` / ``process`` / ``distributed``), or
        ``None`` to consult ``REPRO_SWEEP_BACKEND`` and fall back to
        the classic serial/process-pool choice.
    """
    if isinstance(jobs, SweepSpec):
        jobs = jobs.jobs()
    jobs = list(jobs)
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    total = len(jobs)
    done = 0
    outcomes: List[Optional[SweepOutcome]] = [None] * total

    # Group indices by job id so repeats execute exactly once.
    indices_by_id: Dict[str, List[int]] = {}
    first_jobs: List[Job] = []
    for index, job in enumerate(jobs):
        slots = indices_by_id.setdefault(job.job_id, [])
        if not slots:
            first_jobs.append(job)
        slots.append(index)

    def deliver(outcome: SweepOutcome) -> None:
        nonlocal done
        for index in indices_by_id[outcome.job_id]:
            outcomes[index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, outcome)

    pending_jobs: List[Job] = []
    for job in first_jobs:
        cached = store.get(job.job_id) if store is not None else None
        if cached is not None:
            deliver(cached)
        else:
            pending_jobs.append(job)

    if pending_jobs:
        open_ids = {job.job_id for job in pending_jobs}
        resolved = _resolve_backend(backend, workers, len(pending_jobs))
        try:
            for outcome in resolved.run(pending_jobs):
                if outcome.job_id not in open_ids:
                    raise BackendError(
                        f"backend {resolved.name!r} yielded unknown or "
                        f"duplicate job id {outcome.job_id!r}"
                    )
                open_ids.discard(outcome.job_id)
                if store is not None:
                    store.add(outcome)
                deliver(outcome)
        finally:
            resolved.close()
        if open_ids:
            raise BackendError(
                f"backend {resolved.name!r} finished without yielding "
                f"{len(open_ids)} job(s): {', '.join(sorted(open_ids))}"
            )
    elif backend is not None and hasattr(backend, "close"):
        backend.close()  # single-use even when everything was cached
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]


def summarize(outcomes: Sequence[SweepOutcome]) -> str:
    """A text table of sweep outcomes (the CLI's summary report)."""
    header = (
        f"{'job':32s} {'power(W)':>9s} {'tput(Mbps)':>10s} "
        f"{'loss%':>6s} {'trans':>6s} {'cached':>6s}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        label = outcome.label or outcome.job_id
        lines.append(
            f"{label[:32]:32s} {outcome.mean_power_w:9.3f} "
            f"{outcome.throughput_mbps:10.1f} "
            f"{outcome.result.totals.loss_fraction * 100:6.2f} "
            f"{outcome.result.governor_transitions:6d} "
            f"{'yes' if outcome.cached else 'no':>6s}"
        )
    return "\n".join(lines)


def progress_printer(stream=None) -> ProgressFn:
    """A progress callback that writes one line per completed job."""
    out = stream or sys.stderr
    start = time.monotonic()

    def report(done: int, total: int, outcome: SweepOutcome) -> None:
        elapsed = time.monotonic() - start
        tag = " (cached)" if outcome.cached else ""
        out.write(
            f"[{done:3d}/{total}] {elapsed:7.1f}s "
            f"{outcome.label or outcome.job_id}{tag}\n"
        )
        out.flush()

    return report
