"""The sweep runner: :func:`run_job` plus the legacy ``run_sweep`` shim.

:func:`run_job` is the single in-process execution path every backend
shares — the serial loop, the process-pool workers and the distributed
``repro worker`` processes all call it, which is what makes results
bit-identical regardless of where a job lands.

:func:`run_sweep` is the pre-session entry point, kept as a thin
deprecation shim over :class:`repro.api.Session`: its kwargs become a
one-call :class:`~repro.api.policy.ExecutionPolicy` /
:class:`~repro.api.policy.StorePolicy`, and its results — ordering,
caching, duplicate fan-out, environment-variable behaviour — are
bit-identical to the historical engine.  New code should hold a
:class:`~repro.api.session.Session` and call ``session.sweep`` /
``session.stream`` instead.

A :class:`~repro.sweep.store.ResultStore` makes sweeps resumable:
completed job ids are skipped and their stored outcomes returned
instead, and fresh outcomes are appended as they stream in — so an
interrupted grid (or a crashed distributed coordinator) only pays for
the missing cells on the next run.
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.loc.builtin import (
    power_distribution_formula,
    throughput_distribution_formula,
)
from repro.loc.monitor import build_monitor
from repro.runner import SimulationRun
from repro.sweep.spec import Job, SweepSpec
from repro.sweep.store import ResultStore, SweepOutcome

#: Environment override for the default worker count (see
#: :func:`default_workers`); experiments consult it so ``repro run``
#: figures parallelize without new plumbing through every profile.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"

#: Progress callback: (completed_count, total_count, outcome).
ProgressFn = Callable[[int, int, SweepOutcome], None]


def default_workers() -> int:
    """Worker count from ``REPRO_SWEEP_WORKERS`` (default: serial)."""
    value = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not value:
        return 1
    try:
        workers = int(value)
    except ValueError:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR} must be an integer, got {value!r}"
        ) from None
    return max(1, workers)


def run_job(job: Job) -> SweepOutcome:
    """Execute one job in this process.

    This is the single execution path shared by the serial loop, the
    process-pool workers and :func:`repro.experiments.common.instrumented_run`.
    Determinism comes from the job itself: the config carries the seed,
    and every RNG stream derives from it.

    LOC analysis (the span distributions and ``job.checks``) rides the
    run's :class:`~repro.trace.bus.TraceBus` as online monitors —
    compiled by default, interpretive under
    ``REPRO_LOC_MONITOR=interpreted`` — with results proven identical
    either way (``tests/test_monitors.py``).

    When the job carries an early-abort policy (``job.early_abort``),
    streaming anomaly gates (:mod:`repro.obs.gates`) attach after the
    monitors and may stop the simulator mid-run; the outcome then
    reports ``result.aborted_early`` with partial totals.  Observed
    runs additionally carry per-channel ``published`` event counts in
    ``outcome.obs`` — only the observer-independent half of
    :meth:`~repro.trace.bus.TraceBus.channel_stats`, so outcomes stay
    byte-identical across backends *and* monitor modes (delivery/shed
    accounting depends on subscriber topology, which differs between
    compiled monitors and the interpreted wildcard-sink fallback).
    """
    config = job.run_config()
    power_monitor = throughput_monitor = None
    monitors = []
    if job.span is not None:
        power_monitor = build_monitor(
            power_distribution_formula(span=job.span), expect="distribution"
        )
        throughput_monitor = build_monitor(
            throughput_distribution_formula(span=job.span),
            expect="distribution",
        )
        monitors = [power_monitor, throughput_monitor]
    check_monitors = [
        build_monitor(check, expect="checker") for check in job.checks
    ]
    monitors = monitors + check_monitors
    gates = []
    if job.early_abort:
        from repro.obs.gates import EarlyAbortPolicy, build_gates

        gates = build_gates(
            EarlyAbortPolicy.from_dict(job.early_abort), check_monitors
        )
    run = SimulationRun(config, monitors=monitors, gates=gates)
    result = run.run()
    channel_stats = run.bus.channel_stats()
    check_results = [monitor.finish() for monitor in check_monitors]
    obs = None
    if channel_stats:
        obs = {
            "channels": {
                name: {"published": channel_stats[name]["published"]}
                for name in sorted(channel_stats)
            },
        }
    # Deterministic sim-clock spans (scenario segments, per-ME phase
    # windows, check-evaluation windows) ride the outcome like the
    # channel counters: same integer-picosecond values from every
    # backend and monitor mode, so byte-identity holds.  Wall-clock
    # spans never go through outcomes — they stay in the per-process
    # recorder (see repro.obs.spans).
    spans = run.sim_spans()
    if spans:
        end_ps = run.sim.now_ps
        for check in check_results:
            spans.append({
                "clock": "sim",
                "name": "check",
                "track": "checks",
                "start": 0,
                "dur": end_ps,
                "attrs": {
                    "formula": check.formula_text,
                    "instances": check.instances_checked,
                },
            })
        obs = dict(obs or {})
        obs["spans"] = spans
    return SweepOutcome(
        job_id=job.job_id,
        label=job.label,
        result=result,
        power_dist=power_monitor.finish() if power_monitor else None,
        throughput_dist=throughput_monitor.finish() if throughput_monitor else None,
        check_results=check_results,
        obs=obs,
    )


def run_sweep(
    jobs: Union[SweepSpec, Sequence[Job]],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
    backend=None,
) -> List[SweepOutcome]:
    """Run a sweep and return outcomes in job order.

    .. deprecated::
        This is a compatibility shim over :class:`repro.api.Session`;
        hold a session (``Session(execution=ExecutionPolicy(...))``)
        and call :meth:`~repro.api.session.Session.sweep` — or
        :meth:`~repro.api.session.Session.stream` for completion-order
        results — instead.  Results are bit-identical either way.

    Parameters
    ----------
    jobs:
        A job list, or a :class:`SweepSpec` to expand.  Duplicate job
        ids execute once; the shared outcome — including the *first*
        occurrence's display label — lands at every index.
    workers:
        Process count; ``None`` uses :func:`default_workers`, ``1`` runs
        serially in-process (no executor, easiest to debug/profile).
        Ignored by backends with their own worker fleet (distributed).
    store:
        Optional :class:`ResultStore`; jobs whose ids are already
        complete in the store are skipped (their cached outcomes are
        returned with ``cached=True``) and fresh outcomes are appended
        incrementally, as each one completes.
    progress:
        Called after each job completes (cached hits included).
    backend:
        An :class:`~repro.backends.base.ExecutionBackend` instance, a
        name token (``serial`` / ``process`` / ``distributed``), or
        ``None`` to consult ``REPRO_SWEEP_BACKEND`` and fall back to
        the classic serial/process-pool choice.
    """
    warnings.warn(
        "run_sweep() is deprecated; use repro.api.Session.sweep() "
        "(or Session.stream() for completion-order results)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import EventHooks, ExecutionPolicy, Session, StorePolicy

    session = Session(
        execution=ExecutionPolicy(backend=backend, workers=workers),
        store=StorePolicy(store=store),
        hooks=EventHooks(progress=progress),
    )
    return session.sweep(jobs)


def summarize(outcomes: Sequence[SweepOutcome]) -> str:
    """A text table of sweep outcomes (the CLI's summary report)."""
    header = (
        f"{'job':32s} {'power(W)':>9s} {'tput(Mbps)':>10s} "
        f"{'loss%':>6s} {'trans':>6s} {'cached':>6s}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        label = outcome.label or outcome.job_id
        lines.append(
            f"{label[:32]:32s} {outcome.mean_power_w:9.3f} "
            f"{outcome.throughput_mbps:10.1f} "
            f"{outcome.result.totals.loss_fraction * 100:6.2f} "
            f"{outcome.result.governor_transitions:6d} "
            f"{'yes' if outcome.cached else 'no':>6s}"
        )
    return "\n".join(lines)


def progress_printer(stream=None) -> ProgressFn:
    """A progress callback that writes one line per completed job."""
    out = stream or sys.stderr
    # Judgment call: this clock feeds the operator's progress line on
    # stderr only — never sim time, outcomes, or stored artifacts — so
    # the wall-clock rule is suppressed rather than obeyed here.
    start = time.monotonic()  # repro: noqa(DET102)

    def report(done: int, total: int, outcome: SweepOutcome) -> None:
        elapsed = time.monotonic() - start  # repro: noqa(DET102)
        tag = " (cached)" if outcome.cached else ""
        out.write(
            f"[{done:3d}/{total}] {elapsed:7.1f}s "
            f"{outcome.label or outcome.job_id}{tag}\n"
        )
        out.flush()

    return report
