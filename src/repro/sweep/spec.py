"""Declarative sweep grids and their expansion into jobs.

A :class:`SweepSpec` names the axes of a design-space exploration —
benchmarks x policies x thresholds x windows x traffic x seeds — and
expands the cross product into :class:`Job` objects.  A job is nothing
but a serialized :class:`~repro.config.RunConfig` (via ``to_dict``) plus
an optional LOC analysis span, so jobs pickle cheaply across worker
processes and hash stably for result caching.

Traffic axis entries are compact tokens::

    level:high            # named diurnal level
    load:1000             # explicit offered Mbps
    scenario:flash_crowd  # catalog scenario (repro.scenarios)

The engine (:mod:`repro.sweep.engine`) runs jobs; the store
(:mod:`repro.sweep.store`) persists and caches their outcomes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.errors import ConfigError


def config_hash(
    config: Dict[str, Any],
    span: Optional[int] = None,
    scenario: Optional[Dict[str, Any]] = None,
    checks: Sequence[str] = (),
    early_abort: Optional[Dict[str, Any]] = None,
) -> str:
    """Stable short hash of a config dict (+ span, scenario, checks,
    early-abort policy).

    Key order does not matter; values must be JSON-serializable, which
    every ``RunConfig.to_dict`` / ``Scenario.to_dict`` output is.  The
    scenario *definition* participates so that re-registering a name
    with different segments changes job identity; so do the attached LOC
    checker formulas.  The ``checks`` key is omitted when empty — and
    the ``early_abort`` key when unset — keeping job ids of plain
    sweeps identical to those of earlier releases (existing result
    stores stay valid caches).  An early-abort policy *must*
    participate when set: a gated job may report a partial outcome,
    which would poison the cache entry of its full-run twin.
    """
    payload_dict: Dict[str, Any] = {
        "config": config,
        "span": span,
        "scenario": scenario,
    }
    if checks:
        payload_dict["checks"] = list(checks)
    if early_abort:
        payload_dict["early_abort"] = early_abort
    payload = json.dumps(payload_dict, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Job:
    """One runnable unit of a sweep: a config dict plus analysis span.

    ``span`` is the LOC formula packet span; when set, the worker
    attaches the paper's formula (2)/(3) distribution analyzers and the
    outcome carries both distributions.  ``scenario`` embeds the full
    scenario definition when the config references one by name, making
    jobs self-contained: worker processes re-register it locally, so
    custom (non-built-in) scenarios sweep correctly even under spawn /
    forkserver start methods.  ``checks`` is an ordered tuple of LOC
    *checker* formulas (relational assertions); the worker attaches one
    streaming :class:`~repro.loc.checker.Checker` per formula and the
    outcome carries their :class:`~repro.loc.checker.CheckResult`
    verdicts in the same order.  ``early_abort`` is the serialized
    :class:`~repro.obs.gates.EarlyAbortPolicy` dict when the job may be
    stopped by streaming anomaly gates (``None`` for full runs; it
    participates in the identity hash only when set, so gated partial
    outcomes never alias full-run cache entries).  ``label`` is
    display-only and excluded from the identity hash.
    """

    job_id: str
    config: Dict[str, Any]
    span: Optional[int] = None
    label: str = ""
    scenario: Optional[Dict[str, Any]] = None
    checks: Tuple[str, ...] = ()
    early_abort: Optional[Dict[str, Any]] = None

    @classmethod
    def build(
        cls,
        config: "RunConfig | Dict[str, Any]",
        span: Optional[int] = None,
        label: str = "",
        checks: Sequence[str] = (),
        early_abort: Optional[Dict[str, Any]] = None,
    ) -> "Job":
        """Make a job from a config (validated) or a config dict."""
        if isinstance(config, RunConfig):
            config.validate()
            config = config.to_dict()
        else:
            RunConfig.from_dict(config)  # validates (and normalizes errors)
        checks = tuple(checks)
        if checks:
            # Parse now so a malformed formula fails at build time, in
            # the submitting process, rather than inside a worker.
            from repro.loc.checker import build_checker

            for check in checks:
                build_checker(check)
        scenario = None
        scenario_name = (config.get("traffic") or {}).get("scenario")
        if scenario_name is not None:
            from repro.scenarios.catalog import get_scenario

            scenario = get_scenario(scenario_name).to_dict()
        if early_abort is not None and not isinstance(early_abort, dict):
            early_abort = early_abort.to_dict()
        return cls(
            job_id=config_hash(config, span, scenario, checks, early_abort),
            config=config,
            span=span,
            label=label,
            scenario=scenario,
            checks=checks,
            early_abort=early_abort,
        )

    def gated(self, early_abort) -> "Job":
        """A copy of this job with an early-abort policy attached.

        ``early_abort`` is an :class:`~repro.obs.gates.EarlyAbortPolicy`
        or its dict form (``None`` returns the job unchanged).  The
        returned job has a *different* id: partial outcomes must never
        be served as cache hits for the full run.
        """
        if early_abort is None:
            return self
        if not isinstance(early_abort, dict):
            early_abort = early_abort.to_dict()
        if early_abort == self.early_abort:
            return self
        return Job(
            job_id=config_hash(
                self.config, self.span, self.scenario, self.checks, early_abort
            ),
            config=self.config,
            span=self.span,
            label=self.label,
            scenario=self.scenario,
            checks=self.checks,
            early_abort=early_abort,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe wire form (the distributed backend's job payload).

        Carries every identity-bearing field verbatim — the receiving
        side rebuilds the exact same job, so config hashes, embedded
        scenarios and check formulas survive the network unchanged.
        """
        payload = {
            "job_id": self.job_id,
            "config": self.config,
            "span": self.span,
            "label": self.label,
            "scenario": self.scenario,
            "checks": list(self.checks),
        }
        if self.early_abort is not None:
            payload["early_abort"] = self.early_abort
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        """Rebuild from :meth:`to_dict` output (no re-hashing: the
        ``job_id`` is authoritative, exactly as for store records)."""
        try:
            return cls(
                job_id=data["job_id"],
                config=data["config"],
                span=data.get("span"),
                label=data.get("label", ""),
                scenario=data.get("scenario"),
                checks=tuple(data.get("checks") or ()),
                early_abort=data.get("early_abort"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed job payload: {exc!r}") from None

    def run_config(self) -> RunConfig:
        """Rebuild the validated :class:`RunConfig`.

        Re-registers the embedded scenario first, so the rebuild works
        in worker processes whose catalog only holds the built-ins.
        """
        if self.scenario is not None:
            from repro.scenarios.catalog import register_scenario
            from repro.scenarios.spec import Scenario

            register_scenario(Scenario.from_dict(self.scenario), replace=True)
        return RunConfig.from_dict(self.config)


def parse_traffic_token(token: str) -> TrafficConfig:
    """Turn a ``kind:value`` traffic token into a :class:`TrafficConfig`."""
    kind, sep, value = token.partition(":")
    if not sep or not value:
        raise ConfigError(
            f"traffic token {token!r} must look like level:high / "
            "load:1000 / scenario:flash_crowd"
        )
    if kind == "level":
        return TrafficConfig(level=value, offered_load_mbps=None)
    if kind == "load":
        try:
            mbps = float(value)
        except ValueError:
            raise ConfigError(f"bad load in traffic token {token!r}") from None
        return TrafficConfig(offered_load_mbps=mbps)
    if kind == "scenario":
        return TrafficConfig.for_scenario(value)
    raise ConfigError(
        f"unknown traffic kind {kind!r} in {token!r}; "
        "use level: / load: / scenario:"
    )


@dataclass
class SweepSpec:
    """The axes of one design-space sweep.

    Attributes
    ----------
    benchmarks / policies / traffic / seeds:
        Outer cross-product axes.  ``traffic`` entries are the tokens
        described in the module docstring.
    thresholds_mbps:
        TDVS top-threshold axis; applies to ``tdvs``/``combined``
        policies (ignored for others).  Empty means policy defaults.
    windows_cycles:
        Monitor-window axis; applies to every DVS policy.
    idle_threshold:
        EDVS idle fraction (a scalar — the paper fixes it at 10 %).
    duration_cycles / process / span:
        Shared run shape: run length, arrival process for level/load
        traffic, and the LOC analysis span (``None`` disables the
        distribution analyzers).
    checks:
        LOC checker formulas attached to every job; each outcome then
        carries one :class:`~repro.loc.checker.CheckResult` per formula.
    base:
        Optional :class:`RunConfig` field overrides merged into every
        job (e.g. ``{"pipeline_events": "chunk"}`` or a custom ``npu``
        dict).
    """

    benchmarks: Tuple[str, ...] = ("ipfwdr",)
    policies: Tuple[str, ...] = ("none",)
    thresholds_mbps: Tuple[float, ...] = ()
    windows_cycles: Tuple[int, ...] = ()
    idle_threshold: float = 0.10
    traffic: Tuple[str, ...] = ("level:high",)
    seeds: Tuple[int, ...] = (7,)
    duration_cycles: int = 1_600_000
    process: str = "mmpp"
    span: Optional[int] = None
    checks: Tuple[str, ...] = ()
    base: Dict[str, Any] = field(default_factory=dict)

    def dvs_points(self, policy: str) -> List[DvsConfig]:
        """The DVS-parameter axis for one policy."""
        windows = self.windows_cycles or (DvsConfig.window_cycles,)
        if policy == "none":
            return [DvsConfig(policy="none")]
        if policy == "edvs":
            return [
                DvsConfig(
                    policy="edvs",
                    window_cycles=window,
                    idle_threshold=self.idle_threshold,
                )
                for window in windows
            ]
        if policy in ("tdvs", "combined"):
            thresholds = self.thresholds_mbps or (DvsConfig.top_threshold_mbps,)
            return [
                DvsConfig(
                    policy=policy,
                    window_cycles=window,
                    top_threshold_mbps=threshold,
                    idle_threshold=self.idle_threshold,
                )
                for threshold in thresholds
                for window in windows
            ]
        raise ConfigError(f"unknown policy {policy!r} in sweep spec")

    def jobs(self) -> List[Job]:
        """Expand the cross product into an ordered, de-duplicated job list.

        Raises :class:`ConfigError` when any outer axis is empty — an
        empty ``policies`` or ``traffic`` tuple would otherwise expand
        to zero jobs and make a sweep silently report nothing.
        """
        for axis in ("benchmarks", "policies", "traffic", "seeds"):
            if not getattr(self, axis):
                raise ConfigError(
                    f"SweepSpec.{axis} is empty — the sweep would expand to "
                    "zero jobs; give the axis at least one entry"
                )
        jobs: List[Job] = []
        seen = set()
        for benchmark in self.benchmarks:
            for token in self.traffic:
                for policy in self.policies:
                    for dvs in self.dvs_points(policy):
                        for seed in self.seeds:
                            traffic = parse_traffic_token(token)
                            if traffic.scenario is None:
                                traffic = traffic.replaced(process=self.process)
                            config = RunConfig(
                                benchmark=benchmark,
                                duration_cycles=self.duration_cycles,
                                seed=seed,
                                traffic=traffic,
                                dvs=dvs,
                            )
                            config_dict = config.to_dict()
                            config_dict.update(self.base)
                            job = Job.build(
                                config_dict,
                                span=self.span,
                                label=_job_label(benchmark, token, dvs, seed),
                                checks=self.checks,
                            )
                            if job.job_id in seen:
                                continue
                            seen.add(job.job_id)
                            jobs.append(job)
        return jobs


def _job_label(benchmark: str, traffic_token: str, dvs: DvsConfig, seed: int) -> str:
    parts = [benchmark, traffic_token, dvs.policy]
    if dvs.policy in ("tdvs", "combined"):
        parts.append(f"thr={dvs.top_threshold_mbps:g}")
    if dvs.policy != "none":
        parts.append(f"win={dvs.window_cycles}")
    parts.append(f"seed={seed}")
    return " ".join(parts)
