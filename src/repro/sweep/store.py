"""Sweep outcomes and their JSONL persistence.

:class:`SweepOutcome` is the full result of one job — the
:class:`~repro.runner.RunResult` plus the optional formula (2)/(3)
distributions — and it round-trips losslessly through plain dicts so a
:class:`ResultStore` can keep one JSON line per completed job.  The
store doubles as the sweep cache: job ids are config hashes, so an
interrupted or repeated sweep skips every job whose line is already on
disk.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional

from repro.config import RunConfig
from repro.errors import ExperimentError
from repro.loc.analyzer import DistributionResult
from repro.loc.checker import CheckResult
from repro.npu.chip import MeSummary, RunTotals
from repro.runner import RunResult


@dataclass
class SweepOutcome:
    """Everything one finished sweep job reports."""

    job_id: str
    label: str
    result: RunResult
    power_dist: Optional[DistributionResult] = None
    throughput_dist: Optional[DistributionResult] = None
    #: LOC checker verdicts, in the order of the job's ``checks`` tuple.
    check_results: List[CheckResult] = field(default_factory=list)
    #: True when this outcome was loaded from a store instead of run.
    cached: bool = False
    #: Run-level observability payload: per-channel ``published`` event
    #: counts (the observer-independent half of
    #: :meth:`repro.trace.bus.TraceBus.channel_stats` — delivery/shed
    #: accounting varies with subscriber topology and stays bus-local)
    #: and, under ``spans`` when ``REPRO_OBS_SPANS`` is on, the run's
    #: deterministic sim-time span records (scenario segments, per-ME
    #: phase windows, check-evaluation windows — see
    #: :mod:`repro.obs.spans`); ``None`` when nothing was collected.
    #: Contents are deterministic — event counts and integer-picosecond
    #: sim times, never wall-clock — so outcomes stay bit-identical
    #: across backends and monitor modes.
    obs: Optional[Dict[str, Any]] = None

    @property
    def mean_power_w(self) -> float:
        """Mean chip power over the run."""
        return self.result.mean_power_w

    @property
    def throughput_mbps(self) -> float:
        """Forwarded throughput over the run."""
        return self.result.throughput_mbps

    @property
    def assertions_passed(self) -> bool:
        """True when every attached LOC check had zero violations.

        Vacuously true for jobs that carried no checks; callers that
        need tolerance-based gating (allow a bounded violation fraction)
        should inspect :attr:`check_results` directly, as the study
        engine does.
        """
        return all(check.passed for check in self.check_results)

    # -- dict round-trip ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (one store line).

        The ``obs`` key is present only when an observability payload
        was collected, so records of unobserved runs — and every store
        written by an earlier release — keep their exact historical
        shape.
        """
        record = {
            "job_id": self.job_id,
            "label": self.label,
            "result": _result_to_dict(self.result),
            "power_dist": _dist_to_dict(self.power_dist),
            "throughput_dist": _dist_to_dict(self.throughput_dist),
            "check_results": [check.to_dict() for check in self.check_results],
        }
        if self.obs is not None:
            record["obs"] = self.obs
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepOutcome":
        """Rebuild from :meth:`to_dict` output."""
        try:
            return cls(
                job_id=data["job_id"],
                label=data.get("label", ""),
                result=_result_from_dict(data["result"]),
                power_dist=_dist_from_dict(data.get("power_dist")),
                throughput_dist=_dist_from_dict(data.get("throughput_dist")),
                check_results=[
                    CheckResult.from_dict(check)
                    for check in data.get("check_results", [])
                ],
                cached=True,
                obs=data.get("obs"),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed sweep record: {exc!r}") from None


# ---------------------------------------------------------------------------
# RunResult / DistributionResult <-> dict
# ---------------------------------------------------------------------------
def _result_to_dict(result: RunResult) -> Dict[str, Any]:
    record = {
        "config": result.config.to_dict(),
        "totals": asdict(result.totals),
        "governor_policy": result.governor_policy,
        "governor_transitions": result.governor_transitions,
        "governor_windows": result.governor_windows,
        "dvs_overhead_w": result.dvs_overhead_w,
    }
    # Abort markers appear only on gated partial outcomes, keeping full
    # runs' record shape (and byte identity) untouched.
    if result.aborted_early:
        record["aborted_early"] = True
        record["abort_reason"] = result.abort_reason
    return record


def _result_from_dict(data: Dict[str, Any]) -> RunResult:
    totals = dict(data["totals"])
    totals["me_summaries"] = [MeSummary(**me) for me in totals.get("me_summaries", [])]
    return RunResult(
        config=RunConfig.from_dict(data["config"]),
        totals=RunTotals(**totals),
        governor_policy=data["governor_policy"],
        governor_transitions=data["governor_transitions"],
        governor_windows=data["governor_windows"],
        dvs_overhead_w=data["dvs_overhead_w"],
        aborted_early=bool(data.get("aborted_early", False)),
        abort_reason=data.get("abort_reason", ""),
    )


def _dist_to_dict(dist: Optional[DistributionResult]) -> Optional[Dict[str, Any]]:
    if dist is None:
        return None
    data = asdict(dist)
    # JSON has no NaN literal; empty distributions carry NaN min/max.
    for key in ("value_min", "value_max"):
        if isinstance(data[key], float) and math.isnan(data[key]):
            data[key] = None
    return data


def _dist_from_dict(data: Optional[Dict[str, Any]]) -> Optional[DistributionResult]:
    if data is None:
        return None
    rebuilt = dict(data)
    for key in ("value_min", "value_max"):
        if rebuilt.get(key) is None:
            rebuilt[key] = math.nan
    return DistributionResult(**rebuilt)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class ResultStore:
    """Config-hash keyed JSONL store of sweep outcomes.

    Parameters
    ----------
    path:
        JSONL file to load from / append to.  ``None`` keeps the store
        in memory only (useful as a per-process cache in tests).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: Dict[str, Dict[str, Any]] = {}
        self._outcomes: Dict[str, SweepOutcome] = {}
        #: Set when a torn tail was dropped but could not be truncated
        #: away; the next append then starts on a fresh line.
        self._needs_newline = False
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        """Load the JSONL file, tolerating a torn final line.

        A crash mid-:meth:`add` leaves a truncated last line; erroring
        on it would brick the whole cache, so a malformed *final*
        record is dropped (and truncated off the file, keeping later
        appends clean).  Corruption anywhere earlier still raises —
        silently skipping interior records would return wrong cache
        misses forever after.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        lines = data.split(b"\n")
        offsets = []
        offset = 0
        for raw in lines:
            offsets.append(offset)
            offset += len(raw) + 1
        last = max(
            (i for i, raw in enumerate(lines) if raw.strip()), default=None
        )
        for i, raw in enumerate(lines):
            stripped = raw.strip()
            if not stripped:
                continue
            record: Any = None
            error = ""
            try:
                record = json.loads(stripped.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                error = str(exc)
            if not isinstance(record, dict) or "job_id" not in record:
                if i == last:
                    self._drop_tail(path, offsets[i])
                    break
                raise ExperimentError(
                    f"{path}:{i + 1}: bad JSON in result store: "
                    f"{error or 'record is not an object with a job_id'}"
                )
            self._records[record["job_id"]] = record

    def _drop_tail(self, path: str, offset: int) -> None:
        """Remove a torn final line from the backing file."""
        try:
            with open(path, "rb+") as handle:
                handle.truncate(offset)
        except OSError:
            # Read-only file: recover in memory and keep appends clean
            # by prefixing the next one with a newline.
            self._needs_newline = True

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def completed_ids(self) -> List[str]:
        """Job ids with a stored outcome, sorted."""
        return sorted(self._records)

    def get(self, job_id: str) -> Optional[SweepOutcome]:
        """The stored outcome for a job id, or ``None``."""
        if job_id not in self._records:
            return None
        if job_id not in self._outcomes:
            self._outcomes[job_id] = SweepOutcome.from_dict(self._records[job_id])
        return self._outcomes[job_id]

    def add(self, outcome: SweepOutcome) -> None:
        """Record a fresh outcome (appends one JSONL line when backed)."""
        record = outcome.to_dict()
        self._records[outcome.job_id] = record
        # Anything served back out of the store is, by definition, cached.
        self._outcomes[outcome.job_id] = replace(outcome, cached=True)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                if self._needs_newline:
                    handle.write("\n")
                    self._needs_newline = False
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def iter_outcomes(self) -> Iterator[SweepOutcome]:
        """All stored outcomes, in job-id order."""
        for job_id in self.completed_ids():
            outcome = self.get(job_id)
            assert outcome is not None
            yield outcome
