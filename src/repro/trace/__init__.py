"""Simulation traces: events, annotations, writers, readers, buffers.

A NePSim-style trace is a time-ordered stream of **events**, each carrying
the five **annotations** of the paper's Figure 3 (``cycle``, ``time``,
``energy``, ``total_pkt``, ``total_bit``).  Event names are prefixed to
distinguish microengines (``m2_pipeline`` is a pipeline event from ME2).

The subpackage provides:

* :class:`~repro.trace.bus.TraceBus` — the streaming observation bus
  every producer publishes into: tuple-payload subscriptions for
  compiled LOC monitors, wildcard ``emit(TraceEvent)`` sinks for the
  legacy interfaces, and no-op emitters for unobserved event names;
* :class:`~repro.trace.events.TraceEvent` — one trace record;
* :class:`~repro.trace.buffer.TraceBuffer` — in-memory sink with optional
  event-name filtering and bounded retention;
* :class:`~repro.trace.writer.TextTraceWriter` — the exact column format of
  the paper's Figure 4 snapshot, plus a CSV variant;
* :mod:`~repro.trace.reader` — streaming parsers for both formats.
"""

from repro.trace.annotations import ANNOTATION_DESCRIPTIONS, ANNOTATION_NAMES
from repro.trace.buffer import MultiSink, NullSink, TraceBuffer
from repro.trace.bus import NOOP_EMITTER, TraceBus
from repro.trace.events import (
    EVENT_DESCRIPTIONS,
    EVENT_TYPES,
    TraceEvent,
    parse_event_name,
    prefixed_event_name,
)
from repro.trace.reader import read_csv_trace, read_text_trace
from repro.trace.writer import CsvTraceWriter, TextTraceWriter

__all__ = [
    "ANNOTATION_DESCRIPTIONS",
    "ANNOTATION_NAMES",
    "CsvTraceWriter",
    "EVENT_DESCRIPTIONS",
    "EVENT_TYPES",
    "MultiSink",
    "NOOP_EMITTER",
    "NullSink",
    "TextTraceWriter",
    "TraceBuffer",
    "TraceBus",
    "TraceEvent",
    "parse_event_name",
    "prefixed_event_name",
    "read_csv_trace",
    "read_text_trace",
]
