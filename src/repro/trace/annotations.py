"""Annotation schema and the recorder that stamps events with them.

Annotations are the per-event quantities of the paper's Figure 3.  The
:class:`AnnotationProvider` gathers them from live model objects (the
reference clock, the energy accountant, the packet counters) so that every
emitted :class:`~repro.trace.events.TraceEvent` carries a consistent
snapshot.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.sim.clock import ClockDomain
from repro.trace.events import TraceEvent
from repro.units import ps_to_us

#: Annotation names, in the column order of the paper's trace snapshot.
ANNOTATION_NAMES = ("cycle", "time", "energy", "total_pkt", "total_bit")

#: Human-readable one-liners, used by the Figure 3 reproduction.
ANNOTATION_DESCRIPTIONS: Dict[str, str] = {
    "cycle": "number of core clock cycles elapsed from the beginning",
    "time": "simulated time elapsed from the beginning",
    "energy": "cumulative energy consumed",
    "total_pkt": "total packets received or transmitted",
    "total_bit": "total bits received or transmitted",
}


class AnnotationProvider:
    """Builds trace events stamped with the current annotation values.

    Parameters
    ----------
    reference_clock:
        Fixed clock whose cycle count stamps the ``cycle`` annotation
        (NePSim's core cycle counter; 600 MHz in this model).
    energy_uj:
        Zero-argument callable returning cumulative energy in microjoules.
    total_pkt:
        Zero-argument callable returning the packet counter.
    total_bit:
        Zero-argument callable returning the bit counter.
    """

    def __init__(
        self,
        reference_clock: ClockDomain,
        energy_uj: Callable[[], float],
        total_pkt: Callable[[], int],
        total_bit: Callable[[], int],
    ):
        self.reference_clock = reference_clock
        self._energy_uj = energy_uj
        self._total_pkt = total_pkt
        self._total_bit = total_bit

    def snapshot(self) -> Tuple[int, float, float, int, int]:
        """The current annotation row, in :data:`ANNOTATION_NAMES` order.

        This is the allocation-free payload the
        :class:`~repro.trace.bus.TraceBus` hands to tuple subscribers;
        :meth:`make_event` wraps the same row in a :class:`TraceEvent`.
        """
        now_ps = self.reference_clock.sim.now_ps
        return (
            int(self.reference_clock.cycles_at(now_ps)),
            ps_to_us(now_ps),
            self._energy_uj(),
            self._total_pkt(),
            self._total_bit(),
        )

    def settle(self) -> None:
        """Settle lazy accumulators at the current instant, record nothing.

        The energy accountant integrates lazily: reading it chunks the
        integral at the read instant, and float addition makes the
        chunking grid part of the numeric identity of a run.  Observed
        runs historically read energy at every trace-event occurrence,
        so the bus settles at event occurrences whose names have no
        subscriber (see :meth:`repro.trace.bus.TraceBus.emitter`) —
        keeping results bit-identical no matter which subset of events
        the attached monitors actually consume.
        """
        self._energy_uj()

    def make_event(self, name: str) -> TraceEvent:
        """Create a :class:`TraceEvent` named ``name`` stamped *now*."""
        return TraceEvent(name, *self.snapshot())
