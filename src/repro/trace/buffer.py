"""In-memory trace sinks.

Sinks implement a single method, ``emit(event)``.  The chip's trace
recorder fans events out to any number of sinks; typical compositions:

* a :class:`TraceBuffer` filtered to ``forward`` events feeding a LOC
  distribution analyzer;
* a :class:`~repro.trace.writer.TextTraceWriter` dumping the full stream
  to disk for offline analysis;
* a :class:`NullSink` when tracing is disabled.

LOC analyzers in this package are *streaming* (they subscribe as sinks),
so full in-memory retention is only needed when a test or example wants to
inspect the raw events.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, List, Optional, Sequence

from repro.trace.events import TraceEvent


class NullSink:
    """Discards every event (tracing disabled)."""

    def emit(self, event: TraceEvent) -> None:
        """Ignore the event."""


class MultiSink:
    """Fans each event out to several sinks, in order."""

    def __init__(self, sinks: Sequence = ()):
        self.sinks: List = list(sinks)

    def add(self, sink) -> None:
        """Append another sink."""
        self.sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)


class TraceBuffer:
    """Retains events in memory, optionally filtered and bounded.

    Parameters
    ----------
    names:
        If given, only events whose name is in this set are retained.
    predicate:
        Optional extra filter called with each event.
    max_events:
        If given, only the most recent ``max_events`` matching events are
        kept (a ring buffer); ``dropped`` counts evictions.
    """

    def __init__(
        self,
        names: Optional[Iterable[str]] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
        max_events: Optional[int] = None,
    ):
        self.names = frozenset(names) if names is not None else None
        self.predicate = predicate
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.max_events = max_events
        self.dropped = 0
        self.total_emitted = 0

    def emit(self, event: TraceEvent) -> None:
        if self.names is not None and event.name not in self.names:
            return
        if self.predicate is not None and not self.predicate(event):
            return
        if self.max_events is not None and len(self._events) == self.max_events:
            self.dropped += 1
        self._events.append(event)
        self.total_emitted += 1

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(list(self._events))

    def clear(self) -> None:
        """Drop all retained events (counters are kept)."""
        self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceBuffer kept={len(self._events)} emitted={self.total_emitted}>"
