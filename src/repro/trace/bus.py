"""The streaming observation bus: one publish/subscribe spine per run.

Every trace-event producer in the model — the chip's forward hook, the
port array's enqueue path, the microengines' pipeline blocks, the
memory-queue controllers — publishes into a single :class:`TraceBus`
instead of an ad-hoc sink list.  Two subscription flavours exist:

* :meth:`TraceBus.subscribe` — a **tuple handler** for one event name.
  The handler receives the bare annotation row ``(cycle, time, energy,
  total_pkt, total_bit)``; no :class:`~repro.trace.events.TraceEvent`
  is ever allocated for it.  This is the path compiled LOC monitors
  ride (:mod:`repro.loc.monitor`).
* :meth:`TraceBus.attach_sink` — a **structured sink** with the legacy
  ``emit(TraceEvent)`` interface (writers, buffers, interpretive
  checkers).  Sinks are wildcard subscribers: they see every published
  event, and a :class:`~repro.trace.events.TraceEvent` is materialized
  once per event only while at least one sink is attached.

Producers do not publish through the bus object; they hold an
**emitter** — a zero-argument callable bound per event name via
:meth:`TraceBus.emitter`.  Binding resolves the subscription table
once: a name nobody listens to gets the shared :data:`NOOP_EMITTER`,
so an unobserved event costs a single no-op call — no annotation
snapshot, no record, no dispatch loop.  Producers that want *zero*
cost compare against :data:`NOOP_EMITTER` and skip the call entirely.

Binding seals the bus: subscriptions must be in place before the chip
starts (which is when producers bind), otherwise events emitted
through an already-bound no-op emitter would be silently lost.  A late
``subscribe``/``attach_sink`` raises :class:`~repro.errors.TraceError`
instead.

Dispatch order is deterministic: tuple handlers first (in subscription
order), then structured sinks (in attachment order) — and annotations
are snapshotted exactly once per event, so every subscriber observes
the same row.
"""

from __future__ import annotations

import os
from sys import intern
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.trace.annotations import AnnotationProvider
from repro.trace.events import TraceEvent

#: One annotation snapshot, in :data:`~repro.trace.annotations.ANNOTATION_NAMES`
#: order: ``(cycle, time, energy, total_pkt, total_bit)``.
Row = Tuple[int, float, float, int, int]

#: Environment switch for the default-on per-channel event counters
#: (``off`` / ``0`` / ``false`` / ``no`` disables them).  The counters
#: cost one integer increment per published event; the benchmark lane
#: measures that overhead by comparing runs with the switch flipped.
OBS_COUNTERS_ENV_VAR = "REPRO_OBS_COUNTERS"


def _counting_default() -> bool:
    value = os.environ.get(OBS_COUNTERS_ENV_VAR, "").strip().lower()
    return value not in ("off", "0", "false", "no")

#: A per-name tuple subscriber.
TupleHandler = Callable[[Row], None]

#: A producer-side publish callable for one event name.
Emitter = Callable[[], None]


def _noop_emit() -> None:
    """The shared emitter for event names nobody subscribed to."""


#: The no-op emitter singleton.  Producers may compare an emitter
#: against this to skip even the call overhead on their hot path.
NOOP_EMITTER: Emitter = _noop_emit


class TraceBus:
    """Publish/subscribe spine for one simulation's observation path.

    Parameters
    ----------
    annotations:
        The run's :class:`~repro.trace.annotations.AnnotationProvider`;
        its :meth:`~repro.trace.annotations.AnnotationProvider.snapshot`
        stamps each published event exactly once.
    """

    def __init__(
        self, annotations: AnnotationProvider, counting: Optional[bool] = None
    ):
        self._annotations = annotations
        self._handlers: Dict[str, List[Tuple[TupleHandler, int]]] = {}
        self._sinks: List = []
        self._bound: Dict[str, Emitter] = {}
        #: Events dispatched to at least one subscriber (no-op emitter
        #: calls do not count: nothing was materialized for them).
        self.events_published = 0
        #: Per-channel counter records, keyed by the binding key (one
        #: record per bound emitter; :meth:`channel_stats` merges the
        #: primary and named-only bindings of a name).
        self._channels: Dict[str, Dict[str, Any]] = {}
        #: Whether per-channel counters are live.  ``None`` defers to
        #: ``REPRO_OBS_COUNTERS`` (default on); the bench overhead lane
        #: passes ``False`` explicitly.  Counting never changes the
        #: annotation read grid — it only adds integer increments.
        self.counting = _counting_default() if counting is None else counting

    # ------------------------------------------------------------------
    # Subscription (before producers bind)
    # ------------------------------------------------------------------
    @property
    def sealed(self) -> bool:
        """True once any producer bound an emitter."""
        return bool(self._bound)

    def subscribe(
        self, name: str, handler: TupleHandler, sample: int = 1
    ) -> None:
        """Subscribe a tuple handler to one event name.

        The handler is called with the bare annotation row; no
        :class:`TraceEvent` is allocated on its account.

        ``sample=N`` subscribes at 1/N with a deterministic stride: the
        handler sees the channel's first event and every N-th after it.
        Sampling **never** moves the annotation settle grid — the bus
        still snapshots the row at every event occurrence of a
        subscribed name; a sampled handler merely skips its dispatch —
        so numeric results are identical at any stride.  Skipped
        dispatches are accounted as shed in :meth:`channel_stats`.
        Structured sinks (:meth:`attach_sink`) are never sampled.
        """
        self._require_open(name)
        sample = int(sample)
        if sample < 1:
            raise TraceError(
                f"sample stride for {name!r} must be >= 1, got {sample}"
            )
        self._handlers.setdefault(intern(name), []).append((handler, sample))

    def attach_sink(self, sink) -> None:
        """Attach a structured (wildcard) sink with ``emit(TraceEvent)``."""
        self._require_open("*")
        if not callable(getattr(sink, "emit", None)):
            raise TraceError(
                f"trace sink {sink!r} has no emit(event) method"
            )
        self._sinks.append(sink)

    def _require_open(self, name: str) -> None:
        if self._bound:
            raise TraceError(
                f"cannot subscribe {name!r}: the bus is sealed (producers "
                "already bound their emitters — subscribe before the chip "
                "starts)"
            )

    # -- introspection ---------------------------------------------------
    def subscribed_names(self) -> Tuple[str, ...]:
        """Event names with at least one tuple handler (sorted)."""
        return tuple(sorted(n for n, h in self._handlers.items() if h))

    @property
    def sinks(self) -> List:
        """The attached structured sinks (live list view, do not mutate)."""
        return self._sinks

    def has_subscribers(self, name: str) -> bool:
        """True when ``name`` would dispatch to at least one subscriber."""
        return bool(self._handlers.get(name)) or bool(self._sinks)

    def has_any_subscriber(self) -> bool:
        """True when *anything* subscribed — the run counts as observed."""
        return bool(self._sinks) or any(self._handlers.values())

    # ------------------------------------------------------------------
    # Producer binding
    # ------------------------------------------------------------------
    def emitter(self, name: str, to_sinks: bool = True) -> Emitter:
        """Bind and return the emitter for ``name`` (seals the bus).

        Returns :data:`NOOP_EMITTER` when nothing subscribes to the
        name — publishing then materializes nothing at all.

        ``to_sinks=False`` binds a **named-only** channel: the event
        dispatches to the name's tuple handlers but never to wildcard
        sinks.  Auxiliary instrumentation (memory-queue events) uses
        this so that opting into a trace file does not change its
        contents.  Note that *subscribing* a named-only channel reads
        the annotations at instants primary events never settle, which
        can shift the energy accountant's float rounding — the
        bit-identity guarantee covers the primary (``to_sinks``)
        events only.
        """
        name = intern(name)
        key = name if to_sinks else f"{name}\x00named"
        emit = self._bound.get(key)
        if emit is not None:
            return emit
        entries = list(self._handlers.get(name, ()))
        sinks = list(self._sinks) if to_sinks else []
        if not entries and not sinks:
            if to_sinks and self.has_any_subscriber():
                # An *observed* run historically read the annotations at
                # every primary event occurrence, and the energy
                # accountant's lazy integration makes that read grid
                # part of the run's float identity.  Keep it: settle at
                # this name's occurrences without materializing records.
                emit = self._settle_emitter(key, name)
            else:
                emit = NOOP_EMITTER
        else:
            emit = self._make_emitter(key, name, entries, sinks)
        self._bound[key] = emit
        return emit

    # -- per-channel counters --------------------------------------------
    def _register_channel(
        self, key: str, name: str, full: int, sampled: int, sinks: int
    ) -> List[int]:
        """The counter cell ``[published, sampled_deliveries]`` for one
        bound emitter (created once per binding key)."""
        record = {
            "name": name,
            "cell": [0, 0],
            "full": full,
            "sampled": sampled,
            "sinks": sinks,
        }
        self._channels[key] = record
        return record["cell"]

    def channel_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-channel event accounting (empty when counting is off).

        Maps each counted channel name to::

            {"published": events the producer published,
             "delivered": handler + sink dispatches that actually ran,
             "shed":      dispatches skipped by sampled subscriptions}

        Unobserved (no-op bound) channels never count — producers skip
        them entirely, so there is nothing to account.  Settle-bound
        channels count published events with zero deliveries: that is
        the backpressure picture of a heavy channel nobody drains.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for record in self._channels.values():
            published, sampled_delivered = record["cell"]
            entry = stats.setdefault(
                record["name"], {"published": 0, "delivered": 0, "shed": 0}
            )
            entry["published"] += published
            entry["delivered"] += (
                published * (record["full"] + record["sinks"])
                + sampled_delivered
            )
            entry["shed"] += published * record["sampled"] - sampled_delivered
        return stats

    def _settle_emitter(self, key: str, name: str) -> Emitter:
        settle = self._annotations.settle
        if not self.counting:
            return settle
        cell = self._register_channel(key, name, full=0, sampled=0, sinks=0)

        def emit() -> None:
            cell[0] += 1
            settle()

        return emit

    @staticmethod
    def _wrap_sampled(handler: TupleHandler, sample: int, cell) -> TupleHandler:
        """A 1/``sample`` deterministic-stride wrapper (first event in)."""
        tick = [0]
        if cell is None:

            def wrapped(row: Row) -> None:
                t = tick[0]
                tick[0] = t + 1
                if not t % sample:
                    handler(row)

        else:

            def wrapped(row: Row) -> None:
                t = tick[0]
                tick[0] = t + 1
                if not t % sample:
                    cell[1] += 1
                    handler(row)

        return wrapped

    def _make_emitter(
        self, key: str, name: str, entries: List, sinks: List
    ) -> Emitter:
        snapshot = self._annotations.snapshot
        cell = None
        if self.counting:
            full = sum(1 for _, sample in entries if sample == 1)
            cell = self._register_channel(
                key, name, full=full, sampled=len(entries) - full,
                sinks=len(sinks),
            )
        handlers = [
            handler if sample == 1 else self._wrap_sampled(handler, sample, cell)
            for handler, sample in entries
        ]

        if len(handlers) == 1 and not sinks:
            # The hottest shape: one compiled monitor on one name.
            handler = handlers[0]

            if cell is None:

                def emit() -> None:
                    self.events_published += 1
                    handler(snapshot())

            else:

                def emit() -> None:
                    self.events_published += 1
                    cell[0] += 1
                    handler(snapshot())

            return emit

        def emit() -> None:
            self.events_published += 1
            if cell is not None:
                cell[0] += 1
            row = snapshot()
            for handler in handlers:
                handler(row)
            if sinks:
                event = TraceEvent(name, *row)
                for sink in sinks:
                    sink.emit(event)

        return emit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceBus names={list(self._handlers)} sinks={len(self._sinks)} "
            f"published={self.events_published} sealed={self.sealed}>"
        )
