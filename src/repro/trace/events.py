"""Trace event records and event-name conventions.

The paper (Figure 3) uses three event types:

``pipeline``
    an instruction enters an ME execution pipeline;
``forward``
    an IP packet is forwarded (transmitted out of the NPU);
``fifo``
    an IP packet is put into the processing queue (received).

Events originating from a specific microengine carry an ``m<k>`` prefix in
the trace (``m2_pipeline``); chip-level events (``forward``, ``fifo``)
are unprefixed.  Each event carries the five annotations of Figure 3.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import TraceError

#: The base event types of the paper's Figure 3.
EVENT_TYPES = ("pipeline", "forward", "fifo")

#: Human-readable one-liners, used by the Figure 3 reproduction.
EVENT_DESCRIPTIONS: Dict[str, str] = {
    "pipeline": "an instruction enters the execution pipeline",
    "forward": "an IP packet is forwarded",
    "fifo": "an IP packet is put into the processing queue",
}


def prefixed_event_name(base: str, me_index: Optional[int] = None) -> str:
    """Build a trace event name, optionally prefixed with an ME index.

    >>> prefixed_event_name("pipeline", 2)
    'm2_pipeline'
    >>> prefixed_event_name("forward")
    'forward'
    """
    if base not in EVENT_TYPES:
        raise TraceError(f"unknown base event type {base!r}")
    if me_index is None:
        return base
    if me_index < 0:
        raise TraceError(f"negative microengine index {me_index}")
    return f"m{me_index}_{base}"


def parse_event_name(name: str) -> Tuple[str, Optional[int]]:
    """Split an event name into ``(base, me_index)``.

    Accepts both the underscore form used in files (``m2_pipeline``) and
    the space form used in the paper's prose (``m2 pipeline``).

    >>> parse_event_name("m2_pipeline")
    ('pipeline', 2)
    >>> parse_event_name("forward")
    ('forward', None)
    """
    normalized = name.strip().replace(" ", "_")
    if normalized in EVENT_TYPES:
        return normalized, None
    if "_" in normalized:
        prefix, _, base = normalized.partition("_")
        if base in EVENT_TYPES and len(prefix) >= 2 and prefix[0] == "m":
            digits = prefix[1:]
            if digits.isdigit():
                return base, int(digits)
    raise TraceError(f"malformed event name {name!r}")


class TraceEvent:
    """One record of a simulation trace.

    Attributes mirror the paper's annotation set exactly; ``name`` is the
    (possibly ME-prefixed) event name.

    Attributes
    ----------
    name:
        Event name, e.g. ``"forward"`` or ``"m2_pipeline"``.
    cycle:
        Core clock cycles elapsed since simulation start (reference clock).
    time:
        Simulated time elapsed since start, in microseconds.
    energy:
        Cumulative energy consumed, in microjoules.
    total_pkt:
        Total packets received or transmitted so far.
    total_bit:
        Total bits received or transmitted so far.
    """

    __slots__ = ("name", "cycle", "time", "energy", "total_pkt", "total_bit")

    def __init__(
        self,
        name: str,
        cycle: int,
        time: float,
        energy: float,
        total_pkt: int,
        total_bit: int,
    ):
        self.name = name
        self.cycle = cycle
        self.time = time
        self.energy = energy
        self.total_pkt = total_pkt
        self.total_bit = total_bit

    def annotation(self, annotation_name: str) -> float:
        """Look up an annotation by name (as LOC formulas do).

        Raises :class:`~repro.errors.TraceError` for unknown names.
        """
        try:
            return getattr(self, annotation_name)
        except AttributeError:
            raise TraceError(
                f"event {self.name!r} has no annotation {annotation_name!r}"
            ) from None

    @property
    def base_type(self) -> str:
        """The unprefixed event type (``pipeline``/``forward``/``fifo``)."""
        return parse_event_name(self.name)[0]

    @property
    def me_index(self) -> Optional[int]:
        """The microengine index encoded in the name, or ``None``."""
        return parse_event_name(self.name)[1]

    def as_tuple(self) -> Tuple[str, int, float, float, int, int]:
        """Return the record as a plain tuple (for compact storage)."""
        return (
            self.name,
            self.cycle,
            self.time,
            self.energy,
            self.total_pkt,
            self.total_bit,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceEvent({self.name!r}, cycle={self.cycle}, time={self.time:.3f}, "
            f"energy={self.energy:.6f}, total_pkt={self.total_pkt}, "
            f"total_bit={self.total_bit})"
        )
