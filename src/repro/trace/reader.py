"""Streaming trace readers for the text and CSV formats.

Both readers are generators yielding :class:`~repro.trace.events.TraceEvent`
records, so arbitrarily long trace files can be analyzed with bounded
memory — the property the paper's "stand-alone checkers" rely on.
"""

from __future__ import annotations

import csv
from typing import IO, Iterator, Union

from repro.errors import TraceError
from repro.trace.events import TraceEvent
from repro.trace.writer import TEXT_HEADER


def _open_maybe(source: Union[str, IO], mode: str = "r"):
    if isinstance(source, str):
        return open(source, mode, encoding="utf-8"), True
    return source, False


def read_text_trace(source: Union[str, IO]) -> Iterator[TraceEvent]:
    """Yield events from a text-format trace (path or open stream).

    The header line is optional; blank lines and ``#`` comments are
    skipped.  Malformed rows raise :class:`~repro.errors.TraceError` with
    the offending line number.
    """
    stream, owned = _open_maybe(source)
    try:
        for lineno, line in enumerate(stream, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            if text == TEXT_HEADER or text.startswith("cycle "):
                continue
            parts = text.split()
            if len(parts) < 6:
                raise TraceError(f"text trace line {lineno}: expected 6 fields")
            try:
                cycle = int(parts[0])
                time = float(parts[1])
                energy = float(parts[2])
                total_pkt = int(parts[3])
                total_bit = int(parts[4])
            except ValueError as exc:
                raise TraceError(f"text trace line {lineno}: {exc}") from exc
            # Event names may contain a space in the paper's dialect
            # ("m2 pipeline"); everything after the counters is the name.
            name = "_".join(parts[5:])
            yield TraceEvent(name, cycle, time, energy, total_pkt, total_bit)
    finally:
        if owned:
            stream.close()


def read_csv_trace(source: Union[str, IO]) -> Iterator[TraceEvent]:
    """Yield events from a CSV-format trace (path or open stream)."""
    stream, owned = _open_maybe(source)
    try:
        reader = csv.reader(stream)
        for rowno, row in enumerate(reader, start=1):
            if not row:
                continue
            if row[0] == "event":  # header
                continue
            if len(row) != 6:
                raise TraceError(f"csv trace row {rowno}: expected 6 columns")
            try:
                yield TraceEvent(
                    name=row[0],
                    cycle=int(row[1]),
                    time=float(row[2]),
                    energy=float(row[3]),
                    total_pkt=int(row[4]),
                    total_bit=int(row[5]),
                )
            except ValueError as exc:
                raise TraceError(f"csv trace row {rowno}: {exc}") from exc
    finally:
        if owned:
            stream.close()
