"""Trace file writers.

Two on-disk formats are supported:

* **text** — the human-readable column layout of the paper's Figure 4
  snapshot (``cycle  time(us)  energy  total_pkt  total_bit  event``);
* **CSV** — one header row plus one row per event, for spreadsheet or
  :mod:`csv`-based tooling.

Writers are sinks (they expose ``emit``); they may be used as context
managers to guarantee the underlying file is flushed and closed.
"""

from __future__ import annotations

import csv
import io
from typing import Optional, TextIO

from repro.trace.annotations import ANNOTATION_NAMES
from repro.trace.events import TraceEvent

#: Header used by the text format, mirroring Figure 4 of the paper
#: (with the garbled "p loss" column rendered as the counters it holds).
TEXT_HEADER = "cycle time(us) energy total_pkt total_bit event"


class TextTraceWriter:
    """Writes the Figure 4 text format to a file-like object.

    Parameters
    ----------
    stream:
        Open text stream; the caller keeps ownership unless the writer was
        built with :meth:`open`.
    header:
        Whether to write the column header first.
    """

    def __init__(self, stream: TextIO, header: bool = True):
        self.stream = stream
        self._owns_stream = False
        self.events_written = 0
        if header:
            stream.write(TEXT_HEADER + "\n")

    @classmethod
    def open(cls, path: str, header: bool = True) -> "TextTraceWriter":
        """Open ``path`` for writing and build a writer that closes it."""
        stream = open(path, "w", encoding="utf-8")
        writer = cls(stream, header=header)
        writer._owns_stream = True
        return writer

    def emit(self, event: TraceEvent) -> None:
        self.stream.write(
            f"{event.cycle} {event.time:.3f} {event.energy:.6f} "
            f"{event.total_pkt} {event.total_bit} {event.name}\n"
        )
        self.events_written += 1

    def close(self) -> None:
        """Flush, and close the stream if this writer opened it."""
        self.stream.flush()
        if self._owns_stream:
            self.stream.close()

    def __enter__(self) -> "TextTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CsvTraceWriter:
    """Writes a CSV trace (header row + one row per event)."""

    FIELDS = ("event",) + ANNOTATION_NAMES

    def __init__(self, stream: TextIO, header: bool = True):
        self.stream = stream
        self._owns_stream = False
        self._writer = csv.writer(stream)
        self.events_written = 0
        if header:
            self._writer.writerow(self.FIELDS)

    @classmethod
    def open(cls, path: str, header: bool = True) -> "CsvTraceWriter":
        """Open ``path`` for writing and build a writer that closes it."""
        stream = open(path, "w", encoding="utf-8", newline="")
        writer = cls(stream, header=header)
        writer._owns_stream = True
        return writer

    def emit(self, event: TraceEvent) -> None:
        self._writer.writerow(
            (
                event.name,
                event.cycle,
                repr(event.time),
                repr(event.energy),
                event.total_pkt,
                event.total_bit,
            )
        )
        self.events_written += 1

    def close(self) -> None:
        """Flush, and close the stream if this writer opened it."""
        self.stream.flush()
        if self._owns_stream:
            self.stream.close()

    def __enter__(self) -> "CsvTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def format_trace_snapshot(events, limit: Optional[int] = None) -> str:
    """Render events as a Figure 4-style text snapshot and return it.

    Convenience wrapper used by the fig04 experiment and examples.
    """
    buffer = io.StringIO()
    writer = TextTraceWriter(buffer)
    for index, event in enumerate(events):
        if limit is not None and index >= limit:
            break
        writer.emit(event)
    return buffer.getvalue()
