"""Synthetic IP traffic: the NLANR-trace substitute.

The paper drives NePSim with a few seconds of real edge-router traffic
sampled from NLANR at high, medium and low arrival rates.  Those traces
are not redistributable, so this subpackage synthesizes equivalent input:

* :mod:`~repro.traffic.diurnal` — a day-long rate profile shaped like the
  paper's Figure 2 (diurnal swell, short-timescale max/med/min envelope);
* :mod:`~repro.traffic.sampler` — extracts high/medium/low-rate segments
  from a day, mirroring "we sample a few seconds of real traffic in high,
  medium and low arriving rates";
* :mod:`~repro.traffic.arrivals` — Poisson, CBR and 2-state MMPP (bursty)
  arrival processes;
* :mod:`~repro.traffic.sizes` — IMIX-style packet-size mixes;
* :mod:`~repro.traffic.generator` — the simulator-bound packet source
  feeding the NPU's 16 device ports;
* :mod:`~repro.traffic.trace_file` — portable on-disk packet traces.
"""

from repro.traffic.arrivals import (
    ConstantBitRate,
    MmppProcess,
    PoissonProcess,
    arrival_process,
)
from repro.traffic.diurnal import DiurnalBucket, DiurnalModel
from repro.traffic.generator import TrafficSource
from repro.traffic.packet import FlowPool, Packet
from repro.traffic.sampler import SegmentSpec, TrafficSampler
from repro.traffic.sizes import IMIX_CLASSIC, PacketSizeMix
from repro.traffic.trace_file import read_packet_trace, write_packet_trace

__all__ = [
    "ConstantBitRate",
    "DiurnalBucket",
    "DiurnalModel",
    "FlowPool",
    "IMIX_CLASSIC",
    "MmppProcess",
    "Packet",
    "PacketSizeMix",
    "PoissonProcess",
    "SegmentSpec",
    "TrafficSampler",
    "TrafficSource",
    "arrival_process",
    "read_packet_trace",
    "write_packet_trace",
]
