"""Packet arrival processes.

An arrival process turns a target *offered load* (bits/second, together
with the size mix's mean packet size) into a stream of inter-arrival
times.  Three processes are provided:

* :class:`PoissonProcess` — memoryless arrivals; the default;
* :class:`ConstantBitRate` — deterministic spacing (useful in tests and
  for calibrations, since the offered load is exact);
* :class:`MmppProcess` — 2-state Markov-modulated Poisson process: a
  bursty/quiet alternation that approximates the short-timescale
  variability of real edge traffic (what makes DVS interesting).
"""

from __future__ import annotations

from repro.errors import TrafficError
from repro.units import PS_PER_S


class ArrivalProcess:
    """Interface: produce successive inter-arrival gaps in picoseconds."""

    def next_gap_ps(self, rng) -> int:
        """Return the gap to the next arrival (>= 1 ps)."""
        raise NotImplementedError

    @property
    def mean_rate_pps(self) -> float:
        """Long-run mean arrival rate in packets/second."""
        raise NotImplementedError


def _rate_pps(load_bps: float, mean_packet_bits: float) -> float:
    if load_bps <= 0:
        raise TrafficError(f"offered load must be positive, got {load_bps}")
    if mean_packet_bits <= 0:
        raise TrafficError(f"mean packet bits must be positive, got {mean_packet_bits}")
    return load_bps / mean_packet_bits


class PoissonProcess(ArrivalProcess):
    """Exponential inter-arrivals at a fixed mean rate."""

    def __init__(self, load_bps: float, mean_packet_bits: float):
        self._rate_pps = _rate_pps(load_bps, mean_packet_bits)
        self._mean_gap_ps = PS_PER_S / self._rate_pps

    @property
    def mean_rate_pps(self) -> float:
        return self._rate_pps

    def next_gap_ps(self, rng) -> int:
        return max(1, round(rng.expovariate(1.0) * self._mean_gap_ps))


class ConstantBitRate(ArrivalProcess):
    """Deterministic, evenly spaced arrivals."""

    def __init__(self, load_bps: float, mean_packet_bits: float):
        self._rate_pps = _rate_pps(load_bps, mean_packet_bits)
        self._gap_ps = max(1, round(PS_PER_S / self._rate_pps))

    @property
    def mean_rate_pps(self) -> float:
        return self._rate_pps

    def next_gap_ps(self, rng) -> int:
        return self._gap_ps


class MmppProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *burst* state and a *quiet* state,
    each with exponentially distributed dwell times; arrivals within each
    state are Poisson at that state's rate.  Rates are derived from the
    target mean load, the burst/quiet rate ratio, and the fraction of
    time spent bursting, so the long-run offered load matches the target.

    Parameters
    ----------
    load_bps:
        Long-run mean offered load.
    mean_packet_bits:
        Mean packet size from the size mix.
    burst_ratio:
        Ratio of burst-state rate to quiet-state rate (> 1).
    burst_fraction:
        Long-run fraction of time in the burst state (0 < f < 1).
    mean_dwell_s:
        Mean dwell time across states, controlling burst timescale.
    """

    def __init__(
        self,
        load_bps: float,
        mean_packet_bits: float,
        burst_ratio: float = 4.0,
        burst_fraction: float = 0.3,
        mean_dwell_s: float = 0.0002,
    ):
        if burst_ratio <= 1.0:
            raise TrafficError(f"burst_ratio must exceed 1, got {burst_ratio}")
        if not 0.0 < burst_fraction < 1.0:
            raise TrafficError(f"burst_fraction must be in (0,1), got {burst_fraction}")
        if mean_dwell_s <= 0:
            raise TrafficError(f"mean_dwell_s must be positive, got {mean_dwell_s}")
        mean_pps = _rate_pps(load_bps, mean_packet_bits)
        # mean = f*burst + (1-f)*quiet and burst = ratio*quiet:
        quiet_share = burst_fraction * burst_ratio + (1.0 - burst_fraction)
        self._quiet_pps = mean_pps / quiet_share
        self._burst_pps = self._quiet_pps * burst_ratio
        self._mean_rate = mean_pps
        # Dwell times chosen so the stationary burst fraction is honored.
        self._burst_dwell_ps = 2.0 * mean_dwell_s * burst_fraction * PS_PER_S
        self._quiet_dwell_ps = 2.0 * mean_dwell_s * (1.0 - burst_fraction) * PS_PER_S
        self._in_burst = False
        self._state_left_ps = 0.0

    @property
    def mean_rate_pps(self) -> float:
        return self._mean_rate

    @property
    def burst_rate_pps(self) -> float:
        """Arrival rate while bursting."""
        return self._burst_pps

    @property
    def quiet_rate_pps(self) -> float:
        """Arrival rate while quiet."""
        return self._quiet_pps

    def next_gap_ps(self, rng) -> int:
        gap = 0.0
        while True:
            if self._state_left_ps <= 0.0:
                self._in_burst = not self._in_burst
                dwell = self._burst_dwell_ps if self._in_burst else self._quiet_dwell_ps
                self._state_left_ps = rng.expovariate(1.0) * dwell
            rate = self._burst_pps if self._in_burst else self._quiet_pps
            candidate = rng.expovariate(1.0) * PS_PER_S / rate
            if candidate <= self._state_left_ps:
                self._state_left_ps -= candidate
                gap += candidate
                return max(1, round(gap))
            # No arrival before the state expires: consume the remainder
            # of the dwell and retry in the next state.
            gap += self._state_left_ps
            self._state_left_ps = 0.0


#: Registry of arrival-process names used in configuration files.
_PROCESSES = {
    "poisson": PoissonProcess,
    "cbr": ConstantBitRate,
    "mmpp": MmppProcess,
}


def arrival_process(
    kind: str, load_bps: float, mean_packet_bits: float, **kwargs
) -> ArrivalProcess:
    """Build an arrival process by configuration name.

    >>> process = arrival_process("cbr", 1e9, 8 * 500)
    >>> round(process.mean_rate_pps)
    250000
    """
    try:
        cls = _PROCESSES[kind]
    except KeyError:
        raise TrafficError(
            f"unknown arrival process {kind!r}; known: {sorted(_PROCESSES)}"
        ) from None
    return cls(load_bps, mean_packet_bits, **kwargs)
