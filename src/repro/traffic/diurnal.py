"""Diurnal traffic-rate model (the paper's Figure 2 substitute).

The paper samples a day of NLANR edge-router traffic and plots, per time
bucket, the max/median/min observed throughput — a mid-day swell from
roughly 10 Mbit/s overnight to bursts above 200 Mbit/s in the afternoon.
:class:`DiurnalModel` synthesizes a rate profile with that shape:

* a smooth base curve — low overnight, rising through the morning,
  peaking early afternoon (sum of two raised cosines);
* lognormal short-timescale variation around the base, giving the
  max/med/min envelope when many sub-samples fall in one bucket.

The model is the sampling ground for
:class:`~repro.traffic.sampler.TrafficSampler`, which extracts the
high/medium/low segments the DVS experiments feed to the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import TrafficError
from repro.sim.rng import RngStreams

SECONDS_PER_DAY = 86_400.0


@dataclass
class DiurnalBucket:
    """Aggregated rate statistics for one time-of-day bucket."""

    start_s: float
    min_bps: float
    med_bps: float
    max_bps: float

    @property
    def label(self) -> str:
        """``HH:MM`` label of the bucket start."""
        minutes = int(self.start_s // 60) % (24 * 60)
        return f"{minutes // 60:02d}:{minutes % 60:02d}"


class DiurnalModel:
    """Synthetic one-day rate profile with a configurable peak.

    Parameters
    ----------
    night_bps:
        Base rate in the overnight trough.
    peak_bps:
        Mean rate at the mid-afternoon peak.
    peak_hour:
        Hour of day (0-24) where the smooth curve peaks.
    sigma:
        Lognormal sigma of the short-timescale variation.
    seed:
        Root seed for the variation stream.
    """

    def __init__(
        self,
        night_bps: float = 1.0e7,
        peak_bps: float = 2.0e8,
        peak_hour: float = 14.0,
        sigma: float = 0.35,
        seed: int = 2005,
    ):
        if night_bps <= 0 or peak_bps <= night_bps:
            raise TrafficError(
                f"need 0 < night_bps < peak_bps, got {night_bps}, {peak_bps}"
            )
        if not 0.0 <= peak_hour < 24.0:
            raise TrafficError(f"peak_hour must be in [0, 24), got {peak_hour}")
        if sigma < 0:
            raise TrafficError(f"sigma must be non-negative, got {sigma}")
        self.night_bps = night_bps
        self.peak_bps = peak_bps
        self.peak_hour = peak_hour
        self.sigma = sigma
        self._rng = RngStreams(seed).get("diurnal")

    # ------------------------------------------------------------------
    # Smooth base curve
    # ------------------------------------------------------------------
    def base_rate_bps(self, time_of_day_s: float) -> float:
        """The deterministic mean rate at a time of day (seconds)."""
        hours = (time_of_day_s / 3600.0) % 24.0
        # Primary raised cosine centered on the peak hour (working day),
        # plus a smaller evening shoulder two hours after the peak.
        main = _raised_cosine(hours, center=self.peak_hour, width=9.0)
        shoulder = 0.35 * _raised_cosine(hours, center=self.peak_hour + 4.0, width=5.0)
        shape = min(1.0, main + shoulder)
        return self.night_bps + (self.peak_bps - self.night_bps) * shape

    def instantaneous_rate_bps(self, time_of_day_s: float) -> float:
        """Base rate with lognormal short-timescale variation applied."""
        noise = math.exp(self._rng.gauss(0.0, self.sigma) - self.sigma**2 / 2.0)
        return self.base_rate_bps(time_of_day_s) * noise

    # ------------------------------------------------------------------
    # Figure 2 reproduction
    # ------------------------------------------------------------------
    def sample_day(
        self,
        bucket_s: float = 300.0,
        samples_per_bucket: int = 30,
        start_s: float = 0.0,
        end_s: float = SECONDS_PER_DAY,
    ) -> List[DiurnalBucket]:
        """Sample the day and aggregate max/median/min per bucket.

        This is exactly the reduction behind the paper's Figure 2 plot.
        """
        if bucket_s <= 0:
            raise TrafficError(f"bucket_s must be positive, got {bucket_s}")
        if samples_per_bucket < 1:
            raise TrafficError("samples_per_bucket must be at least 1")
        if end_s <= start_s:
            raise TrafficError("end_s must exceed start_s")
        buckets: List[DiurnalBucket] = []
        t = start_s
        while t < end_s:
            samples = sorted(
                self.instantaneous_rate_bps(t + k * bucket_s / samples_per_bucket)
                for k in range(samples_per_bucket)
            )
            buckets.append(
                DiurnalBucket(
                    start_s=t,
                    min_bps=samples[0],
                    med_bps=samples[len(samples) // 2],
                    max_bps=samples[-1],
                )
            )
            t += bucket_s
        return buckets

    def percentile_rate(self, percentile: float, resolution_s: float = 60.0) -> float:
        """Rate at a given percentile of the base curve over the day.

        Used by the sampler to define what "high", "medium" and "low"
        traffic mean for this particular day.
        """
        if not 0.0 <= percentile <= 100.0:
            raise TrafficError(f"percentile must be in [0, 100], got {percentile}")
        rates = sorted(
            self.base_rate_bps(t)
            for t in _frange(0.0, SECONDS_PER_DAY, resolution_s)
        )
        index = min(len(rates) - 1, int(percentile / 100.0 * len(rates)))
        return rates[index]


def _raised_cosine(hours: float, center: float, width: float) -> float:
    """A single hump: 1 at ``center``, 0 outside ``center ± width`` hours."""
    distance = abs(hours - center)
    distance = min(distance, 24.0 - distance)  # wrap around midnight
    if distance >= width:
        return 0.0
    return 0.5 * (1.0 + math.cos(math.pi * distance / width))


def _frange(start: float, stop: float, step: float):
    value = start
    while value < stop:
        yield value
        value += step
