"""Simulator-bound traffic source.

:class:`TrafficSource` schedules packet arrivals on the simulation kernel
and delivers each packet to one of the NPU's device ports.  Port choice
hashes the flow id so a flow always lands on the same port (as a real
switch fabric would), which in turn keeps per-port ordering sensible.

The source also keeps the *offered* counters (packets/bits presented to
the NPU), which the experiments compare against the *forwarded* counters
to measure loss.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import TrafficError
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.traffic.arrivals import ArrivalProcess, arrival_process
from repro.traffic.packet import FlowPool, Packet
from repro.traffic.sizes import IMIX_CLASSIC, PacketSizeMix

#: Delivery callback: receives (port_index, packet).
DeliverFn = Callable[[int, Packet], None]


class TrafficSource:
    """Generates packets and delivers them to device ports.

    Parameters
    ----------
    sim:
        Simulation kernel to schedule on.
    deliver:
        Callback invoked at each arrival instant with
        ``(port_index, packet)``; the NPU's port array plugs in here.
    process:
        The arrival process (or use :meth:`from_spec`).
    size_mix:
        Packet-size distribution.
    num_ports:
        Number of device ports to spread flows over (16 for IXP1200).
    rng_streams:
        Root RNG; the source draws from ``arrivals``, ``sizes``,
        ``flows`` and ``payload`` child streams.
    num_flows / zipf_s:
        Flow-population shape (see :class:`~repro.traffic.packet.FlowPool`).
    """

    def __init__(
        self,
        sim: Simulator,
        deliver: DeliverFn,
        process: ArrivalProcess,
        size_mix: PacketSizeMix = IMIX_CLASSIC,
        num_ports: int = 16,
        rng_streams: Optional[RngStreams] = None,
        num_flows: int = 512,
        zipf_s: float = 0.9,
    ):
        if num_ports <= 0:
            raise TrafficError(f"num_ports must be positive, got {num_ports}")
        self.sim = sim
        self.deliver = deliver
        self.process = process
        self.size_mix = size_mix
        self.num_ports = num_ports
        streams = rng_streams or RngStreams(0)
        self._arrival_rng = streams.get("traffic.arrivals")
        self._size_rng = streams.get("traffic.sizes")
        self._payload_rng = streams.get("traffic.payload")
        self.flows = FlowPool(num_flows, zipf_s, streams.get("traffic.flows"))

        self.offered_packets = 0
        self.offered_bits = 0
        self._next_seq = 0
        self._stop_ps: Optional[int] = None
        self._started = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        sim: Simulator,
        deliver: DeliverFn,
        spec,
        size_mix: PacketSizeMix = IMIX_CLASSIC,
        num_ports: int = 16,
        rng_streams: Optional[RngStreams] = None,
    ) -> "TrafficSource":
        """Build a source from a :class:`~repro.traffic.sampler.SegmentSpec`."""
        kwargs = {}
        if spec.process == "mmpp":
            kwargs = {
                "burst_ratio": spec.burst_ratio,
                "burst_fraction": spec.burst_fraction,
            }
        process = arrival_process(
            spec.process, spec.offered_load_bps, size_mix.mean_bits, **kwargs
        )
        return cls(
            sim,
            deliver,
            process,
            size_mix=size_mix,
            num_ports=num_ports,
            rng_streams=rng_streams,
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def start(self, stop_ps: Optional[int] = None) -> None:
        """Begin generating; stop scheduling new arrivals after ``stop_ps``."""
        if self._started:
            raise TrafficError("traffic source already started")
        self._started = True
        self._stop_ps = stop_ps
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.process.next_gap_ps(self._arrival_rng)
        arrival_ps = self.sim.now_ps + gap
        if self._stop_ps is not None and arrival_ps > self._stop_ps:
            return
        self.sim.post(gap, self._arrive)

    def _arrive(self) -> None:
        packet = self._make_packet(self.sim.now_ps)
        self.offered_packets += 1
        self.offered_bits += packet.size_bits
        self.deliver(packet.input_port, packet)
        self._schedule_next()

    def _make_packet(self, arrival_ps: int) -> Packet:
        flow_id = self.flows.draw()
        src_ip, dst_ip, src_port, dst_port, protocol = self.flows.endpoints(flow_id)
        seq = self._next_seq
        self._next_seq += 1
        return Packet(
            seq=seq,
            arrival_ps=arrival_ps,
            size_bytes=self.size_mix.sample(self._size_rng),
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            flow_id=flow_id,
            input_port=flow_id % self.num_ports,
            payload_seed=self._payload_rng.getrandbits(32),
        )

    @property
    def offered_load_bps(self) -> float:
        """Measured offered load so far (bits/second of simulated time)."""
        if self.sim.now_ps == 0:
            return 0.0
        return self.offered_bits * 1e12 / self.sim.now_ps
