"""Packet and flow records.

A :class:`Packet` is the unit every layer of the model passes around:
the traffic generator stamps arrival metadata, the device ports enqueue
it, microengine threads process it (the applications read header fields
and, when needed, payload bytes), and the transmit path forwards it.

Payload bytes are *virtual*: storing megabytes of random payload would be
wasted memory, so each packet carries a ``payload_seed`` and materializes
deterministic pseudo-random bytes only when an application actually reads
them (``url`` scanning, ``md4`` hashing in detailed mode).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import TrafficError

#: Minimum and maximum legal IPv4 packet sizes this model accepts.
MIN_PACKET_BYTES = 40
MAX_PACKET_BYTES = 9000

#: IP header bytes assumed by the applications (no options).
IP_HEADER_BYTES = 20


@dataclass
class Packet:
    """One IP packet traversing the NPU model.

    Attributes
    ----------
    seq:
        Global sequence number assigned by the traffic source.
    arrival_ps:
        Arrival timestamp at the device port, in picoseconds.
    size_bytes:
        Total packet length including headers.
    src_ip / dst_ip:
        32-bit addresses (integers).
    src_port / dst_port:
        16-bit transport ports.
    protocol:
        IP protocol number (6 TCP, 17 UDP).
    flow_id:
        Flow index from the :class:`FlowPool`.
    input_port:
        NPU device-port index (0..15) the packet arrived on.
    payload_seed:
        Seed for deterministic payload synthesis.
    output_port:
        Filled in by the forwarding application.
    """

    seq: int
    arrival_ps: int
    size_bytes: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    flow_id: int
    input_port: int
    payload_seed: int = 0
    output_port: Optional[int] = None

    def __post_init__(self) -> None:
        if not MIN_PACKET_BYTES <= self.size_bytes <= MAX_PACKET_BYTES:
            raise TrafficError(
                f"packet size {self.size_bytes} outside "
                f"[{MIN_PACKET_BYTES}, {MAX_PACKET_BYTES}]"
            )

    @property
    def size_bits(self) -> int:
        """Packet length in bits."""
        return self.size_bytes * 8

    @property
    def payload_bytes_len(self) -> int:
        """Payload length (total minus IP header)."""
        return max(0, self.size_bytes - IP_HEADER_BYTES)

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """The classification 5-tuple."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def payload(self) -> bytes:
        """Materialize deterministic pseudo-random payload bytes.

        The same packet always yields the same payload, so detailed-mode
        application runs are reproducible.
        """
        length = self.payload_bytes_len
        if length == 0:
            return b""
        out = bytearray()
        state = (self.payload_seed ^ (self.seq * 0x9E3779B9)) & 0xFFFFFFFF
        while len(out) < length:
            state = zlib.crc32(state.to_bytes(4, "big"))
            out.extend(state.to_bytes(4, "big"))
        return bytes(out[:length])


class FlowPool:
    """A population of flows with skewed (Zipf-like) popularity.

    The traffic generator draws a flow for each packet; applications that
    keep per-flow state (``nat``) see realistic reuse, and route lookups
    (``ipfwdr``) see a realistic destination mix.

    Parameters
    ----------
    num_flows:
        Size of the flow population.
    zipf_s:
        Zipf exponent; 0 gives uniform popularity, ~1 is web-like skew.
    rng:
        ``random.Random`` used for all draws.
    """

    def __init__(self, num_flows: int, zipf_s: float, rng):
        if num_flows <= 0:
            raise TrafficError(f"num_flows must be positive, got {num_flows}")
        if zipf_s < 0:
            raise TrafficError(f"zipf_s must be non-negative, got {zipf_s}")
        self.num_flows = num_flows
        self.zipf_s = zipf_s
        self._rng = rng
        # Precompute the flow endpoint tuples and the popularity CDF.
        self._flows = [self._make_flow(k) for k in range(num_flows)]
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(num_flows)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard float drift

    def _make_flow(self, index: int) -> Tuple[int, int, int, int, int]:
        rng = self._rng
        src_ip = rng.getrandbits(32)
        dst_ip = rng.getrandbits(32)
        src_port = rng.randrange(1024, 65536)
        dst_port = rng.choice((80, 80, 443, 8080, 53, rng.randrange(1024, 65536)))
        protocol = 6 if rng.random() < 0.85 else 17
        return (src_ip, dst_ip, src_port, dst_port, protocol)

    def draw(self) -> int:
        """Draw a flow index according to the popularity distribution."""
        from bisect import bisect_left

        return bisect_left(self._cdf, self._rng.random())

    def endpoints(self, flow_id: int) -> Tuple[int, int, int, int, int]:
        """The (src_ip, dst_ip, src_port, dst_port, protocol) of a flow."""
        return self._flows[flow_id]

    def __len__(self) -> int:
        return self.num_flows
