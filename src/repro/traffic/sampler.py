"""Extracting high/medium/low traffic segments from a day profile.

The paper: "It is obviously too expensive to simulate the entire day ...
We sample a few seconds of real traffic in high, medium and low arriving
rates as individual inputs to the simulator."  The sampler does that
against a :class:`~repro.traffic.diurnal.DiurnalModel`: it locates times
of day whose base rate sits at chosen percentiles and emits a
:class:`SegmentSpec` — the offered load plus burstiness parameters — that
the :class:`~repro.traffic.generator.TrafficSource` turns into packets.

Experiments additionally apply a *line-rate scale factor*: the paper's
NPU is driven well above the sampled router's absolute rates (their
throughput axes reach 1400 Mbps), so segment loads are scaled to the
NPU's regime while keeping the high/medium/low ratios of the day profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import TrafficError
from repro.traffic.diurnal import DiurnalModel

#: Percentile of the day's base-rate curve used for each named level.
LEVEL_PERCENTILES: Dict[str, float] = {"low": 10.0, "med": 55.0, "high": 97.0}


@dataclass
class SegmentSpec:
    """A few seconds of traffic at a named level, ready to generate.

    Attributes
    ----------
    level:
        ``"low"`` / ``"med"`` / ``"high"``.
    offered_load_bps:
        Mean offered load for the segment (after NPU scaling).
    duration_s:
        Segment length in seconds.
    process:
        Arrival-process kind (``"mmpp"`` by default — sampled real
        traffic is bursty at DVS-window timescales).
    burst_ratio / burst_fraction:
        MMPP shape parameters (ignored by other processes).
    """

    level: str
    offered_load_bps: float
    duration_s: float = 2.0
    process: str = "mmpp"
    burst_ratio: float = 4.0
    burst_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.offered_load_bps <= 0:
            raise TrafficError("segment offered load must be positive")
        if self.duration_s <= 0:
            raise TrafficError("segment duration must be positive")


class TrafficSampler:
    """Derives named traffic segments from a diurnal day model.

    Parameters
    ----------
    model:
        The day profile to sample.
    npu_scale_to_bps:
        The NPU-regime load that the *high* level maps to; lower levels
        scale proportionally to the day profile's percentile rates.
        Defaults to 1.6 Gbit/s, which drives the IXP1200-class model past
        saturation exactly as the paper's high samples do.
    """

    def __init__(self, model: DiurnalModel, npu_scale_to_bps: float = 1.6e9):
        if npu_scale_to_bps <= 0:
            raise TrafficError("npu_scale_to_bps must be positive")
        self.model = model
        self.npu_scale_to_bps = npu_scale_to_bps

    def level_load_bps(self, level: str) -> float:
        """NPU-scaled offered load for a named level."""
        try:
            percentile = LEVEL_PERCENTILES[level]
        except KeyError:
            raise TrafficError(
                f"unknown traffic level {level!r}; known: {sorted(LEVEL_PERCENTILES)}"
            ) from None
        day_rate = self.model.percentile_rate(percentile)
        high_rate = self.model.percentile_rate(LEVEL_PERCENTILES["high"])
        return self.npu_scale_to_bps * day_rate / high_rate

    def segment(self, level: str, duration_s: float = 2.0) -> SegmentSpec:
        """Build the :class:`SegmentSpec` for a named level."""
        return SegmentSpec(
            level=level,
            offered_load_bps=self.level_load_bps(level),
            duration_s=duration_s,
        )

    def all_segments(self, duration_s: float = 2.0) -> Dict[str, SegmentSpec]:
        """Segments for every named level (``low``/``med``/``high``)."""
        return {
            level: self.segment(level, duration_s) for level in LEVEL_PERCENTILES
        }
