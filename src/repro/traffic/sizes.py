"""Packet-size distributions.

Edge-router traffic has a strongly trimodal size distribution (ACK-sized,
~576-byte, and MTU-sized packets).  The classic "IMIX" mix captures it
and is the default here; experiments can swap in any discrete mix.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Sequence, Tuple

from repro.errors import TrafficError


class PacketSizeMix:
    """A discrete packet-size distribution.

    Parameters
    ----------
    points:
        Sequence of ``(size_bytes, weight)`` pairs; weights need not be
        normalized.
    """

    def __init__(self, points: Sequence[Tuple[int, float]]):
        if not points:
            raise TrafficError("size mix needs at least one point")
        total = float(sum(weight for _, weight in points))
        if total <= 0:
            raise TrafficError("size mix weights must sum to a positive value")
        for size, weight in points:
            if size <= 0:
                raise TrafficError(f"packet size must be positive, got {size}")
            if weight < 0:
                raise TrafficError(f"weights must be non-negative, got {weight}")
        self.points: List[Tuple[int, float]] = [
            (int(size), weight / total) for size, weight in points
        ]
        self._cdf: List[float] = []
        cumulative = 0.0
        for _, probability in self.points:
            cumulative += probability
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0
        # The expectation lies in [min size, max size] by definition, but
        # normalized probabilities need not sum to exactly 1.0 in floats,
        # so the raw sum can drift an ulp outside — clamp it back in.
        sizes = [size for size, _ in self.points]
        mean = sum(size * probability for size, probability in self.points)
        self._mean_bytes = min(max(mean, min(sizes)), max(sizes))

    @property
    def mean_bytes(self) -> float:
        """Expected packet size in bytes."""
        return self._mean_bytes

    @property
    def mean_bits(self) -> float:
        """Expected packet size in bits."""
        return self.mean_bytes * 8

    def sample(self, rng) -> int:
        """Draw one packet size."""
        return self.points[bisect_left(self._cdf, rng.random())][0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{s}B:{p:.2f}" for s, p in self.points)
        return f"<PacketSizeMix {body}>"


#: The classic 7:4:1 IMIX (mean ~340 bytes due to integer ratio 7/12, 4/12, 1/12).
IMIX_CLASSIC = PacketSizeMix([(40, 7), (576, 4), (1500, 1)])

#: A heavier mix typical of content-bound edge links (mean ~735 bytes).
IMIX_DOWNSTREAM = PacketSizeMix([(40, 3), (576, 3), (1500, 4)])

#: Uniform small packets — the worst case for per-packet processing cost.
ALL_MINIMUM = PacketSizeMix([(64, 1)])

#: The configuration-name registry: the single mapping that
#: ``TrafficConfig.size_mix``, scenario segments and the runner all
#: resolve through.
SIZE_MIXES = {
    "imix": IMIX_CLASSIC,
    "imix_downstream": IMIX_DOWNSTREAM,
    "min64": ALL_MINIMUM,
}
