"""Portable on-disk packet traces.

A packet trace is a CSV file with one row per packet (arrival time,
size, 5-tuple, flow, input port, payload seed).  Traces let experiments
pin their exact input — the moral equivalent of the paper's sampled
NLANR files — and let users replay identical traffic across runs or
against other tools.
"""

from __future__ import annotations

import csv
from typing import IO, Iterator, Iterable, List, Union

from repro.errors import TraceError
from repro.traffic.packet import Packet

_FIELDS = (
    "seq",
    "arrival_ps",
    "size_bytes",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "flow_id",
    "input_port",
    "payload_seed",
)


def write_packet_trace(packets: Iterable[Packet], destination: Union[str, IO]) -> int:
    """Write packets as CSV; returns the number of rows written."""
    if isinstance(destination, str):
        handle: IO = open(destination, "w", encoding="utf-8", newline="")
        owned = True
    else:
        handle = destination
        owned = False
    try:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        count = 0
        for packet in packets:
            writer.writerow(
                (
                    packet.seq,
                    packet.arrival_ps,
                    packet.size_bytes,
                    packet.src_ip,
                    packet.dst_ip,
                    packet.src_port,
                    packet.dst_port,
                    packet.protocol,
                    packet.flow_id,
                    packet.input_port,
                    packet.payload_seed,
                )
            )
            count += 1
        return count
    finally:
        if owned:
            handle.close()


def read_packet_trace(source: Union[str, IO]) -> Iterator[Packet]:
    """Yield packets from a CSV trace (path or open stream)."""
    if isinstance(source, str):
        handle: IO = open(source, "r", encoding="utf-8", newline="")
        owned = True
    else:
        handle = source
        owned = False
    try:
        reader = csv.reader(handle)
        for rowno, row in enumerate(reader, start=1):
            if not row:
                continue
            if row[0] == "seq":  # header
                continue
            if len(row) != len(_FIELDS):
                raise TraceError(
                    f"packet trace row {rowno}: expected {len(_FIELDS)} columns"
                )
            try:
                values: List[int] = [int(cell) for cell in row]
            except ValueError as exc:
                raise TraceError(f"packet trace row {rowno}: {exc}") from exc
            yield Packet(*values)
    finally:
        if owned:
            handle.close()
