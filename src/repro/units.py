"""Unit conventions and conversion helpers.

The simulation kernel keeps time as an **integer number of picoseconds**
so that event ordering is exact and reproducible regardless of the mix of
clock frequencies in flight.  Everything that crosses a module boundary is
expressed in the following base units:

================  =======================================
quantity          unit
================  =======================================
time              picoseconds (``int``)
frequency         hertz (``float`` or ``int``)
voltage           volts (``float``)
power             watts (``float``)
energy            joules (``float``)
data size         bits or bytes (``int``, named explicitly)
data rate         bits per second (``float``)
================  =======================================

Helpers in this module convert between human-friendly magnitudes
(MHz, Mbps, microseconds) and the base units.  They are deliberately tiny,
pure functions so they can be used freely in hot paths.
"""

from __future__ import annotations

#: Picoseconds per second; the kernel's time resolution.
PS_PER_S = 1_000_000_000_000
PS_PER_US = 1_000_000
PS_PER_NS = 1_000

BITS_PER_BYTE = 8


def mhz(value: float) -> float:
    """Convert a magnitude in megahertz to hertz."""
    return value * 1e6


def ghz(value: float) -> float:
    """Convert a magnitude in gigahertz to hertz."""
    return value * 1e9


def hz_to_mhz(freq_hz: float) -> float:
    """Convert hertz to megahertz."""
    return freq_hz / 1e6


def mbps(value: float) -> float:
    """Convert a magnitude in megabits/second to bits/second."""
    return value * 1e6

def gbps(value: float) -> float:
    """Convert a magnitude in gigabits/second to bits/second."""
    return value * 1e9


def bps_to_mbps(rate_bps: float) -> float:
    """Convert bits/second to megabits/second."""
    return rate_bps / 1e6


def us_to_ps(value_us: float) -> int:
    """Convert microseconds to integer picoseconds (rounded)."""
    return round(value_us * PS_PER_US)


def ns_to_ps(value_ns: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return round(value_ns * PS_PER_NS)


def s_to_ps(value_s: float) -> int:
    """Convert seconds to integer picoseconds (rounded)."""
    return round(value_s * PS_PER_S)


def ps_to_us(value_ps: int) -> float:
    """Convert picoseconds to microseconds."""
    return value_ps / PS_PER_US


def ps_to_s(value_ps: int) -> float:
    """Convert picoseconds to seconds."""
    return value_ps / PS_PER_S


def period_ps(freq_hz: float) -> int:
    """Integer clock period in picoseconds for ``freq_hz``.

    Rounds to the nearest picosecond; for the frequencies used in this
    model (hundreds of MHz) the rounding error is below 0.1 %.
    """
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz!r}")
    return max(1, round(PS_PER_S / freq_hz))


def cycles_to_ps(cycles: float, freq_hz: float) -> int:
    """Duration of ``cycles`` clock cycles at ``freq_hz``, in picoseconds."""
    return round(cycles * period_ps(freq_hz))


def ps_to_cycles(duration_ps: int, freq_hz: float) -> float:
    """Number of cycles of a ``freq_hz`` clock spanning ``duration_ps``."""
    return duration_ps / period_ps(freq_hz)


def bytes_to_bits(num_bytes: int) -> int:
    """Convert a byte count to a bit count."""
    return num_bytes * BITS_PER_BYTE


def transmit_time_ps(num_bytes: int, rate_bps: float) -> int:
    """Wire time to transmit ``num_bytes`` at ``rate_bps``, in picoseconds."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    return round(bytes_to_bits(num_bytes) / rate_bps * PS_PER_S)
