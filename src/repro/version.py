"""Version information for the ``repro`` package."""

__version__ = "0.1.0"

#: Short identifier of the reproduced paper.
PAPER = (
    "Assertion-Based Design Exploration of DVS in Network Processor "
    "Architectures (DATE 2005)"
)
