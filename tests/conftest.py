"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import DvsConfig, RunConfig, TrafficConfig
from repro.sim.kernel import Simulator
from repro.trace.events import TraceEvent


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


def make_event(
    name: str = "forward",
    cycle: int = 0,
    time: float = 0.0,
    energy: float = 0.0,
    total_pkt: int = 0,
    total_bit: int = 0,
) -> TraceEvent:
    """Build a trace event with keyword defaults."""
    return TraceEvent(name, cycle, time, energy, total_pkt, total_bit)


def forward_series(count: int, dt_us: float = 1.0, de_uj: float = 1.5, bits: int = 8000):
    """A regular series of forward events (handy for LOC tests).

    Event ``k`` has time ``k * dt_us``, cumulative energy ``k * de_uj``
    and cumulative bits ``k * bits``.
    """
    return [
        make_event(
            "forward",
            cycle=k * 600,
            time=k * dt_us,
            energy=k * de_uj,
            total_pkt=k,
            total_bit=k * bits,
        )
        for k in range(count)
    ]


def quick_config(**overrides) -> RunConfig:
    """A short-run config for integration tests."""
    defaults = dict(
        benchmark="ipfwdr",
        duration_cycles=120_000,
        seed=11,
        traffic=TrafficConfig(offered_load_mbps=1000.0, process="cbr"),
        dvs=DvsConfig(policy="none"),
    )
    defaults.update(overrides)
    return RunConfig(**defaults)
