"""Tests for the analysis layer: surfaces, reports, comparisons."""

import pytest

from repro.analysis.compare import PolicyComparison, PolicyOutcome
from repro.analysis.report import (
    format_curve,
    format_curve_family,
    format_surface,
    format_table,
)
from repro.analysis.surface import PercentileSurface
from repro.errors import AnalysisError
from repro.loc.analyzer import analyze_trace

from conftest import make_event


def dist_of(values, mode="below", low=0, high=10, step=1):
    events = [make_event("e", cycle=v) for v in values]
    return analyze_trace(f"cycle(e[i]) {mode} <{low}, {high}, {step}>", events)


class TestPercentileSurface:
    def _filled(self):
        surface = PercentileSurface([800, 1000], [20_000, 40_000], level=0.8)
        surface.add(800, 20_000, dist_of([1, 2, 3, 4, 5]))
        surface.add(800, 40_000, dist_of([2, 3, 4, 5, 6]))
        surface.add(1000, 20_000, dist_of([5, 6, 7, 8, 9]))
        surface.add(1000, 40_000, dist_of([0, 1, 1, 2, 2]))
        return surface

    def test_grid_values(self):
        surface = self._filled()
        assert surface.is_complete()
        grid = surface.grid()
        # 80th percentile of {1..5} at integer edges is 4.
        assert grid[0][0] == 4
        assert grid[1][0] == 8

    def test_argmin_argmax(self):
        surface = self._filled()
        row, col, value = surface.argmin()
        assert (row, col, value) == (1000, 40_000, 2)
        row, col, value = surface.argmax()
        assert (row, col, value) == (1000, 20_000, 8)

    def test_off_axis_rejected(self):
        surface = PercentileSurface([1], [2])
        with pytest.raises(AnalysisError):
            surface.add(9, 2, dist_of([1]))

    def test_missing_cell_rejected(self):
        surface = PercentileSurface([1], [2])
        assert not surface.is_complete()
        with pytest.raises(AnalysisError):
            surface.value_at(1, 2)

    def test_bad_level_rejected(self):
        with pytest.raises(AnalysisError):
            PercentileSurface([1], [2], level=0.0)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_width_mismatch(self):
        with pytest.raises(AnalysisError):
            format_table(("a",), [(1, 2)])

    def test_format_curve_thins_rows(self):
        points = [(float(k), k / 100.0) for k in range(100)]
        text = format_curve(points, max_rows=10)
        assert len(text.splitlines()) == 12  # header + divider + 10 rows

    def test_format_curve_family_shared_axis(self):
        a = [(0.0, 0.1), (1.0, 0.5)]
        b = [(0.0, 0.2), (1.0, 0.9)]
        text = format_curve_family([("20K", a), ("noDVS", b)], x_label="W")
        assert "20K" in text and "noDVS" in text

    def test_format_curve_family_mismatched_axis_rejected(self):
        a = [(0.0, 0.1)]
        b = [(5.0, 0.2)]
        with pytest.raises(AnalysisError):
            format_curve_family([("a", a), ("b", b)])

    def test_format_surface(self):
        text = format_surface([1, 2], [10, 20], [[0.5, 0.6], [0.7, 0.8]],
                              row_label="thr", col_label="win")
        assert "thr \\ win" in text
        assert "0.5" in text and "0.8" in text


class TestPolicyComparison:
    def _filled(self):
        comparison = PolicyComparison(["ipfwdr"], ["low", "high"])
        for level, base, edvs, tdvs in (
            ("low", 1.5, 1.5, 0.8),
            ("high", 1.3, 1.1, 1.0),
        ):
            comparison.add("ipfwdr", level,
                           PolicyOutcome("none", base, 1000.0, 0.0))
            comparison.add("ipfwdr", level,
                           PolicyOutcome("edvs", edvs, 995.0, 0.005))
            comparison.add("ipfwdr", level,
                           PolicyOutcome("tdvs", tdvs, 970.0, 0.03))
        return comparison

    def test_power_saving(self):
        comparison = self._filled()
        assert comparison.power_saving("ipfwdr", "low", "tdvs") == pytest.approx(
            1 - 0.8 / 1.5
        )
        assert comparison.power_saving("ipfwdr", "low", "edvs") == pytest.approx(0.0)

    def test_savings_by_level_ordering(self):
        comparison = self._filled()
        tdvs = comparison.tdvs_savings_by_level("ipfwdr")
        assert tdvs[0] > tdvs[1]  # TDVS savings shrink with traffic

    def test_throughput_delta(self):
        comparison = self._filled()
        assert comparison.throughput_delta("ipfwdr", "low", "tdvs") == pytest.approx(
            -0.03
        )

    def test_render_contains_all_cells(self):
        text = self._filled().render()
        assert "ipfwdr" in text
        assert "low" in text and "high" in text
        assert "%" in text

    def test_missing_outcome_rejected(self):
        comparison = PolicyComparison(["ipfwdr"], ["low"])
        with pytest.raises(AnalysisError):
            comparison.outcome("ipfwdr", "low", "none")

    def test_unknown_policy_rejected(self):
        comparison = PolicyComparison(["ipfwdr"], ["low"])
        with pytest.raises(AnalysisError):
            comparison.add("ipfwdr", "low", PolicyOutcome("magic", 1.0, 1.0, 0.0))
